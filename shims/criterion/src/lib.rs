//! Offline stand-in for `criterion`.
//!
//! A small wall-clock benchmark harness exposing the subset of the
//! criterion API this workspace's benches use (`criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`, `BenchmarkId`, `black_box`). Timing method: a short
//! calibration pass picks an iteration batch size, then a fixed number of
//! batch samples are measured and the per-iteration mean, minimum and
//! maximum are reported. No statistics machinery, no plots — numbers good
//! enough for before/after comparisons in this repository.
//!
//! # JSON output (`--json <path>`)
//!
//! Passing `--json <path>` after `--` (`cargo bench --bench hot_path --
//! --json out.json`) additionally writes every measurement to `path` as a
//! flat JSON document:
//!
//! ```json
//! { "kernels": { "<benchmark name>": { "mean_ns": 1.0, "min_ns": 0.9, "max_ns": 1.2 } } }
//! ```
//!
//! The CI `bench-trend` job consumes this file and compares it against the
//! checked-in `BENCH_BASELINE.json` (see `dbac-bench`'s `bench_trend`
//! binary).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterized benchmark, mirroring criterion's.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Runs closures under timing; handed to every benchmark body.
pub struct Bencher {
    /// Mean / min / max nanoseconds per iteration, filled in by `iter`.
    result: Option<Sample>,
    sample_count: usize,
}

#[derive(Clone, Copy)]
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Target measurement time per benchmark (total across samples).
const MEASURE: Duration = Duration::from_millis(200);
/// Warm-up before calibration.
const WARMUP: Duration = Duration::from_millis(30);

impl Bencher {
    /// Measures `f`, recording per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: how many iterations fit in the warm-up
        // window determines the batch size.
        let start = Instant::now();
        let mut calib_iters: u64 = 0;
        loop {
            black_box(f());
            calib_iters += 1;
            if start.elapsed() >= WARMUP {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / calib_iters as f64;
        let samples = self.sample_count.max(2);
        let budget_per_sample = MEASURE.as_secs_f64() / samples as f64;
        let batch = ((budget_per_sample / per_iter) as u64).max(1);

        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / batch as f64;
            total += ns;
            min = min.min(ns);
            max = max.max(ns);
        }
        self.result = Some(Sample { mean_ns: total / samples as f64, min_ns: min, max_ns: max });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Measurements accumulated for the optional JSON report, in run order.
fn recorded() -> &'static Mutex<Vec<(String, Sample)>> {
    static RECORDED: Mutex<Vec<(String, Sample)>> = Mutex::new(Vec::new());
    &RECORDED
}

fn run_one(name: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { result: None, sample_count };
    f(&mut b);
    match b.result {
        Some(s) => {
            println!(
                "{name:<50} time: [{} {} {}]",
                fmt_ns(s.min_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.max_ns)
            );
            recorded().lock().expect("bench registry poisoned").push((name.to_string(), s));
        }
        None => println!("{name:<50} (no measurement recorded)"),
    }
}

/// Minimal JSON string escape (benchmark names are plain ASCII, but stay
/// correct for quotes and backslashes anyway).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Writes the accumulated measurements as JSON when `--json <path>` was
/// passed on the command line. Called by `criterion_main!` after all
/// groups have run; a no-op otherwise.
///
/// # Panics
///
/// Panics if `--json` is given without a path or the file cannot be
/// written — a CI pipeline must fail loudly, not silently skip its gate.
pub fn write_json_if_requested() {
    let args: Vec<String> = std::env::args().collect();
    let Some(pos) = args.iter().position(|a| a == "--json") else {
        return;
    };
    let path = args.get(pos + 1).expect("--json requires a path argument");
    let results = recorded().lock().expect("bench registry poisoned");
    let mut out = String::from("{\n  \"kernels\": {\n");
    for (i, (name, s)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {{ \"mean_ns\": {:.3}, \"min_ns\": {:.3}, \"max_ns\": {:.3} }}{}\n",
            json_escape(name),
            s.mean_ns,
            s.min_ns,
            s.max_ns,
            comma
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("bench JSON written to {path}");
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores CLI arguments (API compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 20, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_count: 20 }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_count, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.full);
        run_one(&name, self.sample_count, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, then emitting the JSON
/// report when `--json <path>` was requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}
