//! Offline stand-in for `rand`.
//!
//! Implements exactly the surface this workspace uses: `SmallRng` (here a
//! splitmix64 generator — statistically fine for simulation schedules and
//! test-case generation, *not* cryptographic), `SeedableRng::seed_from_u64`,
//! and `Rng::{gen_range, gen_bool}` over the integer and float range types
//! that appear in the workspace. Deterministic per seed, as the simulator
//! requires.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is negligible for the
    // spans used here and determinism is all the workspace relies on.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_u64_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + sample_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u64, u32, u16, u8, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let differs = (0..100).any(|_| a.gen_range(0u64..1000) != c.gen_range(0u64..1000));
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!((3..9u64).contains(&rng.gen_range(3u64..9)));
            assert!((3..=9u64).contains(&rng.gen_range(3u64..=9)));
            let f = rng.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
