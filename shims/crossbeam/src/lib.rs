//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module surface the workspace uses is provided,
//! backed by `std::sync::mpsc` (whose `Sender` is `Clone` and whose
//! `recv_timeout` semantics match what the thread-per-node runtime needs).

/// MPSC channels with the `crossbeam::channel` names.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};

    /// An unbounded channel, mirroring `crossbeam::channel::unbounded`.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn senders_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx2.send(1u8).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.iter().count(), 1);
    }
}
