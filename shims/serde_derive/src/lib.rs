//! No-op stand-in for `serde_derive` used in offline builds.
//!
//! The derives expand to nothing: the workspace derives `Serialize` /
//! `Deserialize` on its types so downstream users *can* serialize them, but
//! nothing in the workspace itself performs serialization, so empty
//! expansions keep every `#[derive(Serialize, Deserialize)]` compiling
//! without the registry crate.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
