//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro over `ident in strategy` bindings, range and
//! `prop::collection::vec` strategies, `prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Differences
//! from the real crate: cases are drawn from a deterministic per-test seed,
//! there is **no shrinking**, and `prop_assume!` skips the case without
//! replacement (so heavy assumptions thin out coverage rather than
//! resampling). Good enough to keep the paper's structural invariants
//! exercised in an offline build.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Per-test deterministic random source (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from the test name, so every test has a
    /// fixed, reproducible case sequence.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        TestRng { state: h.finish() | 1 }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u64, u32, u16, u8, usize, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length specification: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values with a length from
    /// `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Mirror of proptest's `prop` re-export module.
pub mod prop {
    pub use crate::collection;
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests over `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    #[allow(clippy::redundant_closure_call)]
                    let _ = (move || -> ::core::ops::ControlFlow<()> {
                        $body
                        ::core::ops::ControlFlow::Continue(())
                    })();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption fails (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::ops::ControlFlow::Break(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds; assume skips cases cleanly.
        #[test]
        fn ranges_and_assume(a in 0u64..10, b in 0usize..5, x in -1.0f64..1.0) {
            prop_assume!(a != 3);
            prop_assert!(a < 10 && a != 3);
            prop_assert!(b < 5);
            prop_assert!((-1.0..1.0).contains(&x));
        }

        /// prop_map and collection::vec compose.
        #[test]
        fn map_and_vec(v in prop::collection::vec((0u32..7).prop_map(|x| x * 2), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 14));
        }
    }
}
