//! Offline stand-in for `serde`.
//!
//! This build environment has no access to a crates registry, so the
//! workspace ships a minimal local `serde` facade: marker traits plus no-op
//! derive macros. Nothing in the workspace serializes at runtime — the
//! derives only exist so the public types advertise serializability — so
//! marker semantics are sufficient. Swapping the `path` dependency for the
//! registry `serde` restores full functionality without code changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
