//! Integration: the Appendix-B necessity construction (Theorem 18),
//! executed end-to-end through the public APIs.

use dbac::conditions::kreach::{three_reach, two_reach};
use dbac::graph::generators;
use dbac_bench::impossibility::run_construction;

#[test]
fn k3_necessity_split() {
    let g = generators::clique(3);
    assert!(two_reach(&g, 1).holds() && !three_reach(&g, 1).holds());
    let report = run_construction(&g, 1, 10.0, 1.0).expect("construction runs");
    assert!(report.convergence_violated());
    assert_eq!(report.v_output, 0.0);
    assert_eq!(report.u_output, 10.0);
}

#[test]
fn k6_f2_necessity_split() {
    let g = generators::clique(6);
    assert!(two_reach(&g, 2).holds() && !three_reach(&g, 2).holds());
    let report = run_construction(&g, 2, 4.0, 0.5).expect("construction runs");
    assert!(report.convergence_violated());
    assert_eq!(report.disagreement(), 4.0);
    // The splice verified live sends delivery-by-delivery.
    assert!(report.live_matches > 0);
    assert!(report.synthesized > 0);
}

#[test]
fn construction_refuses_feasible_graphs() {
    assert!(run_construction(&generators::clique(4), 1, 10.0, 1.0).is_err());
    assert!(run_construction(&generators::figure_1b_small(), 1, 10.0, 1.0).is_err());
}
