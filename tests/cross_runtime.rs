//! Cross-runtime differential: one deterministic [`Scenario`] executed
//! under `Runtime::Sim`, `Runtime::Threaded`, *and* `Runtime::Net` must
//! produce identical honest decisions, and identical `Outcome` fields
//! modulo runtime statistics and timing. The net arm additionally proves
//! that a full encode → frame → socket → decode round trip per message
//! changes nothing: the wire codec is semantics-preserving.
//!
//! The fixtures use `f = 0`: with a single fault guess (∅) every
//! witness/fullness thread waits for the *complete* message pool before
//! firing, so the value set a node aggregates each round — and therefore
//! its decision — is independent of message interleaving. That makes the
//! decisions a pure function of the scenario, which is exactly what a
//! three-way differential needs (with `f > 0` a node may legitimately
//! fire on whichever guess completes first, which is schedule-dependent).
//!
//! One sizing note: the full `figure_1b_small` BW flood moves ~1.1M
//! messages, which is fine in-process but minutes of wall clock once every
//! message crosses a real socket in a debug build. That fixture therefore
//! stays a sim-vs-threaded pair, and the three-way gate exercises the same
//! directed two-clique family at `k = 3` instead — same bridge structure,
//! ~10k messages.

use dbac::graph::generators;
use dbac::scenario::{
    ByzantineWitness, CrashTwoReach, IterativeTrimmedMean, Outcome, ReliableBroadcastProbe,
    Runtime, Scenario, ScenarioBuilder,
};
use std::time::Duration;

fn run_both(build: impl Fn() -> ScenarioBuilder) -> (Outcome, Outcome) {
    let sim = build().runtime(Runtime::Sim).run().expect("sim run");
    let threaded =
        build().runtime(Runtime::threaded(Duration::from_secs(120))).run().expect("threaded run");
    (sim, threaded)
}

fn run_all(build: impl Fn() -> ScenarioBuilder) -> (Outcome, Outcome, Outcome) {
    let (sim, threaded) = run_both(&build);
    let net = build().runtime(Runtime::net(Duration::from_secs(120))).run().expect("net run");
    (sim, threaded, net)
}

/// Everything except runtime counters and the trace handle must agree.
fn assert_identical(sim: &Outcome, other: &Outcome, runtime: &str) {
    assert_eq!(sim.outputs, other.outputs, "{runtime}: honest decisions must match bit-for-bit");
    assert_eq!(sim.histories, other.histories, "{runtime}: state trajectories must match");
    assert_eq!(sim.honest, other.honest, "{runtime}");
    assert_eq!(sim.epsilon, other.epsilon, "{runtime}");
    assert_eq!(sim.honest_input_range, other.honest_input_range, "{runtime}");
    assert_eq!(sim.rounds, other.rounds, "{runtime}");
    assert_eq!(sim.protocol, other.protocol, "{runtime}");
    // `sim_stats` (transport counters differ between the event queue and
    // real channels) and `trace` (Sim-only) are exempt.
}

/// Three-way gate: Sim is the reference; Threaded and Net must both agree
/// with it, and the net run must have completed without watchdog losses.
fn assert_three_way(sim: &Outcome, threaded: &Outcome, net: &Outcome) {
    assert_identical(sim, threaded, "threaded");
    assert_identical(sim, net, "net");
    assert!(net.incomplete.is_empty(), "net run lost nodes: {:?}", net.incomplete);
    assert_eq!(
        net.sim_stats.messages_rejected(),
        0,
        "no frame may fail to decode in a fault-free net run"
    );
}

#[test]
fn bw_decisions_are_runtime_independent() {
    let (sim, threaded, net) = run_all(|| {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.25)
            .seed(5)
            .protocol(ByzantineWitness::default())
    });
    assert!(sim.converged() && sim.valid(), "outputs {:?}", sim.outputs);
    assert_three_way(&sim, &threaded, &net);
}

#[test]
fn bw_on_a_directed_network_is_runtime_independent() {
    let inputs: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let (sim, threaded) = run_both(|| {
        Scenario::builder(generators::figure_1b_small(), 0)
            .inputs(inputs.clone())
            .epsilon(1.0)
            .seed(11)
            .protocol(ByzantineWitness::default())
    });
    assert!(sim.converged() && sim.valid(), "outputs {:?}", sim.outputs);
    assert_identical(&sim, &threaded, "threaded");
}

#[test]
fn bw_on_a_directed_two_clique_bridge_is_runtime_independent() {
    let graph = generators::two_cliques_bridged(3, &[(0, 0), (1, 1)], &[(1, 1), (2, 2)]);
    let inputs: Vec<f64> = (0..6).map(|i| i as f64).collect();
    let (sim, threaded, net) = run_all(|| {
        Scenario::builder(graph.clone(), 0)
            .inputs(inputs.clone())
            .epsilon(1.0)
            .seed(11)
            .protocol(ByzantineWitness::default())
    });
    assert!(sim.converged() && sim.valid(), "outputs {:?}", sim.outputs);
    assert_three_way(&sim, &threaded, &net);
}

#[test]
fn crash_protocol_decisions_are_runtime_independent() {
    let inputs: Vec<f64> = (0..8).map(|i| (i % 4) as f64 * 2.0).collect();
    let (sim, threaded, net) = run_all(|| {
        Scenario::builder(generators::figure_1b_small(), 0)
            .inputs(inputs.clone())
            .epsilon(0.5)
            .seed(3)
            .protocol(CrashTwoReach::default())
    });
    assert!(sim.converged() && sim.valid(), "outputs {:?}", sim.outputs);
    assert_three_way(&sim, &threaded, &net);
}

#[test]
fn rbc_probe_decisions_are_runtime_independent() {
    let (sim, threaded, net) = run_all(|| {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![1.0, 9.0, 3.0, 5.0])
            .epsilon(0.5)
            .seed(7)
            .protocol(ReliableBroadcastProbe)
    });
    assert!(sim.converged(), "outputs {:?}", sim.outputs);
    assert_three_way(&sim, &threaded, &net);
}

/// The iterative W-MSR engine, past the historical 128-node wall: a
/// 132-node circulant (offsets {1, 2}) is inexpressible on the u128-era
/// `NodeSet`, and the legacy synchronous loop rejected every runtime but
/// Sim. At `f = 0` each node waits for both in-neighbors' round values, so
/// the trajectory is schedule-independent — the three-way gate demands
/// bit-identical decisions AND trajectories across Sim, Threaded and Net.
/// Degree 2 keeps it to 132 threads and ~2.1k messages per arm.
#[test]
fn iterative_engine_past_128_nodes_is_runtime_independent() {
    let n = 132;
    let graph = generators::circulant(n, &[1, 2]);
    let inputs: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64 / 10.0).collect();
    let (sim, threaded, net) = run_all(|| {
        Scenario::builder(graph.clone(), 0)
            .inputs(inputs.clone())
            .epsilon(1e-3)
            .rounds(8)
            .seed(13)
            .protocol(IterativeTrimmedMean::default())
    });
    assert!(sim.all_decided(), "every node fires all rounds at f = 0");
    assert!(sim.valid(), "outputs {:?}", sim.outputs);
    assert_three_way(&sim, &threaded, &net);
    // The honest traffic tally is deterministic too: rounds × out-degree
    // per node, on every runtime.
    assert_eq!(sim.honest_messages, Some(8 * 2 * n as u64));
    assert_eq!(threaded.honest_messages, sim.honest_messages);
    assert_eq!(net.honest_messages, sim.honest_messages);
}
