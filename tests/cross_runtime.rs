//! Cross-runtime differential: one deterministic [`Scenario`] executed
//! under both `Runtime::Sim` and `Runtime::Threaded` must produce
//! identical honest decisions, and identical `Outcome` fields modulo
//! runtime statistics and timing.
//!
//! The fixtures use `f = 0`: with a single fault guess (∅) every
//! witness/fullness thread waits for the *complete* message pool before
//! firing, so the value set a node aggregates each round — and therefore
//! its decision — is independent of message interleaving. That makes the
//! decisions a pure function of the scenario, which is exactly what a
//! sim-vs-threads differential needs (with `f > 0` a node may legitimately
//! fire on whichever guess completes first, which is schedule-dependent).

use dbac::graph::generators;
use dbac::scenario::{
    ByzantineWitness, CrashTwoReach, Outcome, ReliableBroadcastProbe, Runtime, Scenario,
    ScenarioBuilder,
};
use std::time::Duration;

fn run_both(build: impl Fn() -> ScenarioBuilder) -> (Outcome, Outcome) {
    let sim = build().runtime(Runtime::Sim).run().expect("sim run");
    let threaded =
        build().runtime(Runtime::threaded(Duration::from_secs(120))).run().expect("threaded run");
    (sim, threaded)
}

/// Everything except runtime counters and the trace handle must agree.
fn assert_identical(sim: &Outcome, threaded: &Outcome) {
    assert_eq!(sim.outputs, threaded.outputs, "honest decisions must match bit-for-bit");
    assert_eq!(sim.histories, threaded.histories, "state trajectories must match");
    assert_eq!(sim.honest, threaded.honest);
    assert_eq!(sim.epsilon, threaded.epsilon);
    assert_eq!(sim.honest_input_range, threaded.honest_input_range);
    assert_eq!(sim.rounds, threaded.rounds);
    assert_eq!(sim.protocol, threaded.protocol);
    // `sim_stats` (transport counters differ between the event queue and
    // real channels) and `trace` (Sim-only) are exempt.
}

#[test]
fn bw_decisions_are_runtime_independent() {
    let (sim, threaded) = run_both(|| {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.25)
            .seed(5)
            .protocol(ByzantineWitness::default())
    });
    assert!(sim.converged() && sim.valid(), "outputs {:?}", sim.outputs);
    assert_identical(&sim, &threaded);
}

#[test]
fn bw_on_a_directed_network_is_runtime_independent() {
    let inputs: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let (sim, threaded) = run_both(|| {
        Scenario::builder(generators::figure_1b_small(), 0)
            .inputs(inputs.clone())
            .epsilon(1.0)
            .seed(11)
            .protocol(ByzantineWitness::default())
    });
    assert!(sim.converged() && sim.valid(), "outputs {:?}", sim.outputs);
    assert_identical(&sim, &threaded);
}

#[test]
fn crash_protocol_decisions_are_runtime_independent() {
    let inputs: Vec<f64> = (0..8).map(|i| (i % 4) as f64 * 2.0).collect();
    let (sim, threaded) = run_both(|| {
        Scenario::builder(generators::figure_1b_small(), 0)
            .inputs(inputs.clone())
            .epsilon(0.5)
            .seed(3)
            .protocol(CrashTwoReach::default())
    });
    assert!(sim.converged() && sim.valid(), "outputs {:?}", sim.outputs);
    assert_identical(&sim, &threaded);
}

#[test]
fn rbc_probe_decisions_are_runtime_independent() {
    let (sim, threaded) = run_both(|| {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![1.0, 9.0, 3.0, 5.0])
            .epsilon(0.5)
            .seed(7)
            .protocol(ReliableBroadcastProbe)
    });
    assert!(sim.converged(), "outputs {:?}", sim.outputs);
    assert_identical(&sim, &threaded);
}
