//! Failure injection: every Byzantine strategy in the library against the
//! full protocol. Convergence and validity must survive them all — the
//! paper's Theorem 4 promises exactly that on 3-reach graphs.

use dbac::core::config::{FloodMode, ProtocolConfig};
use dbac::core::{HonestNode, ProtocolMsg, Topology};
use dbac::graph::generators;
use dbac::graph::{NodeId, Path, PathBudget};
use dbac::scenario::{ByzantineWitness, FaultKind, Scenario};
use dbac::sim::process::{Context, Process};
use std::sync::Arc;

fn strategies() -> Vec<(&'static str, FaultKind)> {
    vec![
        ("crash", FaultKind::Crash),
        ("liar-high", FaultKind::ConstantLiar { value: 1e9 }),
        ("liar-low", FaultKind::ConstantLiar { value: -1e9 }),
        ("equivocator", FaultKind::Equivocator { low: -500.0, high: 500.0 }),
        ("relay-tamperer", FaultKind::RelayTamperer { spoof: 123.0 }),
        ("path-fabricator", FaultKind::PathFabricator { forged_value: -77.0 }),
        ("chaotic-1", FaultKind::Chaotic { seed: 1 }),
        ("chaotic-2", FaultKind::Chaotic { seed: 2 }),
    ]
}

#[test]
fn every_strategy_on_k4() {
    for (label, kind) in strategies() {
        let cfg = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(0.5)
            .fault(NodeId::new(3), kind)
            .seed(11)
            .build()
            .unwrap();
        let out = cfg.run().unwrap();
        assert!(out.all_decided(), "{label}: honest node undecided");
        assert!(out.converged(), "{label}: spread {}", out.spread());
        assert!(out.valid(), "{label}: validity broken: {:?}", out.outputs);
    }
}

#[test]
fn every_strategy_on_figure_1a() {
    for (label, kind) in strategies() {
        let cfg = Scenario::builder(generators::figure_1a(), 1)
            .inputs(vec![1.0, 3.0, 5.0, 7.0, 0.0])
            .epsilon(1.0)
            .fault(NodeId::new(4), kind)
            .seed(17)
            .build()
            .unwrap();
        let out = cfg.run().unwrap();
        assert!(out.converged() && out.valid(), "{label} on figure 1a failed");
    }
}

#[test]
fn byzantine_position_does_not_matter_on_k4() {
    for position in 0..4usize {
        let mut inputs = vec![2.0, 4.0, 6.0, 8.0];
        inputs[position] = 0.0; // ignored
        let cfg = Scenario::builder(generators::clique(4), 1)
            .inputs(inputs)
            .epsilon(0.5)
            .fault(NodeId::new(position), FaultKind::ConstantLiar { value: -1e6 })
            .seed(23)
            .build()
            .unwrap();
        let out = cfg.run().unwrap();
        assert!(out.converged() && out.valid(), "liar at position {position}");
    }
}

/// Regression for the PR 1 behavior note (experiment E11b): under the
/// `SimpleOnly` ablation the interned population holds only simple paths,
/// so a Byzantine-injected redundant-but-non-simple flood — here the wire
/// path ⟨0,1⟩ whose extension at node 0 is ⟨0,1,0⟩ — is rejected at the
/// validation boundary and **never enters `M_v`**. Under the paper's
/// redundant mode the same message is legitimate traffic and is stored.
/// The seed design instead stored such paths in `M_v` without
/// pool-counting them; the flood discipline is now enforced at the
/// boundary, and this test pins the message-set outcome on both sides.
#[test]
fn e11b_simple_only_rejects_non_simple_floods_before_m_v() {
    let me = NodeId::new(0);
    let run = |mode: FloodMode| {
        let topo =
            Arc::new(Topology::new(generators::clique(4), 1, mode, PathBudget::default()).unwrap());
        let config = ProtocolConfig::new(1, 0.5, (0.0, 8.0)).with_flood_mode(mode);
        let mut node = HonestNode::new(Arc::clone(&topo), config, me, 1.0);
        let mut ctx = Context::new(me, topo.graph().out_neighbors(me));
        node.on_start(&mut ctx);
        let _ = ctx.take_outbox();
        // The Byzantine neighbor 1 replays node 0's own flood back: wire
        // path ⟨0,1⟩ (simple, interned in *both* populations) extends at
        // node 0 to the redundant, non-simple ⟨0,1,0⟩.
        let wire = topo.index().resolve(&Path::from_indices(&[0, 1]).unwrap()).unwrap();
        let before = node.stats();
        node.on_message(
            &mut ctx,
            NodeId::new(1),
            ProtocolMsg::Flood { round: 0, value: 66.5, path: wire },
        );
        let relays = ctx.take_outbox().len();
        (topo, node, before, relays)
    };

    // Paper mode: the extension is a legitimate redundant path — stored.
    let (topo, node, before, relays) = run(FloodMode::Redundant);
    let stored = topo.index().resolve(&Path::from_indices(&[0, 1, 0]).unwrap()).unwrap();
    assert_eq!(node.stats().floods_accepted, before.floods_accepted + 1);
    let mset = node.round_message_set(0).expect("round 0 started");
    assert_eq!(mset.value_on_path(stored), Some(66.5), "redundant mode stores ⟨0,1,0⟩");
    assert!(relays > 0, "redundant mode relays the flood onward");

    // Ablation: rejected at validation; M_v never sees a non-simple path.
    let (topo, node, before, relays) = run(FloodMode::SimpleOnly);
    assert_eq!(node.stats().floods_rejected, before.floods_rejected + 1);
    assert_eq!(node.stats().floods_accepted, before.floods_accepted, "nothing accepted");
    assert_eq!(relays, 0, "rejected floods must not be relayed");
    let mset = node.round_message_set(0).expect("round 0 started");
    assert_eq!(mset.len(), 1, "M_v holds only the node's own trivial path, not the injected flood");
    assert!(
        mset.paths().all(|p| topo.index().is_simple(p)),
        "no non-simple path can enter M_v under SimpleOnly"
    );
}

/// E11b end-to-end: the ablation still converges against the path
/// fabricator on K4 (the empirical outcome the ablation experiment
/// records), with the boundary visibly rejecting traffic that redundant
/// mode accepts.
#[test]
fn e11b_ablation_converges_against_path_fabricator() {
    let cfg = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![2.0, 4.0, 6.0, 0.0])
        .epsilon(0.5)
        .fault(NodeId::new(3), FaultKind::PathFabricator { forged_value: -77.0 })
        .protocol(ByzantineWitness::default().with_flood_mode(FloodMode::SimpleOnly))
        .seed(11)
        .build()
        .unwrap();
    let out = cfg.run().unwrap();
    assert!(out.all_decided(), "ablation: honest node undecided");
    assert!(out.converged(), "ablation: spread {}", out.spread());
    assert!(out.valid(), "ablation: validity broken: {:?}", out.outputs);
}

#[test]
fn spread_halving_survives_adversaries() {
    for (label, kind) in strategies() {
        let cfg = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 16.0, 4.0, 8.0])
            .epsilon(0.25)
            .range((0.0, 16.0))
            .fault(NodeId::new(3), kind)
            .seed(29)
            .build()
            .unwrap();
        let out = cfg.run().unwrap();
        let spreads = out.spread_by_round();
        for (r, w) in spreads.windows(2).enumerate() {
            assert!(
                w[1] <= w[0] / 2.0 + 1e-12,
                "{label}: halving broken at round {r}: {spreads:?}"
            );
        }
    }
}
