//! Failure injection: every Byzantine strategy in the library against the
//! full protocol. Convergence and validity must survive them all — the
//! paper's Theorem 4 promises exactly that on 3-reach graphs.

use dbac::core::adversary::AdversaryKind;
use dbac::core::run::{run_byzantine_consensus, RunConfig};
use dbac::graph::generators;
use dbac::graph::NodeId;

fn strategies() -> Vec<(&'static str, AdversaryKind)> {
    vec![
        ("crash", AdversaryKind::Crash),
        ("liar-high", AdversaryKind::ConstantLiar { value: 1e9 }),
        ("liar-low", AdversaryKind::ConstantLiar { value: -1e9 }),
        ("equivocator", AdversaryKind::Equivocator { low: -500.0, high: 500.0 }),
        ("relay-tamperer", AdversaryKind::RelayTamperer { spoof: 123.0 }),
        ("path-fabricator", AdversaryKind::PathFabricator { forged_value: -77.0 }),
        ("chaotic-1", AdversaryKind::Chaotic { seed: 1 }),
        ("chaotic-2", AdversaryKind::Chaotic { seed: 2 }),
    ]
}

#[test]
fn every_strategy_on_k4() {
    for (label, kind) in strategies() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(0.5)
            .byzantine(NodeId::new(3), kind)
            .seed(11)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.all_decided(), "{label}: honest node undecided");
        assert!(out.converged(), "{label}: spread {}", out.spread());
        assert!(out.valid(), "{label}: validity broken: {:?}", out.outputs);
    }
}

#[test]
fn every_strategy_on_figure_1a() {
    for (label, kind) in strategies() {
        let cfg = RunConfig::builder(generators::figure_1a(), 1)
            .inputs(vec![1.0, 3.0, 5.0, 7.0, 0.0])
            .epsilon(1.0)
            .byzantine(NodeId::new(4), kind)
            .seed(17)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.converged() && out.valid(), "{label} on figure 1a failed");
    }
}

#[test]
fn byzantine_position_does_not_matter_on_k4() {
    for position in 0..4usize {
        let mut inputs = vec![2.0, 4.0, 6.0, 8.0];
        inputs[position] = 0.0; // ignored
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(inputs)
            .epsilon(0.5)
            .byzantine(NodeId::new(position), AdversaryKind::ConstantLiar { value: -1e6 })
            .seed(23)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        assert!(out.converged() && out.valid(), "liar at position {position}");
    }
}

#[test]
fn spread_halving_survives_adversaries() {
    for (label, kind) in strategies() {
        let cfg = RunConfig::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 16.0, 4.0, 8.0])
            .epsilon(0.25)
            .range((0.0, 16.0))
            .byzantine(NodeId::new(3), kind)
            .seed(29)
            .build()
            .unwrap();
        let out = run_byzantine_consensus(&cfg).unwrap();
        let spreads = out.spread_by_round();
        for (r, w) in spreads.windows(2).enumerate() {
            assert!(
                w[1] <= w[0] / 2.0 + 1e-12,
                "{label}: halving broken at round {r}: {spreads:?}"
            );
        }
    }
}
