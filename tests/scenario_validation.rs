//! Error-path coverage for [`Scenario`] validation: every misuse must
//! return a *precise typed* [`RunError`] variant — property-tested over
//! the misuse space via the proptest shim, plus pinned protocol-level
//! checks (resilience bounds, network shape, runtime support).

use dbac::core::RunError;
use dbac::graph::{generators, NodeId};
use dbac::scenario::{
    Aad04, ByzantineWitness, CrashTwoReach, FaultKind, IterativeTrimmedMean, Runtime, Scenario,
};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any input vector whose length differs from `n` is rejected with the
    /// exact expected/got pair.
    #[test]
    fn wrong_input_length_is_typed(len in 0usize..12) {
        prop_assume!(len != 4);
        let err = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![1.0; len])
            .build()
            .unwrap_err();
        prop_assert_eq!(err, RunError::InputLengthMismatch { expected: 4, got: len });
    }

    /// Any ε ≤ 0 is rejected, echoing the offending value.
    #[test]
    fn non_positive_epsilon_is_typed(eps in -100.0f64..0.0) {
        let err = Scenario::builder(generators::clique(3), 1)
            .inputs(vec![0.0; 3])
            .epsilon(eps)
            .build()
            .unwrap_err();
        prop_assert_eq!(err, RunError::NonPositiveEpsilon { epsilon: eps });
    }

    /// A fault naming any node outside the graph is rejected with the
    /// offending index and the graph size.
    #[test]
    fn fault_outside_graph_is_typed(node in 4usize..64, n in 2usize..5) {
        let err = Scenario::builder(generators::clique(n), 1)
            .inputs(vec![0.0; n])
            .fault(NodeId::new(node), FaultKind::Crash)
            .build()
            .unwrap_err();
        prop_assert_eq!(err, RunError::FaultOutsideGraph { node, nodes: n });
    }

    /// More fault assignments than the bound `f` tolerates are rejected
    /// with both counts.
    #[test]
    fn exceeding_the_fault_bound_is_typed(configured in 1usize..4, f in 0usize..3) {
        prop_assume!(configured > f);
        let err = Scenario::builder(generators::clique(5), f)
            .inputs(vec![0.0; 5])
            .faults((0..configured).map(|i| (NodeId::new(i), FaultKind::Crash)))
            .build()
            .unwrap_err();
        prop_assert_eq!(err, RunError::TooManyFaults { configured, f });
    }

    /// Assigning two behaviours to one node is rejected, naming the node.
    #[test]
    fn duplicate_fault_is_typed(node in 0usize..4) {
        let err = Scenario::builder(generators::clique(4), 2)
            .inputs(vec![0.0; 4])
            .fault(NodeId::new(node), FaultKind::Crash)
            .fault(NodeId::new(node), FaultKind::ConstantLiar { value: 1.0 })
            .build()
            .unwrap_err();
        prop_assert_eq!(err, RunError::DuplicateFault { node });
    }

    /// Each protocol rejects fault kinds it cannot express, naming both
    /// the protocol and the fault.
    #[test]
    fn unsupported_faults_are_typed(choice in 0usize..3) {
        let (err, protocol, fault) = match choice {
            0 => (
                Scenario::builder(generators::clique(4), 1)
                    .inputs(vec![0.0; 4])
                    .fault(NodeId::new(3), FaultKind::Ramp { base: 0.0, slope: 1.0 })
                    .protocol(ByzantineWitness::default())
                    .run()
                    .unwrap_err(),
                "byzantine-witness",
                "ramp",
            ),
            1 => (
                Scenario::builder(generators::clique(4), 1)
                    .inputs(vec![0.0; 4])
                    .fault(NodeId::new(3), FaultKind::RelayTamperer { spoof: 1.0 })
                    .protocol(CrashTwoReach::default())
                    .run()
                    .unwrap_err(),
                "crash-two-reach",
                "relay-tamperer",
            ),
            _ => (
                Scenario::builder(generators::clique(4), 1)
                    .inputs(vec![0.0; 4])
                    .fault(NodeId::new(3), FaultKind::CrashAfter { sends: 2 })
                    .protocol(Aad04)
                    .run()
                    .unwrap_err(),
                "aad04",
                "crash-after",
            ),
        };
        prop_assert_eq!(err, RunError::UnsupportedFault { protocol, fault });
    }
}

#[test]
fn zero_and_non_finite_epsilon_are_typed() {
    let build = |eps: f64| {
        Scenario::builder(generators::clique(3), 1).inputs(vec![0.0; 3]).epsilon(eps).build()
    };
    assert_eq!(build(0.0).unwrap_err(), RunError::NonPositiveEpsilon { epsilon: 0.0 });
    assert!(matches!(
        build(f64::NAN).unwrap_err(),
        RunError::NonPositiveEpsilon { epsilon } if epsilon.is_nan()
    ));
    assert!(matches!(
        build(f64::INFINITY).unwrap_err(),
        RunError::NonPositiveEpsilon { epsilon } if epsilon.is_infinite()
    ));
}

#[test]
fn protocol_resilience_bounds_are_typed() {
    // AAD04 needs n > 3f: K3 with f = 1 is one node short.
    let err = Scenario::builder(generators::clique(3), 1)
        .inputs(vec![0.0; 3])
        .protocol(Aad04)
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        RunError::ResilienceExceeded { protocol: "aad04", n: 3, f: 1, requires: "n > 3f" }
    );
}

#[test]
fn complete_network_requirements_are_typed() {
    let err = Scenario::builder(generators::directed_cycle(5), 1)
        .inputs(vec![0.0; 5])
        .protocol(Aad04)
        .run()
        .unwrap_err();
    assert_eq!(err, RunError::IncompleteGraph { protocol: "aad04" });
}

#[test]
fn iterative_accepts_every_runtime() {
    // PR 9 replaced the synchronous iterative loop with a message-passing
    // engine: the historical `UnsupportedRuntime` rejection is gone and a
    // threaded run completes like any other protocol.
    let out = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![0.0, 1.0, 2.0, 50.0])
        .rounds(15)
        .fault(NodeId::new(3), FaultKind::ConstantLiar { value: 50.0 })
        .runtime(Runtime::threaded(Duration::from_secs(20)))
        .protocol(IterativeTrimmedMean::default())
        .run()
        .unwrap();
    assert!(out.incomplete.is_empty(), "{:?}", out.incomplete);
    assert!(out.valid(), "{:?}", out.outputs);
}
