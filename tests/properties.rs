//! Property-based tests (proptest) over random digraphs: the paper's
//! structural claims as universally quantified invariants.

use dbac::conditions::cover::{find_cover, is_cover};
use dbac::conditions::kreach::{one_reach, three_reach, two_reach};
use dbac::conditions::partition::{bcs, cca, ccs};
use dbac::conditions::reach::reach_set;
use dbac::conditions::reduced::source_component;
use dbac::graph::maxflow::max_vertex_disjoint_paths;
use dbac::graph::paths::{is_reachable, redundant_paths_ending_at, simple_paths_ending_at};
use dbac::graph::scc::is_strongly_connected_within;
use dbac::graph::subsets::subsets_up_to;
use dbac::graph::{Digraph, NodeId, NodeSet, Path, PathBudget};
use proptest::prelude::*;

/// A `NodeSet` from the low bits of a word (the fixtures never draw masks
/// past 64 nodes, so one word is plenty at any compiled width).
fn mask_set(bits: u64) -> NodeSet {
    (0..64).filter(|i| bits >> i & 1 == 1).map(NodeId::new).collect()
}

/// Strategy: a digraph on `n` nodes from an edge bitmask.
fn digraph(n: usize) -> impl Strategy<Value = Digraph> {
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v))).collect();
    let bits = pairs.len();
    (0u64..(1u64 << bits)).prop_map(move |mask| {
        let mut g = Digraph::new(n).unwrap();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
            }
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 17: the partition conditions coincide with the reach family.
    #[test]
    fn theorem_17_equivalences(g in digraph(4), f in 0usize..2) {
        prop_assert_eq!(one_reach(&g, f).holds(), ccs(&g, f).holds());
        prop_assert_eq!(two_reach(&g, f).holds(), cca(&g, f).holds());
        prop_assert_eq!(three_reach(&g, f).holds(), bcs(&g, f).holds());
    }

    /// Reach sets are antitone in the removal set and always contain v.
    #[test]
    fn reach_set_monotonicity(g in digraph(5), a in 0u64..32, b in 0u64..32) {
        let small = mask_set(a & b);
        let large = mask_set(a | b);
        for v in g.nodes() {
            if large.contains(v) { continue; }
            let r_small = reach_set(&g, v, small);
            let r_large = reach_set(&g, v, large);
            prop_assert!(r_large.is_subset(r_small), "antitone violated");
            prop_assert!(r_small.contains(v));
            // Every member really reaches v in the reduced graph.
            let keep = small.complement_in(5);
            let sub = g.induced(keep);
            for u in r_small.iter() {
                prop_assert!(is_reachable(&sub, u, v));
            }
        }
    }

    /// 3-reach ⇒ 2-reach ⇒ 1-reach (the conditions form a hierarchy).
    #[test]
    fn reach_condition_hierarchy(g in digraph(5), f in 0usize..2) {
        if three_reach(&g, f).holds() {
            prop_assert!(two_reach(&g, f).holds());
        }
        if two_reach(&g, f).holds() {
            prop_assert!(one_reach(&g, f).holds());
        }
    }

    /// Source components are strongly connected, silenced-free, and
    /// symmetric in their two arguments (Definition 6 remarks).
    #[test]
    fn source_component_invariants(g in digraph(5), f1 in 0u64..32, f2 in 0u64..32) {
        let f1 = mask_set(f1);
        let f2 = mask_set(f2);
        let s = source_component(&g, f1, f2);
        prop_assert_eq!(s, source_component(&g, f2, f1));
        prop_assert!(s.is_disjoint(f1 | f2));
        let reduced = g.reduced(f1, f2);
        prop_assert!(is_strongly_connected_within(&reduced, s));
    }

    /// Menger duality on small graphs: the max number of disjoint paths
    /// equals the min vertex cut (brute-forced).
    #[test]
    fn menger_duality(g in digraph(5)) {
        let s = NodeId::new(0);
        let t = NodeId::new(4);
        let flow = max_vertex_disjoint_paths(&g, s, t);
        // Brute-force min cut: smallest C ⊆ V∖{s,t} whose removal breaks
        // reachability; the direct edge is uncuttable.
        let candidates = NodeSet::universe(5)
            - NodeSet::singleton(s)
            - NodeSet::singleton(t);
        let mut min_cut = usize::MAX;
        for cut in subsets_up_to(candidates, 3) {
            let keep = cut.complement_in(5);
            if !is_reachable(&g.induced(keep), s, t) {
                min_cut = min_cut.min(cut.len());
            }
        }
        if g.has_edge(s, t) {
            // With a direct edge no vertex cut exists; flow ≥ 1.
            prop_assert!(flow >= 1);
        } else if min_cut != usize::MAX {
            prop_assert_eq!(flow, min_cut, "Menger violated");
        } else {
            // Not disconnectable by removing ≤3 internals = all of them.
            prop_assert!(flow >= 1 || !is_reachable(&g, s, t));
        }
    }

    /// Path enumeration invariants: redundant ⊇ simple; all end correctly;
    /// everything validates against the graph.
    #[test]
    fn path_enumeration_invariants(g in digraph(4)) {
        let v = NodeId::new(0);
        let budget = PathBudget::default();
        let simple = simple_paths_ending_at(&g, v, NodeSet::EMPTY, budget).unwrap();
        let redundant = redundant_paths_ending_at(&g, v, NodeSet::EMPTY, budget).unwrap();
        prop_assert!(redundant.len() >= simple.len());
        for p in &simple {
            prop_assert!(p.is_simple() && p.ter() == v && p.is_valid_in(&g));
            prop_assert!(redundant.contains(p));
        }
        for p in &redundant {
            prop_assert!(p.is_redundant() && p.ter() == v && p.is_valid_in(&g));
            prop_assert!(p.node_count() <= 2 * g.node_count());
        }
    }

    /// Cover search returns genuine witnesses and agrees with brute force.
    #[test]
    fn cover_search_sound_and_complete(
        paths in prop::collection::vec(0u64..64, 1..6),
        f in 0usize..3,
    ) {
        let paths: Vec<NodeSet> = paths
            .into_iter()
            .map(|bits| mask_set(bits | 1)) // non-empty
            .collect();
        let allowed = NodeSet::universe(6);
        let found = find_cover(&paths, f, allowed);
        let brute = subsets_up_to(allowed, f)
            .into_iter()
            .any(|c| is_cover(&paths, f, c));
        prop_assert_eq!(found.is_some(), brute);
        if let Some(c) = found {
            prop_assert!(is_cover(&paths, f, c));
            prop_assert!(c.is_subset(allowed));
        }
    }

    /// End-to-end protocol property: on K4 (3-reach for f = 1), any
    /// inputs, any seed and any single Byzantine strategy yield
    /// convergence and validity — Definition 1 as a random test.
    #[test]
    fn bw_end_to_end_on_k4(
        raw in prop::collection::vec(0.0f64..100.0, 3),
        seed in 0u64..1000,
        strategy in 0usize..4,
    ) {
        use dbac::scenario::{ByzantineWitness, FaultKind, Scenario};
        let kind = match strategy {
            0 => FaultKind::Crash,
            1 => FaultKind::ConstantLiar { value: 1e6 },
            2 => FaultKind::Equivocator { low: -1e3, high: 1e3 },
            _ => FaultKind::Chaotic { seed },
        };
        let inputs = vec![raw[0], raw[1], raw[2], 0.0];
        let out = Scenario::builder(dbac::graph::generators::clique(4), 1)
            .inputs(inputs)
            .epsilon(1.0)
            .fault(NodeId::new(3), kind)
            .seed(seed)
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap();
        prop_assert!(out.all_decided());
        prop_assert!(out.converged(), "spread {}", out.spread());
        prop_assert!(out.valid(), "outputs {:?}", out.outputs);
    }

    /// Crash-protocol property: on any random 5-node digraph satisfying
    /// 2-reach, the crash-tolerant protocol with a random mid-protocol
    /// crash converges validly (the paper's Table 2 async-crash cell).
    #[test]
    fn crash_protocol_on_random_two_reach_graphs(
        g in digraph(5),
        victim in 0usize..5,
        budget in 0usize..20,
        seed in 0u64..100,
    ) {
        use dbac::scenario::{CrashTwoReach, FaultKind, Scenario, SchedulerSpec};
        prop_assume!(two_reach(&g, 1).holds());
        let inputs: Vec<f64> = (0..5).map(|i| i as f64 * 2.0).collect();
        let out = Scenario::builder(g, 1)
            .inputs(inputs)
            .epsilon(0.5)
            .range((0.0, 8.0))
            .fault(NodeId::new(victim), FaultKind::CrashAfter { sends: budget })
            .scheduler(SchedulerSpec::legacy_random(seed))
            .protocol(CrashTwoReach::default())
            .run()
            .unwrap();
        prop_assert!(out.converged(), "outputs {:?}", out.outputs);
        prop_assert!(out.valid());
    }

    /// Paths concatenate associatively with endpoints preserved.
    #[test]
    fn path_concat_endpoints(a in 0usize..4, b in 0usize..4, c in 0usize..4) {
        prop_assume!(a != b && b != c);
        let p = Path::from_nodes(vec![NodeId::new(a), NodeId::new(b)]).unwrap();
        let q = Path::from_nodes(vec![NodeId::new(b), NodeId::new(c)]).unwrap();
        let pq = p.concat(&q).unwrap();
        prop_assert_eq!(pq.init(), NodeId::new(a));
        prop_assert_eq!(pq.ter(), NodeId::new(c));
        prop_assert_eq!(pq.len(), 2);
    }
}
