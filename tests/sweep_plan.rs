//! Sweep-plan behaviour at the facade level: failure isolation (an invalid
//! cell must not poison its siblings) and the expansion-size property
//! (cell count = product of axis lengths, with unique labels).

use dbac::graph::{generators, NodeId};
use dbac::scenario::sweep::{ExperimentPlan, InputSpec, SchedulerFamily};
use dbac::scenario::{Aad04, ByzantineWitness, FaultKind};
use proptest::prelude::*;
use std::collections::HashSet;

/// AAD04 requires `n > 3f`: on K3 with f = 1 the cell is rejected with
/// `ResilienceExceeded` at run time, while the K4 sibling in the same grid
/// still runs to convergence.
#[test]
fn run_time_rejection_surfaces_without_poisoning_siblings() {
    let sweep = ExperimentPlan::new()
        .protocol("aad04", Aad04)
        .graph("K3", generators::clique(3))
        .graph("K4", generators::clique(4))
        .fault_bound(1)
        .seed(7)
        .build()
        .expect("plan expands");
    assert_eq!(sweep.cell_count(), 2);
    // Both cells build — the resilience check is the protocol's, at run.
    assert!(sweep.cells().iter().all(|c| c.scenario().is_some()));

    let report = sweep.run();
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].coord("graph"), Some("K3"));
    let err = failures[0].summary.as_ref().unwrap_err();
    assert!(err.to_string().contains("n > 3f"), "unexpected error: {err}");

    let ok = report.rows.iter().find(|r| r.coord("graph") == Some("K4")).unwrap();
    assert!(ok.summary.as_ref().unwrap().converged, "sibling cell must still converge");

    // The reduced report keeps the failed group as an all-error row.
    let reduced = report.reduce();
    assert_eq!(reduced.cells.len(), 2);
    let bad = reduced.cells.iter().find(|c| c.coord("graph") == Some("K3")).unwrap();
    assert_eq!((bad.runs, bad.errors, bad.converged), (1, 1, 0));
}

/// A cell that fails scenario *validation* (fault node outside the graph)
/// is likewise isolated — captured at build, reported as an error row.
#[test]
fn build_time_rejection_surfaces_without_poisoning_siblings() {
    let sweep = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graph("K3", generators::clique(3))
        .graph("K4", generators::clique(4))
        .faults("liar@3", vec![(NodeId::new(3), FaultKind::ConstantLiar { value: 1e6 })])
        .build()
        .expect("plan expands despite the invalid cell");
    assert_eq!(sweep.cell_count(), 2);
    assert!(sweep.cells()[0].error().is_some(), "node 3 is outside K3");
    assert!(sweep.cells()[1].scenario().is_some());

    let report = sweep.run();
    assert_eq!(report.failures().len(), 1);
    let ok = report.rows.iter().find(|r| r.coord("graph") == Some("K4")).unwrap();
    assert!(ok.summary.as_ref().unwrap().converged);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The expansion size equals the product of the axis lengths, and
    /// every cell label is unique.
    #[test]
    fn expansion_size_is_the_product_of_axis_lengths(
        n_graphs in 1usize..3,
        n_eps in 1usize..4,
        n_scheds in 1usize..3,
        n_seeds in 1usize..4,
        n_place in 1usize..3,
        n_rounds in 1usize..3,
        n_inputs in 1usize..3,
    ) {
        let mut plan = ExperimentPlan::new().protocol("bw", ByzantineWitness::default());
        for i in 0..n_graphs {
            plan = plan.graph(format!("g{i}"), generators::clique(3 + i));
        }
        for i in 0..n_eps {
            plan = plan.epsilon(0.5 + i as f64);
        }
        for i in 0..n_scheds {
            plan = plan.scheduler(format!("sch{i}"), SchedulerFamily::fixed(1 + i as u64));
        }
        for s in 0..n_seeds {
            plan = plan.seed(s as u64);
        }
        for i in 0..n_place {
            plan = plan.placement(format!("p{i}"), |_, _| Vec::new());
        }
        for i in 0..n_rounds {
            plan = plan.rounds(3 + i as u32);
        }
        for i in 0..n_inputs {
            let value = i as f64;
            plan = plan.inputs(format!("in{i}"), InputSpec::from_fn(move |g| {
                vec![value; g.node_count()]
            }));
        }
        let sweep = plan.build().unwrap();
        let expected = n_graphs * n_eps * n_scheds * n_seeds * n_place * n_rounds * n_inputs;
        prop_assert_eq!(sweep.cell_count(), expected);
        let labels: HashSet<&str> = sweep.cells().iter().map(|c| c.label()).collect();
        prop_assert_eq!(labels.len(), expected, "labels must be unique");
        // Every cell validates: closures produced consistent scenarios.
        prop_assert!(sweep.cells().iter().all(|c| c.scenario().is_some()));
    }
}
