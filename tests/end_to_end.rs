//! Cross-crate integration: the full BW protocol on the experiment
//! catalog, checked for the paper's three properties (Definition 1).

use dbac::graph::{generators, NodeId};
use dbac::scenario::{FaultKind, Scenario};

fn check(scenario: &Scenario, label: &str) {
    let out = scenario.run().expect(label);
    assert!(out.all_decided(), "{label}: some honest node undecided");
    assert!(out.converged(), "{label}: spread {} ≥ ε", out.spread());
    assert!(out.valid(), "{label}: output outside honest input hull");
}

#[test]
fn k4_all_honest_multiple_seeds() {
    for seed in [0, 1, 2, 3, 4] {
        let cfg = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.5)
            .seed(seed)
            .build()
            .unwrap();
        check(&cfg, &format!("K4 seed {seed}"));
    }
}

#[test]
fn k4_determinism() {
    let run = |seed| {
        let cfg = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.5)
            .seed(seed)
            .build()
            .unwrap();
        cfg.run().unwrap().outputs
    };
    assert_eq!(run(9), run(9), "same seed must reproduce outputs exactly");
}

#[test]
fn figure_1a_with_crash() {
    let cfg = Scenario::builder(generators::figure_1a(), 1)
        .inputs(vec![0.0, 10.0, 5.0, 2.0, 0.0])
        .epsilon(0.5)
        .fault(NodeId::new(4), FaultKind::Crash)
        .seed(5)
        .build()
        .unwrap();
    check(&cfg, "figure 1a with crash");
}

#[test]
fn k5_with_liar() {
    let cfg = Scenario::builder(generators::clique(5), 1)
        .inputs(vec![1.0, 2.0, 3.0, 4.0, 0.0])
        .epsilon(0.5)
        .fault(NodeId::new(4), FaultKind::ConstantLiar { value: 1e7 })
        .seed(8)
        .build()
        .unwrap();
    check(&cfg, "K5 with liar");
}

#[test]
fn epsilon_larger_than_range_decides_immediately() {
    let cfg = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![1.0, 1.1, 1.2, 1.3])
        .epsilon(10.0)
        .seed(0)
        .build()
        .unwrap();
    let out = cfg.run().unwrap();
    assert_eq!(out.rounds, 0);
    assert!(out.converged());
    assert_eq!(out.sim_stats.messages_sent(), 0, "no communication needed");
}

#[test]
fn directed_two_clique_network_with_crash() {
    // The structural heart of Figure 1(b), executable in test time.
    let cfg = Scenario::builder(generators::figure_1b_small(), 1)
        .inputs(vec![0.0, 2.0, 4.0, 6.0, 10.0, 8.0, 7.0, 1.0])
        .epsilon(2.0)
        .fault(NodeId::new(7), FaultKind::Crash)
        .seed(2)
        .build()
        .unwrap();
    check(&cfg, "figure 1b small with crash");
}

#[test]
fn rounds_override_and_histories() {
    let cfg = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![0.0, 8.0, 2.0, 6.0])
        .epsilon(0.5)
        .rounds(3)
        .seed(6)
        .build()
        .unwrap();
    let out = cfg.run().unwrap();
    assert_eq!(out.rounds, 3);
    for v in out.honest.iter() {
        let h = out.histories[v.index()].as_ref().unwrap();
        assert_eq!(h.len(), 4, "x[0..=3] recorded");
    }
    // Spread after 3 rounds obeys the K/2^r bound even if ε not yet met.
    let spreads = out.spread_by_round();
    assert!(spreads[3] <= 8.0 / 8.0 + 1e-12);
}
