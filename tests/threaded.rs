//! The protocol under real OS concurrency: the thread-per-node runtime
//! must reach the same guarantees as the deterministic simulator.

use dbac::core::adversary::AdversaryKind;
use dbac::core::run::{run_byzantine_consensus_threaded, RunConfig};
use dbac::graph::{generators, NodeId};
use std::time::Duration;

#[test]
fn threaded_k4_all_honest() {
    let cfg = RunConfig::builder(generators::clique(4), 1)
        .inputs(vec![0.0, 10.0, 4.0, 6.0])
        .epsilon(0.5)
        .seed(1)
        .build()
        .unwrap();
    let out = run_byzantine_consensus_threaded(&cfg, Duration::from_secs(120)).unwrap();
    assert!(out.all_decided());
    assert!(out.converged(), "spread {}", out.spread());
    assert!(out.valid());
}

#[test]
fn threaded_k4_with_crash() {
    let cfg = RunConfig::builder(generators::clique(4), 1)
        .inputs(vec![2.0, 8.0, 4.0, 0.0])
        .epsilon(0.5)
        .byzantine(NodeId::new(3), AdversaryKind::Crash)
        .seed(2)
        .build()
        .unwrap();
    let out = run_byzantine_consensus_threaded(&cfg, Duration::from_secs(120)).unwrap();
    assert!(out.converged() && out.valid());
    assert!(out.outputs[3].is_none());
}

#[test]
fn threaded_k4_with_liar() {
    let cfg = RunConfig::builder(generators::clique(4), 1)
        .inputs(vec![2.0, 8.0, 4.0, 0.0])
        .epsilon(1.0)
        .byzantine(NodeId::new(3), AdversaryKind::ConstantLiar { value: 1e6 })
        .seed(3)
        .build()
        .unwrap();
    let out = run_byzantine_consensus_threaded(&cfg, Duration::from_secs(120)).unwrap();
    assert!(out.converged() && out.valid());
}
