//! The protocol under real OS concurrency: the thread-per-node runtime
//! must reach the same guarantees as the deterministic simulator.

use dbac::graph::{generators, NodeId};
use dbac::scenario::{FaultKind, Runtime, Scenario};
use std::time::Duration;

#[test]
fn threaded_k4_all_honest() {
    let cfg = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![0.0, 10.0, 4.0, 6.0])
        .epsilon(0.5)
        .seed(1)
        .runtime(Runtime::threaded(Duration::from_secs(120)))
        .build()
        .unwrap();
    let out = cfg.run().unwrap();
    assert!(out.all_decided());
    assert!(out.converged(), "spread {}", out.spread());
    assert!(out.valid());
}

#[test]
fn threaded_k4_with_crash() {
    let cfg = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![2.0, 8.0, 4.0, 0.0])
        .epsilon(0.5)
        .fault(NodeId::new(3), FaultKind::Crash)
        .seed(2)
        .runtime(Runtime::threaded(Duration::from_secs(120)))
        .build()
        .unwrap();
    let out = cfg.run().unwrap();
    assert!(out.converged() && out.valid());
    assert!(out.outputs[3].is_none());
}

#[test]
fn threaded_k4_with_liar() {
    let cfg = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![2.0, 8.0, 4.0, 0.0])
        .epsilon(1.0)
        .fault(NodeId::new(3), FaultKind::ConstantLiar { value: 1e6 })
        .seed(3)
        .runtime(Runtime::threaded(Duration::from_secs(120)))
        .build()
        .unwrap();
    let out = cfg.run().unwrap();
    assert!(out.converged() && out.valid());
}
