//! Live stats registry: three-way runtime parity and concurrency.
//!
//! Two guarantees pinned here:
//!
//! 1. **Parity** — the f = 0 differential scenario (decisions independent
//!    of message interleaving, see `cross_runtime.rs`) produces final
//!    snapshots whose *deterministic* counters agree across `Sim`,
//!    `Threaded` and `Net`: protocol progress (rounds fired, witness
//!    completions, MC firings, FRA marks), per-node completion gauges, and
//!    the per-class transport ledger between the two message-complete
//!    runtimes (Sim and Net deliver every sent message; Threaded may
//!    legitimately park undelivered messages once a node finishes).
//!    Additionally, on every runtime, an attached registry's snapshot is
//!    bit-for-bit equal to `Outcome::sim_stats` — the registry *is* the
//!    outcome's ground truth, not a parallel bookkeeping path.
//! 2. **Liveness** — polling a shared registry *during* a Threaded run
//!    never panics, and every observed total is monotone non-decreasing:
//!    single-writer shards merged on read can tear across cells but never
//!    within one, so each counter only grows.

use dbac::graph::generators;
use dbac::scenario::{
    ByzantineWitness, MsgClass, Outcome, Runtime, Scenario, ScenarioBuilder, StatsRegistry,
};
use std::sync::Arc;
use std::time::Duration;

fn differential() -> ScenarioBuilder {
    Scenario::builder(generators::clique(4), 0)
        .inputs(vec![0.0, 10.0, 4.0, 6.0])
        .epsilon(0.25)
        .seed(5)
        .protocol(ByzantineWitness::default())
}

fn run_with_registry(runtime: Runtime) -> (Arc<StatsRegistry>, Outcome) {
    let registry = StatsRegistry::new(4);
    let out = differential()
        .runtime(runtime)
        .stats(Arc::clone(&registry))
        .run()
        .expect("differential scenario runs");
    (registry, out)
}

#[test]
fn registry_is_ground_truth_on_all_three_runtimes() {
    for runtime in [
        Runtime::Sim,
        Runtime::threaded(Duration::from_secs(120)),
        Runtime::net(Duration::from_secs(120)),
    ] {
        let label = format!("{runtime:?}");
        let (registry, out) = run_with_registry(runtime);
        assert_eq!(
            registry.snapshot(),
            out.sim_stats,
            "{label}: the attached registry and the outcome must agree bit-for-bit"
        );
        assert!(out.converged() && out.valid(), "{label}");
    }
}

#[test]
fn deterministic_counters_agree_across_runtimes() {
    let (_, sim) = run_with_registry(Runtime::Sim);
    let (_, threaded) = run_with_registry(Runtime::threaded(Duration::from_secs(120)));
    let (_, net) = run_with_registry(Runtime::net(Duration::from_secs(120)));

    // Protocol progress is a pure function of the scenario at f = 0.
    assert_eq!(sim.sim_stats.protocol, threaded.sim_stats.protocol, "threaded protocol counters");
    assert_eq!(sim.sim_stats.protocol, net.sim_stats.protocol, "net protocol counters");
    assert!(sim.sim_stats.protocol.rounds_fired > 0, "the run must make progress");
    assert!(sim.sim_stats.protocol.witness_completions > 0);
    assert!(sim.sim_stats.protocol.mc_firings > 0);

    // Every node finishes on every runtime.
    for (label, out) in [("sim", &sim), ("threaded", &threaded), ("net", &net)] {
        let nodes = out.sim_stats.nodes.measured().expect("node gauges observed");
        assert!(nodes.iter().all(|n| n.done), "{label}: all nodes must finish: {nodes:?}");
    }

    // Sim and Net both drain the system completely: the per-class ledger
    // must agree message-for-message.
    let sim_t = sim.sim_stats.transport.measured().expect("sim measures transport");
    let net_t = net.sim_stats.transport.measured().expect("net measures transport");
    for class in MsgClass::ALL {
        assert_eq!(
            sim_t.class(class),
            net_t.class(class),
            "per-class ledger diverged for {}",
            class.label()
        );
    }

    // Threaded sends the same messages (decisions are schedule-independent)
    // even if late arrivals to finished nodes may stay undelivered.
    let thr_t = threaded.sim_stats.transport.measured().expect("threaded measures transport");
    assert_eq!(sim_t.total().sent, thr_t.total().sent, "threaded send totals");
}

#[test]
fn live_threaded_polling_is_monotone_and_safe() {
    let registry = StatsRegistry::new(4);
    let scenario = differential()
        .runtime(Runtime::Threaded {
            timeout: Duration::from_secs(120),
            jitter_micros: 200, // stretch the run so the poller overlaps it
        })
        .stats(Arc::clone(&registry))
        .build()
        .expect("differential scenario builds");
    let run = std::thread::spawn(move || scenario.run().expect("threaded run"));

    // Poll the registry while node threads are writing. Merged reads may
    // tear *across* counters but each total must be monotone.
    let (mut polls, mut last_sent, mut last_delivered, mut last_rounds) = (0u64, 0u64, 0u64, 0u64);
    while !run.is_finished() {
        let snap = registry.snapshot();
        let (sent, delivered) = (snap.messages_sent(), snap.messages_delivered());
        assert!(sent >= last_sent, "sent regressed: {last_sent} -> {sent}");
        assert!(
            delivered >= last_delivered,
            "delivered regressed: {last_delivered} -> {delivered}"
        );
        assert!(
            snap.protocol.rounds_fired >= last_rounds,
            "rounds regressed: {last_rounds} -> {}",
            snap.protocol.rounds_fired
        );
        (last_sent, last_delivered, last_rounds) = (sent, delivered, snap.protocol.rounds_fired);
        polls += 1;
    }
    let out = run.join().expect("runner thread joins");

    assert!(polls > 0, "the poller must observe the run at least once");
    assert!(last_sent > 0, "live polling must see traffic before the run ends");
    assert_eq!(
        registry.snapshot(),
        out.sim_stats,
        "after the run the registry settles to exactly the outcome snapshot"
    );
    assert!(out.converged() && out.valid());
}
