//! Chaos invariant harness: randomized, seeded link-fault plans must never
//! cost *safety* — only liveness, and liveness loss must always surface as
//! data (a stalled node, a typed error, a per-node `incomplete` entry),
//! never as a panic or a hang past the watchdog.
//!
//! Three invariant families:
//!
//! 1. **Safety under arbitrary chaos** (f = 0, Sim): whatever a random
//!    plan does to the links, decided honest outputs stay in the honest
//!    input hull and deciders ε-agree. Nodes starved of messages simply
//!    do not decide.
//! 2. **Graceful degradation** (Threaded): a fully partitioned node makes
//!    the run return a scored partial [`Outcome`] with that node in
//!    `incomplete`, not a whole-run error.
//! 3. **Determinism**: a zero-probability plan is bit-identical to no
//!    plan, and the same (plan, seed) replays bit-identically — on both
//!    in-process runtimes.
//! 4. **Wire parity** (Sim vs Net): fault plans whose per-edge decisions
//!    are independent of message arrival order (`Omit`, `Drop {1.0}`,
//!    `Duplicate {1.0}`, all-covering `Partition` windows) must agree
//!    message-for-message between the event-queue simulator and the real
//!    socket runtime — same decisions, same histories, same per-edge loss
//!    and duplication counters. A partition that starves nodes over real
//!    sockets must surface as `Outcome::incomplete`, never as an error.

use dbac::core::error::RunError;
use dbac::graph::{generators, Digraph, NodeId};
use dbac::scenario::{
    ByzantineWitness, CrashTwoReach, FaultKind, IncompleteReason, IterativeTrimmedMean, LinkFault,
    LinkFaultPlan, MsgClass, Outcome, Runtime, Scenario,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A random plan over the graph's real edges: 1–6 faults drawn from every
/// [`LinkFault`] kind, with destructive probabilities kept below 1 so the
/// chaos is severe but not trivially total.
fn random_plan(g: &Digraph, seed: u64) -> LinkFaultPlan {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let count = rng.gen_range(1..=edges.len().min(6));
    let mut plan = LinkFaultPlan::new(seed);
    for _ in 0..count {
        let (from, to) = edges[rng.gen_range(0..edges.len())];
        let fault = match rng.gen_range(0u32..6) {
            0 => LinkFault::Drop { prob: rng.gen_range(0.0..0.9) },
            1 => LinkFault::Duplicate { prob: rng.gen_range(0.0..0.9) },
            2 => LinkFault::Reorder { window: rng.gen_range(0u64..32) },
            3 => LinkFault::Corrupt { prob: rng.gen_range(0.0..0.6) },
            4 => {
                let from_step = rng.gen_range(0u64..40);
                LinkFault::Partition { from_step, to_step: from_step + rng.gen_range(0u64..80) }
            }
            _ => LinkFault::Omit,
        };
        plan = plan.fault(from, to, fault);
    }
    plan
}

/// Case rotation: both protocols on the cliques, CrashTwoReach on the
/// 8-node bridged Figure 1(b) topology (BW's redundant flooding is too
/// heavy there for a 240-case loop — seconds per case).
fn case_shape(case: u64) -> (&'static str, Digraph, bool) {
    match case % 6 {
        0 => ("K4", generators::clique(4), true),
        1 => ("K5", generators::clique(5), true),
        2 => ("fig1b-small", generators::figure_1b_small(), false),
        3 => ("K4", generators::clique(4), false),
        4 => ("K5", generators::clique(5), false),
        _ => ("fig1b-small", generators::figure_1b_small(), false),
    }
}

/// Safety among deciders: hull containment always, ε-agreement among the
/// honest nodes that decided. Vacuously true when chaos starved everyone.
fn assert_safe(out: &Outcome, case: u64, graph: &str) {
    assert!(out.valid(), "validity violated: case {case} on {graph}: {:?}", out.outputs);
    assert!(
        out.spread() <= out.epsilon,
        "ε-agreement violated among deciders: case {case} on {graph}: spread {} > ε {}",
        out.spread(),
        out.epsilon
    );
    audit_transport_ledger(out, &format!("case {case} on {graph}"));
}

/// The transport ledger must balance, per message class: everything that
/// entered the system (`sent + duplicated`) reached at most one terminal
/// state (`delivered + dropped + corrupted + rejected`), with the rest
/// still in flight. `undelivered()` saturates, so the inequality is
/// asserted explicitly — the ledger identity alone would mask overcounts.
fn audit_transport_ledger(out: &Outcome, context: &str) {
    let Some(transport) = out.sim_stats.transport.measured() else { return };
    for class in MsgClass::ALL {
        let c = transport.class(class);
        let inflow = c.sent + c.duplicated;
        let terminal = c.delivered + c.dropped + c.corrupted + c.rejected;
        assert!(
            terminal <= inflow,
            "{context}: {} ledger overdrawn: {terminal} terminal events from {inflow} inputs \
             ({c:?})",
            class.label(),
        );
        assert_eq!(
            inflow,
            terminal + c.undelivered(),
            "{context}: {} ledger does not balance ({c:?})",
            class.label(),
        );
    }
}

/// Invariant family 1: 240 randomized fault-free (f = 0) cases across
/// three topologies and both core protocols. Chaos may stall nodes but
/// never corrupts a decision, and every failure mode is typed.
#[test]
fn randomized_chaos_never_violates_safety() {
    let (mut decided_runs, mut stalled_runs) = (0u32, 0u32);
    for case in 0..240u64 {
        let (graph_label, g, bw) = case_shape(case);
        let n = g.node_count();
        let plan = random_plan(&g, case);
        let builder = Scenario::builder(g, 0)
            .inputs((0..n).map(|i| i as f64).collect())
            .epsilon(0.5)
            .seed(case)
            .link_faults(plan);
        let cfg = if bw {
            builder.protocol(ByzantineWitness::default())
        } else {
            builder.protocol(CrashTwoReach::default())
        }
        .build()
        .expect("random plans over real edges validate");
        match cfg.run() {
            Ok(out) => {
                assert_safe(&out, case, graph_label);
                if out.all_decided() {
                    decided_runs += 1;
                } else {
                    stalled_runs += 1;
                }
            }
            // Liveness loss is allowed, but only as a typed runtime error.
            Err(RunError::Sim(_)) => stalled_runs += 1,
            Err(e) => panic!("untyped failure under chaos: case {case} on {graph_label}: {e}"),
        }
    }
    // The harness must exercise both regimes, or the invariants are vacuous.
    assert!(decided_runs > 0, "no chaos case ever decided");
    assert!(stalled_runs > 0, "no chaos case ever lost liveness");
}

/// Invariant family 1, f = 1: chaos composed with a node-level crash fault
/// keeps hull containment (the crash input sits inside the honest hull).
#[test]
fn randomized_chaos_composes_with_crash_faults() {
    for case in 0..40u64 {
        let g = generators::clique(4);
        let plan = random_plan(&g, 1_000 + case);
        let cfg = Scenario::builder(g, 1)
            .inputs(vec![0.0, 10.0, 5.0, 5.0])
            .epsilon(1.0)
            .fault(NodeId::new(3), FaultKind::Crash)
            .seed(case)
            .link_faults(plan)
            .protocol(CrashTwoReach::default())
            .build()
            .unwrap();
        match cfg.run() {
            Ok(out) => assert!(out.valid(), "case {case}: {:?}", out.outputs),
            Err(RunError::Sim(_)) => {}
            Err(e) => panic!("untyped failure under chaos: case {case}: {e}"),
        }
    }
}

/// Invariant family 2: a Threaded run with one fully partitioned node
/// degrades to a scored partial outcome — survivors decide and ε-agree,
/// the victim is reported per-node in `incomplete`, and nothing errors.
#[test]
fn threaded_partitioned_node_degrades_to_partial_outcome() {
    let g = generators::clique(4);
    let victim = NodeId::new(3);
    let mut plan = LinkFaultPlan::new(11);
    for v in 0..3 {
        plan = plan.fault(NodeId::new(v), victim, LinkFault::Omit);
    }
    let out = Scenario::builder(g, 1)
        .inputs(vec![0.0, 10.0, 4.0, 6.0])
        .epsilon(0.5)
        .seed(4)
        .link_faults(plan)
        .runtime(Runtime::Threaded { timeout: Duration::from_secs(4), jitter_micros: 0 })
        .protocol(ByzantineWitness::default())
        .build()
        .unwrap()
        .run()
        .expect("degradation must not be a whole-run error");
    for v in 0..3 {
        assert!(out.outputs[v].is_some(), "survivor {v} must still decide");
    }
    assert!(out.valid());
    assert!(out.spread() <= out.epsilon, "survivors must ε-agree, spread {}", out.spread());
    assert_eq!(out.outputs[3], None, "the starved node cannot have decided");
    assert!(out.degraded());
    assert_eq!(out.incomplete.len(), 1, "exactly the victim is incomplete: {:?}", out.incomplete);
    assert_eq!(out.incomplete[0].node, victim);
    assert_eq!(out.incomplete[0].reason, IncompleteReason::Timeout);
    assert!(out.sim_stats.messages_dropped() > 0, "the omitted edges must count their losses");
    audit_transport_ledger(&out, "threaded partition");
}

/// Invariant family 4: a deterministic duplicate storm (every copy doubled
/// on two edges) agrees message-for-message between Sim and Net — the
/// decisions, trajectories, and every transport counter except the
/// Net-only rejection count, which must stay zero.
#[test]
fn net_duplicate_storm_matches_sim_message_for_message() {
    let plan = || {
        LinkFaultPlan::new(9)
            .fault(NodeId::new(0), NodeId::new(1), LinkFault::Duplicate { prob: 1.0 })
            .fault(NodeId::new(2), NodeId::new(3), LinkFault::Duplicate { prob: 1.0 })
    };
    let run = |rt: Runtime| {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.25)
            .seed(9)
            .link_faults(plan())
            .runtime(rt)
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap()
    };
    let sim = run(Runtime::Sim);
    let net = run(Runtime::net(Duration::from_secs(120)));
    assert!(sim.converged() && sim.valid());
    assert_eq!(sim.outputs, net.outputs, "decisions must survive the duplicate storm identically");
    assert_eq!(sim.histories, net.histories);
    assert!(net.incomplete.is_empty(), "duplicates must not cost liveness: {:?}", net.incomplete);
    assert_eq!(sim.sim_stats.messages_sent(), net.sim_stats.messages_sent());
    assert_eq!(sim.sim_stats.messages_duplicated(), net.sim_stats.messages_duplicated());
    assert!(net.sim_stats.messages_duplicated() > 0, "the storm must actually duplicate");
    assert_eq!(sim.sim_stats.messages_dropped(), 0);
    assert_eq!(net.sim_stats.messages_dropped(), 0);
    assert_eq!(net.sim_stats.messages_rejected(), 0, "every duplicated frame must still decode");
    audit_transport_ledger(&sim, "duplicate storm (sim)");
    audit_transport_ledger(&net, "duplicate storm (net)");
}

/// Invariant family 4: an order-independent loss schedule — one edge under
/// a total `Partition` window, another under `Drop {1.0}` — starves the
/// same pools on both runtimes: identical (non-)decisions, *exactly* equal
/// per-edge loss counters, and over real sockets the starvation lands as
/// per-node `incomplete` entries once the watchdog fires, not as an error.
#[test]
fn net_total_loss_schedule_matches_sim_and_degrades_to_incomplete() {
    let plan = || {
        LinkFaultPlan::new(17)
            .fault(
                NodeId::new(0),
                NodeId::new(1),
                LinkFault::Partition { from_step: 0, to_step: u64::MAX },
            )
            .fault(NodeId::new(2), NodeId::new(3), LinkFault::Drop { prob: 1.0 })
    };
    let run = |rt: Runtime| {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.25)
            .seed(17)
            .link_faults(plan())
            .runtime(rt)
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap()
    };
    let sim = run(Runtime::Sim);
    let net = run(Runtime::net(Duration::from_secs(3)));
    assert_safe(&sim, 17, "K4");
    assert_eq!(sim.outputs, net.outputs, "starvation must be runtime-independent");
    assert_eq!(sim.histories, net.histories);
    assert_eq!(
        sim.sim_stats.messages_dropped(),
        net.sim_stats.messages_dropped(),
        "the loss schedule must cut exactly the same messages on both runtimes"
    );
    assert!(net.sim_stats.messages_dropped() > 0, "the schedule must actually cut messages");
    assert!(!sim.all_decided(), "a total cut through a flood edge must starve someone");
    assert!(net.degraded(), "net starvation must surface as degradation");
    assert!(!net.incomplete.is_empty(), "starved nodes must be reported per-node");
    for entry in &net.incomplete {
        assert_eq!(entry.reason, IncompleteReason::Timeout, "starvation is a timeout: {entry:?}");
    }
    assert_eq!(net.sim_stats.messages_rejected(), 0, "loss must come from the plan, not the codec");
    audit_transport_ledger(&sim, "loss schedule (sim)");
    audit_transport_ledger(&net, "loss schedule (net)");
}

/// Invariant family 2 over real sockets, mirroring
/// [`threaded_partitioned_node_degrades_to_partial_outcome`]: with `f = 1`
/// headroom, a node whose in-edges are all omitted times out as a per-node
/// `incomplete` entry while the survivors still decide and ε-agree.
#[test]
fn net_partitioned_node_degrades_to_partial_outcome() {
    let g = generators::clique(4);
    let victim = NodeId::new(3);
    let mut plan = LinkFaultPlan::new(11);
    for v in 0..3 {
        plan = plan.fault(NodeId::new(v), victim, LinkFault::Omit);
    }
    let out = Scenario::builder(g, 1)
        .inputs(vec![0.0, 10.0, 4.0, 6.0])
        .epsilon(0.5)
        .seed(4)
        .link_faults(plan)
        .runtime(Runtime::net(Duration::from_secs(4)))
        .protocol(ByzantineWitness::default())
        .build()
        .unwrap()
        .run()
        .expect("degradation must not be a whole-run error");
    for v in 0..3 {
        assert!(out.outputs[v].is_some(), "survivor {v} must still decide");
    }
    assert!(out.valid());
    assert!(out.spread() <= out.epsilon, "survivors must ε-agree, spread {}", out.spread());
    assert_eq!(out.outputs[3], None, "the starved node cannot have decided");
    assert!(out.degraded());
    assert_eq!(out.incomplete.len(), 1, "exactly the victim is incomplete: {:?}", out.incomplete);
    assert_eq!(out.incomplete[0].node, victim);
    assert_eq!(out.incomplete[0].reason, IncompleteReason::Timeout);
    assert!(out.sim_stats.messages_dropped() > 0, "the omitted edges must count their losses");
    assert_eq!(out.sim_stats.messages_rejected(), 0, "every delivered frame must decode");
    audit_transport_ledger(&out, "net partition");
}

/// Runs one Sim scenario with full trace recording.
fn sim_outcome(plan: Option<LinkFaultPlan>, seed: u64) -> Outcome {
    Scenario::builder(generators::clique(4), 0)
        .inputs(vec![0.0, 10.0, 4.0, 6.0])
        .epsilon(0.25)
        .seed(seed)
        .record_trace(true)
        .link_faults_opt(plan)
        .protocol(ByzantineWitness::default())
        .run()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariant family 3: all-zero probabilities make the chaos layer
    /// invisible — bit-identical to a run with no plan at all, because
    /// link decisions never consume scheduler randomness.
    #[test]
    fn zero_probability_plan_is_bit_identical_to_no_plan(seed in 0u64..1_000) {
        let zero = LinkFaultPlan::new(seed ^ 0xABCD)
            .fault(NodeId::new(0), NodeId::new(1), LinkFault::Drop { prob: 0.0 })
            .fault(NodeId::new(1), NodeId::new(2), LinkFault::Duplicate { prob: 0.0 })
            .fault(NodeId::new(2), NodeId::new(3), LinkFault::Corrupt { prob: 0.0 })
            .fault(NodeId::new(3), NodeId::new(0), LinkFault::Reorder { window: 0 })
            .fault(NodeId::new(0), NodeId::new(2), LinkFault::Partition { from_step: 5, to_step: 5 });
        let (plain, chaotic) = (sim_outcome(None, seed), sim_outcome(Some(zero), seed));
        prop_assert_eq!(&plain.outputs, &chaotic.outputs);
        prop_assert_eq!(&plain.histories, &chaotic.histories);
        // Everything but the wall clock is replay-deterministic.
        prop_assert_eq!(&plain.sim_stats.transport, &chaotic.sim_stats.transport);
        prop_assert_eq!(&plain.sim_stats.protocol, &chaotic.sim_stats.protocol);
        prop_assert_eq!(&plain.sim_stats.nodes, &chaotic.sim_stats.nodes);
        prop_assert_eq!(&plain.sim_stats.virtual_time, &chaotic.sim_stats.virtual_time);
        prop_assert_eq!(&plain.trace, &chaotic.trace);
    }

    /// Invariant family 3: the same (plan, seed) replays bit-identically
    /// under the simulator, trace and counters included.
    #[test]
    fn sim_chaos_replay_is_bit_identical(seed in 0u64..1_000) {
        let g = generators::clique(4);
        let run = || sim_outcome(Some(random_plan(&g, seed)), seed);
        let (a, b) = (run(), run());
        prop_assert_eq!(&a.outputs, &b.outputs);
        prop_assert_eq!(&a.histories, &b.histories);
        prop_assert_eq!(&a.sim_stats.transport, &b.sim_stats.transport);
        prop_assert_eq!(&a.sim_stats.protocol, &b.sim_stats.protocol);
        prop_assert_eq!(&a.sim_stats.nodes, &b.sim_stats.nodes);
        prop_assert_eq!(&a.sim_stats.virtual_time, &b.sim_stats.virtual_time);
        prop_assert_eq!(&a.trace, &b.trace);
    }
}

/// Invariant family 3 under real threads: for f = 0 the protocol's
/// decisions are schedule-independent, so the same (plan, seed) must give
/// identical outputs, histories and stragglers across Threaded replays.
#[test]
fn threaded_chaos_replay_is_identical() {
    let run = || {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.25)
            .seed(21)
            .link_faults(
                LinkFaultPlan::new(21)
                    .fault(NodeId::new(0), NodeId::new(1), LinkFault::Duplicate { prob: 0.4 })
                    .fault(NodeId::new(2), NodeId::new(3), LinkFault::Reorder { window: 50 }),
            )
            .runtime(Runtime::Threaded { timeout: Duration::from_secs(120), jitter_micros: 0 })
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.histories, b.histories);
    assert_eq!(a.incomplete, b.incomplete);
    assert!(a.converged() && a.valid());
}

/// Invariant family 1 for the iterative W-MSR engine, past the 128-node
/// wall: chaos over a 150-node circulant may stall rounds but never
/// perturbs a fired one. At `f = 0` a node fires only on its complete
/// in-neighborhood, so every node that finishes holds exactly the
/// chaos-free trajectory value — and the `iter` message class must keep a
/// balanced transport ledger (`sent + duplicated` equals terminal states
/// plus in-flight) while every other class stays silent.
#[test]
fn iterative_chaos_balances_the_iter_ledger() {
    let n = 150;
    let rounds = 40;
    let reference = Scenario::builder(generators::circulant_pow2(n), 0)
        .inputs((0..n).map(|i| i as f64).collect())
        .epsilon(1e-3)
        .rounds(rounds)
        .protocol(IterativeTrimmedMean::default())
        .run()
        .expect("chaos-free reference");
    assert!(reference.all_decided() && reference.converged());

    let (mut decided_runs, mut stalled_runs) = (0u32, 0u32);
    for case in 0..12u64 {
        let g = generators::circulant_pow2(n);
        let plan = random_plan(&g, case.wrapping_add(7_000));
        let out = Scenario::builder(g, 0)
            .inputs((0..n).map(|i| i as f64).collect())
            .epsilon(1e-3)
            .rounds(rounds)
            .seed(case)
            .link_faults(plan)
            .protocol(IterativeTrimmedMean::default())
            .run()
            .expect("chaos stalls the iterative engine, it never errors");
        assert_safe(&out, case, "circulant-pow2-150");
        let transport = out.sim_stats.transport.measured().expect("sim transport is observable");
        assert!(transport.class(MsgClass::Iter).sent > 0, "case {case}: no iter traffic");
        for class in MsgClass::ALL {
            if class != MsgClass::Iter {
                let c = transport.class(class);
                assert_eq!(
                    (c.sent, c.duplicated),
                    (0, 0),
                    "case {case}: {} traffic in an iterative run",
                    class.label()
                );
            }
        }
        // Fired rounds are chaos-proof: whoever decided matches the
        // chaos-free trajectory bit-for-bit.
        let mut all = true;
        for (v, decided) in out.outputs.iter().enumerate() {
            match decided {
                Some(x) => assert_eq!(
                    x.to_bits(),
                    reference.outputs[v].unwrap().to_bits(),
                    "case {case}: node {v} fired a perturbed round"
                ),
                None => all = false,
            }
        }
        if all {
            decided_runs += 1;
        } else {
            stalled_runs += 1;
        }
    }
    assert!(decided_runs > 0, "no iterative chaos case ever finished");
    assert!(stalled_runs > 0, "no iterative chaos case ever lost liveness");
}
