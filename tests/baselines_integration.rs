//! Integration across the baseline algorithms and the crash-tolerant
//! variant: the Table 2 / E9 / E10 claims at test scale.

use dbac::baselines::aad04::{run_aad04, AadAdversary};
use dbac::baselines::iterative::{is_r_s_robust, run_iterative, IterStrategy};
use dbac::conditions::kreach::{three_reach, two_reach};
use dbac::core::adversary::AdversaryKind;
use dbac::core::crash::run_crash_consensus;
use dbac::core::run::{run_byzantine_consensus, RunConfig};
use dbac::graph::{generators, NodeId};

#[test]
fn crash_protocol_matches_two_reach_feasibility() {
    // K3 satisfies 2-reach for f=1: the crash protocol works there even
    // though Byzantine consensus is impossible (3-reach fails).
    let g = generators::clique(3);
    assert!(two_reach(&g, 1).holds());
    assert!(!three_reach(&g, 1).holds());
    let out = run_crash_consensus(g, 1, &[0.0, 6.0, 3.0], 0.5, &[(NodeId::new(2), 1)], 3).unwrap();
    assert!(out.converged() && out.valid());
}

#[test]
fn aad04_and_bw_agree_on_cliques() {
    // E9: the generalization is conservative — both algorithms solve the
    // same instances on complete networks.
    let inputs = vec![1.0, 5.0, 3.0, 0.0];
    let byz = NodeId::new(3);

    let bw_cfg = RunConfig::builder(generators::clique(4), 1)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .byzantine(byz, AdversaryKind::ConstantLiar { value: -1e5 })
        .seed(7)
        .build()
        .unwrap();
    let bw = run_byzantine_consensus(&bw_cfg).unwrap();
    assert!(bw.converged() && bw.valid());

    let aad =
        run_aad04(4, 1, &inputs, 0.5, &[(byz, AadAdversary::ConstantLiar { value: -1e5 })], 7)
            .unwrap();
    assert!(aad.converged() && aad.valid());

    // Both respect the same honest hull [1, 5].
    for v in bw.honest_outputs() {
        assert!((1.0..=5.0).contains(&v));
    }
    for w in aad.honest.iter() {
        let v = aad.outputs[w.index()].unwrap();
        assert!((1.0..=5.0).contains(&v));
    }
}

#[test]
fn e10_separation_instance() {
    // figure_1b_small: 3-reach holds, (2,2)-robustness fails — iterative
    // local filtering stalls, BW converges.
    let g = generators::figure_1b_small();
    assert!(three_reach(&g, 1).holds());
    assert!(!is_r_s_robust(&g, 2, 2));

    let inputs = vec![0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0];
    let it = run_iterative(&g, 1, &inputs, &[], 60);
    assert!(it.final_spread() > 9.0, "iterative should stall at {}", it.final_spread());

    // A crashed node keeps this affordable in debug builds (the release
    // `baseline_compare` binary runs the all-honest + liar variants).
    let cfg = RunConfig::builder(g, 1)
        .inputs(inputs)
        .epsilon(4.0)
        .byzantine(NodeId::new(7), dbac::core::adversary::AdversaryKind::Crash)
        .seed(3)
        .build()
        .unwrap();
    let out = run_byzantine_consensus(&cfg).unwrap();
    assert!(out.converged() && out.valid(), "BW must converge where W-MSR stalls");
}

#[test]
fn iterative_works_where_robustness_holds() {
    let g = generators::clique(5);
    assert!(is_r_s_robust(&g, 2, 2));
    let run = run_iterative(
        &g,
        1,
        &[0.0, 1.0, 2.0, 3.0, 0.0],
        &[(NodeId::new(4), IterStrategy::Ramp { base: -10.0, slope: -5.0 })],
        80,
    );
    assert!(run.final_spread() < 1e-6);
    assert!(run.valid());
}

#[test]
fn crash_protocol_with_two_faults() {
    // f = 2 end-to-end (the BW protocol's f = 2 instances are beyond test
    // budgets, but the simple-path crash protocol handles them easily).
    let g = generators::clique(6);
    assert!(two_reach(&g, 2).holds());
    let inputs: Vec<f64> = (0..6).map(|i| i as f64).collect();
    let out =
        run_crash_consensus(g, 2, &inputs, 0.5, &[(NodeId::new(4), 0), (NodeId::new(5), 7)], 13)
            .unwrap();
    assert!(out.converged() && out.valid());
    assert!(out.outputs[4].is_none() && out.outputs[5].is_none());
}

#[test]
fn aad04_with_two_faults() {
    let inputs: Vec<f64> = (0..7).map(|i| i as f64).collect();
    let out = run_aad04(
        7,
        2,
        &inputs,
        0.5,
        &[
            (NodeId::new(5), AadAdversary::Crash),
            (NodeId::new(6), AadAdversary::ConstantLiar { value: 1e8 }),
        ],
        21,
    )
    .unwrap();
    assert!(out.converged() && out.valid());
}

#[test]
fn crash_protocol_on_all_feasible_catalog_graphs() {
    for inst in dbac_bench::catalog::feasible_instances() {
        let n = inst.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = run_crash_consensus(
            inst.graph.clone(),
            inst.f,
            &inputs,
            0.5,
            &[(NodeId::new(0), 3)],
            11,
        )
        .unwrap();
        assert!(out.converged() && out.valid(), "{} crash run failed", inst.name);
    }
}
