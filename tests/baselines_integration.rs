//! Integration across the baseline algorithms and the crash-tolerant
//! variant: the Table 2 / E9 / E10 claims at test scale.

use dbac::conditions::kreach::{three_reach, two_reach};
use dbac::conditions::robustness::is_r_s_robust;
use dbac::graph::{generators, Digraph, NodeId};
use dbac::scenario::{
    Aad04, ByzantineWitness, CrashTwoReach, FaultKind, IterativeTrimmedMean, Outcome, Scenario,
    SchedulerSpec,
};

/// Mirrors the legacy crash-run semantics: the a-priori range covers every
/// potential input (crashed nodes are honest until they crash), and the
/// schedule is the crash protocol's historical `[1, 15]` random one.
fn run_crash(
    graph: Digraph,
    f: usize,
    inputs: &[f64],
    epsilon: f64,
    crashed: &[(NodeId, usize)],
    seed: u64,
) -> Outcome {
    let range = inputs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    Scenario::builder(graph, f)
        .inputs(inputs.to_vec())
        .epsilon(epsilon)
        .range(range)
        .faults(crashed.iter().map(|&(v, sends)| (v, FaultKind::CrashAfter { sends })))
        .scheduler(SchedulerSpec::legacy_random(seed))
        .protocol(CrashTwoReach::default())
        .run()
        .expect("crash scenario runs")
}

#[test]
fn crash_protocol_matches_two_reach_feasibility() {
    // K3 satisfies 2-reach for f=1: the crash protocol works there even
    // though Byzantine consensus is impossible (3-reach fails).
    let g = generators::clique(3);
    assert!(two_reach(&g, 1).holds());
    assert!(!three_reach(&g, 1).holds());
    let out = run_crash(g, 1, &[0.0, 6.0, 3.0], 0.5, &[(NodeId::new(2), 1)], 3);
    assert!(out.converged() && out.valid());
}

#[test]
fn aad04_and_bw_agree_on_cliques() {
    // E9: the generalization is conservative — both algorithms solve the
    // same instances on complete networks.
    let inputs = vec![1.0, 5.0, 3.0, 0.0];
    let byz = NodeId::new(3);

    let bw = Scenario::builder(generators::clique(4), 1)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .fault(byz, FaultKind::ConstantLiar { value: -1e5 })
        .seed(7)
        .protocol(ByzantineWitness::default())
        .run()
        .unwrap();
    assert!(bw.converged() && bw.valid());

    let aad = Scenario::builder(generators::clique(4), 1)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .fault(byz, FaultKind::ConstantLiar { value: -1e5 })
        .scheduler(SchedulerSpec::legacy_random(7))
        .protocol(Aad04)
        .run()
        .unwrap();
    assert!(aad.converged() && aad.valid());

    // Both respect the same honest hull [1, 5].
    for v in bw.honest_outputs() {
        assert!((1.0..=5.0).contains(&v));
    }
    for w in aad.honest.iter() {
        let v = aad.outputs[w.index()].unwrap();
        assert!((1.0..=5.0).contains(&v));
    }
}

#[test]
fn e10_separation_instance() {
    // figure_1b_small: 3-reach holds, (2,2)-robustness fails — iterative
    // local filtering stalls, BW converges.
    let g = generators::figure_1b_small();
    assert!(three_reach(&g, 1).holds());
    assert!(!is_r_s_robust(&g, 2, 2));

    let inputs = vec![0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0];
    let it = Scenario::builder(g.clone(), 1)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .protocol(IterativeTrimmedMean::with_rounds(60))
        .run()
        .unwrap();
    assert!(it.spread() > 9.0, "iterative should stall at {}", it.spread());

    // A crashed node keeps this affordable in debug builds (the release
    // `baseline_compare` binary runs the all-honest + liar variants).
    let out = Scenario::builder(g, 1)
        .inputs(inputs)
        .epsilon(4.0)
        .fault(NodeId::new(7), FaultKind::Crash)
        .seed(3)
        .protocol(ByzantineWitness::default())
        .run()
        .unwrap();
    assert!(out.converged() && out.valid(), "BW must converge where W-MSR stalls");
}

#[test]
fn iterative_works_where_robustness_holds() {
    let g = generators::clique(5);
    assert!(is_r_s_robust(&g, 2, 2));
    let run = Scenario::builder(g, 1)
        .inputs(vec![0.0, 1.0, 2.0, 3.0, 0.0])
        .epsilon(1e-6)
        .fault(NodeId::new(4), FaultKind::Ramp { base: -10.0, slope: -5.0 })
        .range((-10.0, 10.0))
        .protocol(IterativeTrimmedMean::with_rounds(80))
        .run()
        .unwrap();
    assert!(run.spread() < 1e-6);
    assert!(run.valid());
}

#[test]
fn crash_protocol_with_two_faults() {
    // f = 2 end-to-end (the BW protocol's f = 2 instances are beyond test
    // budgets, but the simple-path crash protocol handles them easily).
    let g = generators::clique(6);
    assert!(two_reach(&g, 2).holds());
    let inputs: Vec<f64> = (0..6).map(|i| i as f64).collect();
    let out = run_crash(g, 2, &inputs, 0.5, &[(NodeId::new(4), 0), (NodeId::new(5), 7)], 13);
    assert!(out.converged() && out.valid());
    assert!(out.outputs[4].is_none() && out.outputs[5].is_none());
}

#[test]
fn aad04_with_two_faults() {
    let inputs: Vec<f64> = (0..7).map(|i| i as f64).collect();
    let out = Scenario::builder(generators::clique(7), 2)
        .inputs(inputs)
        .epsilon(0.5)
        .fault(NodeId::new(5), FaultKind::Crash)
        .fault(NodeId::new(6), FaultKind::ConstantLiar { value: 1e8 })
        .scheduler(SchedulerSpec::legacy_random(21))
        .protocol(Aad04)
        .run()
        .unwrap();
    assert!(out.converged() && out.valid());
}

#[test]
fn crash_protocol_on_all_feasible_catalog_graphs() {
    for inst in dbac_bench::catalog::feasible_instances() {
        let n = inst.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = run_crash(inst.graph.clone(), inst.f, &inputs, 0.5, &[(NodeId::new(0), 3)], 11);
        assert!(out.converged() && out.valid(), "{} crash run failed", inst.name);
    }
}

/// Scale smoke: a 220-node layered-expander run — a topology the u128-era
/// `NodeSet` could not even represent — through the full Scenario →
/// Outcome surface, with faults. No BW `Topology` precomputation is
/// involved (the iterative engine is purely local), so the only scale
/// limits are `MAX_NODES` and the event budget.
#[test]
fn iterative_smoke_on_a_220_node_layered_expander() {
    let g = generators::layered_expander(11, 20);
    let n = g.node_count();
    assert_eq!(n, 220);
    let out = Scenario::builder(g, 2)
        .inputs((0..n).map(|i| (i % 50) as f64).collect())
        .epsilon(1e-2)
        .range((0.0, 49.0))
        .rounds(150)
        .fault(NodeId::new(7), FaultKind::ConstantLiar { value: 1e6 })
        .fault(NodeId::new(140), FaultKind::Crash)
        .protocol(IterativeTrimmedMean::default())
        .run()
        .expect("a 220-node iterative scenario runs");
    assert!(out.valid(), "W-MSR must keep outputs in the honest hull");
    // Progress is observable through the PR 8 stats registry: rounds fired
    // accumulate on the shared gauge even when convergence is partial.
    assert!(out.sim_stats.protocol.rounds_fired > 0);
    let transport = out.sim_stats.transport.measured().expect("message-passing engine");
    assert!(transport.class(dbac::scenario::MsgClass::Iter).delivered > 0);
}
