//! Opinion dynamics with provocateurs — the paper cites Hegselmann–Krause
//! opinion models [11] as an application of approximate consensus.
//!
//! A small social network holds opinions in [0, 1]. A provocateur tries to
//! polarize it. We contrast:
//!
//! * the **iterative** local-filtering dynamic (related work: correct only
//!   on robust graphs), and
//! * the paper's **BW** protocol (correct on any 3-reach graph).
//!
//! On this network — 3-reach but *not* (2,2)-robust — local filtering
//! freezes the two communities apart, while BW brings every honest agent
//! to within ε.
//!
//! ```text
//! cargo run --release --example opinion_dynamics
//! ```

use dbac::conditions::kreach::three_reach;
use dbac::conditions::robustness::is_r_s_robust;
use dbac::graph::{generators, NodeId};
use dbac::scenario::{ByzantineWitness, FaultKind, IterativeTrimmedMean, Scenario};

fn main() {
    // Two tightly-knit communities with a few directed "follows" across.
    let graph = generators::figure_1b_small();
    let f = 1;
    println!("3-reach (f=1):   {}", three_reach(&graph, f).holds());
    println!("(2,2)-robust:    {}", is_r_s_robust(&graph, 2, 2));

    // Community A leans 0.1, community B leans 0.9; agent 3 will act as a
    // provocateur in the Byzantine run.
    let opinions = vec![0.10, 0.15, 0.12, 0.11, 0.90, 0.85, 0.88, 0.92];

    // Local filtering (W-MSR), *nobody even faulty*: each community's
    // f-filter discards its scarce cross-community edges, so the two
    // camps freeze apart — defensive filtering causes the polarization.
    let it = Scenario::builder(graph.clone(), f)
        .inputs(opinions.clone())
        .epsilon(0.25)
        .protocol(IterativeTrimmedMean::with_rounds(80))
        .run()
        .expect("iterative scenario runs");
    println!(
        "\niterative after 80 rounds (no faults at all): spread {:.3} (polarization persists: {})",
        it.spread(),
        it.spread() > 0.5,
    );

    // BW: witnesses carry cross-community influence with Byzantine-proof
    // confirmation; honest opinions meet.
    let out = Scenario::builder(graph, f)
        .inputs(opinions)
        .epsilon(0.25)
        .range((0.0, 1.0))
        .fault(NodeId::new(3), FaultKind::ConstantLiar { value: 5.0 })
        .seed(12)
        .protocol(ByzantineWitness::default())
        .run()
        .expect("run completes");
    println!("BW outputs:");
    for v in out.honest.iter() {
        println!("  agent {}: {:.4}", v.index(), out.outputs[v.index()].unwrap());
    }
    println!(
        "BW spread {:.4} (ε = {}), converged: {}, inside honest opinion hull: {}",
        out.spread(),
        out.epsilon,
        out.converged(),
        out.valid(),
    );
    assert!(out.converged() && out.valid());
    assert!(it.spread() > 0.5, "expected the iterative dynamic to stay polarized");
}
