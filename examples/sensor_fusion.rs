//! Sensor fusion over a wireless network with asymmetric radio ranges —
//! the paper's motivating setting for *directed* communication graphs
//! (Section 1: "wireless networks wherein different nodes may have
//! different transmission range, resulting in directed communication
//! links"), with consensus-theoretic fusion per Benediktsson & Swain [2].
//!
//! Eight sensors on a line measure a temperature around 20 °C; stronger
//! transmitters reach further, so links are directed. One sensor is
//! compromised and reports garbage. The honest sensors fuse their readings
//! to within 0.5 °C of each other without ever trusting a coordinator.
//!
//! ```text
//! cargo run --release --example sensor_fusion
//! ```

use dbac::conditions::kreach::three_reach;
use dbac::graph::{Digraph, NodeId};
use dbac::scenario::{ByzantineWitness, FaultKind, Scenario};

/// Builds the radio topology: sensor `i` sits at position `i` on a line;
/// its transmission range depends on its battery. An edge `(i, j)` exists
/// iff `|pos_i - pos_j| ≤ range_i` — reachability is asymmetric.
fn radio_topology(ranges: &[usize]) -> Digraph {
    let n = ranges.len();
    let mut g = Digraph::new(n).expect("valid size");
    for (i, &range) in ranges.iter().enumerate() {
        for j in 0..n {
            if i != j && i.abs_diff(j) <= range {
                g.add_edge(NodeId::new(i), NodeId::new(j)).expect("valid edge");
            }
        }
    }
    g
}

fn main() {
    // Site survey: try battery profiles from weakest to strongest until
    // the deployment supports Byzantine-tolerant fusion — the paper's
    // 3-reach condition is exactly the go/no-go check.
    let f = 1;
    let profiles: [[usize; 6]; 3] = [[2, 1, 1, 1, 1, 2], [3, 2, 3, 3, 2, 3], [4, 3, 3, 3, 3, 4]];
    let mut chosen = None;
    for ranges in profiles {
        let graph = radio_topology(&ranges);
        let condition = three_reach(&graph, f);
        println!(
            "profile {ranges:?}: {} directed links, 3-reach (f = {f}): {}",
            graph.edge_count(),
            if condition.holds() { "holds".to_string() } else { format!("{condition}") },
        );
        if condition.holds() {
            chosen = Some(graph);
            break;
        }
    }
    let graph = chosen.expect("the strongest profile must support fusion");
    println!(
        "\ndeployed: {} sensors, {} directed links, bidirectional: {}",
        graph.node_count(),
        graph.edge_count(),
        graph.is_bidirectional(),
    );

    // Readings around the true 20 °C; sensor 4 is compromised (its input
    // slot is a placeholder — Byzantine nodes have no genuine reading).
    let readings = vec![19.8, 20.2, 20.1, 19.9, 0.0, 20.3];

    let outcome = Scenario::builder(graph, f)
        .inputs(readings)
        .epsilon(0.5)
        .range((15.0, 25.0)) // the a-priori plausible temperature band
        .fault(NodeId::new(4), FaultKind::Equivocator { low: 15.0, high: 25.0 })
        .seed(99)
        .protocol(ByzantineWitness::default())
        .run()
        .expect("fusion completes");
    println!("\nfused estimates:");
    for v in outcome.honest.iter() {
        println!("  sensor {}: {:.3} °C", v.index(), outcome.outputs[v.index()].unwrap());
    }
    println!(
        "\nspread {:.4} °C (ε = {}), converged: {}, within honest readings: {}",
        outcome.spread(),
        outcome.epsilon,
        outcome.converged(),
        outcome.valid(),
    );
    assert!(outcome.converged() && outcome.valid());
}
