//! The same protocol, real sockets: runs BW over the framed-transport net
//! runtime — every message is encoded to its length-prefixed wire form,
//! crosses a loopback connection, and is decoded on the far side before
//! the receiving node ever sees it.
//!
//! ```text
//! cargo run --release --example net_runtime
//! ```

use dbac::graph::{generators, NodeId};
use dbac::scenario::{ByzantineWitness, FaultKind, Runtime, Scenario};
use std::time::Duration;

fn main() {
    let out = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![1.0, 9.0, 3.0, 0.0])
        .epsilon(0.5)
        .fault(NodeId::new(3), FaultKind::Equivocator { low: -50.0, high: 50.0 })
        .seed(1)
        .runtime(Runtime::net(Duration::from_secs(60)))
        .protocol(ByzantineWitness::default())
        .run()
        .expect("net run completes");
    println!("outputs (framed transport, real sockets):");
    for v in out.honest.iter() {
        println!("  node {v}: {:.4}", out.outputs[v.index()].unwrap());
    }
    println!(
        "spread {:.4}, converged {}, valid {}, frames rejected {}",
        out.spread(),
        out.converged(),
        out.valid(),
        out.sim_stats.messages_rejected()
    );
    assert!(out.converged() && out.valid());
    assert_eq!(out.sim_stats.messages_rejected(), 0, "honest traffic always decodes");
}
