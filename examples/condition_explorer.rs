//! Interactive condition explorer: build a named network and print every
//! condition the paper discusses, plus its source components.
//!
//! ```text
//! cargo run --release --example condition_explorer -- clique 5 1
//! cargo run --release --example condition_explorer -- figure1b 0 2
//! cargo run --release --example condition_explorer -- cycle 6 1
//! cargo run --release --example condition_explorer -- random 6 1 0.5 42
//! ```

use dbac::conditions::kreach::{k_reach, one_reach, three_reach, two_reach};
use dbac::conditions::partition::{bcs, cca, ccs};
use dbac::conditions::reduced::source_component;
use dbac::graph::subsets::SubsetsUpTo;
use dbac::graph::{dot, generators, Digraph, NodeSet};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn usage() -> ! {
    eprintln!(
        "usage: condition_explorer <family> <n> <f> [p] [seed]\n\
         families: clique | cycle | bicycle | wheel | path | figure1a | figure1b | \n\
                   figure1b-small | random (needs p and seed)"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let family = args[0].as_str();
    let n: usize = args[1].parse().unwrap_or_else(|_| usage());
    let f: usize = args[2].parse().unwrap_or_else(|_| usage());
    let graph: Digraph = match family {
        "clique" => generators::clique(n),
        "cycle" => generators::directed_cycle(n),
        "bicycle" => generators::bidirectional_cycle(n),
        "wheel" => generators::wheel(n),
        "path" => generators::directed_path(n),
        "figure1a" => generators::figure_1a(),
        "figure1b" => generators::figure_1b(),
        "figure1b-small" => generators::figure_1b_small(),
        "random" => {
            let p: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            let seed: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(0);
            let mut rng = SmallRng::seed_from_u64(seed);
            generators::random_digraph(n, p, &mut rng)
        }
        _ => usage(),
    };

    println!(
        "network: {} nodes, {} directed edges, f = {f}\n",
        graph.node_count(),
        graph.edge_count()
    );
    println!("reach family (Definition 3):");
    println!("  1-reach: {}", one_reach(&graph, f));
    println!("  2-reach: {}", two_reach(&graph, f));
    println!("  3-reach: {}", three_reach(&graph, f));
    if graph.node_count() <= 8 {
        println!("  4-reach: {}", k_reach(&graph, 4, f));
    }
    if graph.node_count() <= 9 {
        println!("\npartition family (Definitions 16–18, ≡ by Theorem 17):");
        println!("  CCS: {}", if ccs(&graph, f).holds() { "holds" } else { "violated" });
        println!("  CCA: {}", if cca(&graph, f).holds() { "holds" } else { "violated" });
        println!("  BCS: {}", if bcs(&graph, f).holds() { "holds" } else { "violated" });
    }

    println!("\nsource components S_F (reduced graphs, Definition 6):");
    let mut shown = 0;
    for silenced in SubsetsUpTo::new(graph.vertex_set(), f) {
        let s = source_component(&graph, silenced, NodeSet::EMPTY);
        println!("  silence {silenced} -> S = {s}");
        shown += 1;
        if shown >= 12 {
            println!("  …");
            break;
        }
    }

    println!("\nDOT:\n{}", dot::to_dot(&graph, "explored", NodeSet::EMPTY));
}
