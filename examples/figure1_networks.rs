//! The paper's Figure 1 networks, analyzed and exercised.
//!
//! ```text
//! cargo run --release --example figure1_networks
//! ```

use dbac::conditions::kreach::three_reach;
use dbac::conditions::reduced::source_component;
use dbac::graph::connectivity::vertex_connectivity;
use dbac::graph::maxflow::max_vertex_disjoint_paths;
use dbac::graph::{dot, generators, NodeId, NodeSet};
use dbac::scenario::{ByzantineWitness, FaultKind, Scenario};

fn main() {
    // ----- Figure 1(a): 5-node undirected, f = 1 -------------------------
    let a = generators::figure_1a();
    println!("Figure 1(a): n={}, κ={}", a.node_count(), vertex_connectivity(&a));
    println!("3-reach (f=1): {}", three_reach(&a, 1));
    println!("{}", dot::to_dot(&a, "figure_1a", NodeSet::EMPTY));

    // ----- Figure 1(b): two 7-cliques + 8 bridges, f = 2 ------------------
    let b = generators::figure_1b();
    let v1 = NodeId::new(0);
    let w1 = NodeId::new(7);
    println!(
        "Figure 1(b): n={}, v1→w1 disjoint paths = {} (2f = 4; RMT needs 2f+1 = 5)",
        b.node_count(),
        max_vertex_disjoint_paths(&b, v1, w1),
    );
    // Source components survive silencing any 2f nodes — the "source of
    // common influence" behind the witness technique.
    let silenced: NodeSet =
        [NodeId::new(0), NodeId::new(1), NodeId::new(7), NodeId::new(8)].into_iter().collect();
    let s = source_component(&b, silenced, NodeSet::EMPTY);
    println!("source component after silencing {silenced}: {s}");
    assert!(!s.is_empty());
    println!("checking 3-reach for f = 2 (exhaustive over fault-set triples)…");
    assert!(three_reach(&b, 2).holds());
    println!("3-reach (f=2): holds — consensus without all-pair RMT.\n");

    // ----- Run the protocol on the 8-node scale-down ----------------------
    let small = generators::figure_1b_small();
    let out = Scenario::builder(small, 1)
        .inputs(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        .epsilon(2.0)
        .fault(NodeId::new(1), FaultKind::RelayTamperer { spoof: 1e4 })
        .seed(4)
        .protocol(ByzantineWitness::default())
        .run()
        .expect("run completes");
    println!(
        "8-node scale-down with a relay-tampering Byzantine node: spread {:.4}, valid: {}",
        out.spread(),
        out.valid(),
    );
    assert!(out.converged() && out.valid());
}
