//! The same protocol, real threads: runs BW over the crossbeam-channel
//! thread-per-node runtime instead of the deterministic simulator —
//! genuine OS-level asynchrony.
//!
//! ```text
//! cargo run --release --example threaded_runtime
//! ```

use dbac::graph::{generators, NodeId};
use dbac::scenario::{ByzantineWitness, FaultKind, Runtime, Scenario};
use std::time::Duration;

fn main() {
    let out = Scenario::builder(generators::clique(4), 1)
        .inputs(vec![1.0, 9.0, 3.0, 0.0])
        .epsilon(0.5)
        .fault(NodeId::new(3), FaultKind::Equivocator { low: -50.0, high: 50.0 })
        .seed(1)
        .runtime(Runtime::threaded(Duration::from_secs(60)))
        .protocol(ByzantineWitness::default())
        .run()
        .expect("threaded run completes");
    println!("outputs (threads, real concurrency):");
    for v in out.honest.iter() {
        println!("  node {v}: {:.4}", out.outputs[v.index()].unwrap());
    }
    println!("spread {:.4}, converged {}, valid {}", out.spread(), out.converged(), out.valid());
    assert!(out.converged() && out.valid());
}
