//! Quickstart: check the tight condition, run the protocol, read outputs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dbac::conditions::kreach::three_reach;
use dbac::graph::{generators, NodeId};
use dbac::scenario::{ByzantineWitness, FaultKind, MsgClass, Scenario, StatsRegistry};
use std::sync::Arc;

fn main() {
    // 1. A network: the 8-node directed analogue of the paper's
    //    Figure 1(b) — two 4-cliques joined by five directed bridges.
    let graph = generators::figure_1b_small();
    let f = 1;

    // 2. The paper's main theorem: asynchronous Byzantine approximate
    //    consensus is possible iff the graph satisfies 3-reach.
    let condition = three_reach(&graph, f);
    println!("3-reach (f = {f}): {condition}");
    assert!(condition.holds());

    // 3. Describe the scenario: inputs, agreement parameter ε, one faulty
    //    node (crashed — try `FaultKind::ConstantLiar { value: -40.0 }`
    //    for a noisier adversary; it roughly 10×es the message count), a
    //    seeded random schedule, and the paper's protocol.
    //
    // 4. `run()` executes it on the deterministic discrete-event simulator
    //    (swap in `.runtime(Runtime::Threaded { .. })` for real threads,
    //    or `.protocol(CrashTwoReach::default())` for the 2-reach
    //    crash-fault protocol — same builder, same Outcome).
    //    Attaching a `StatsRegistry` is optional — `outcome.sim_stats`
    //    always carries the final snapshot — but a shared registry can be
    //    polled live from another thread (or served by the `dbacd`
    //    daemon) while the run executes.
    let registry = StatsRegistry::new(8);
    let outcome = Scenario::builder(graph, f)
        .inputs(vec![20.1, 20.7, 20.3, 21.0, 24.9, 23.2, 24.0, 22.5])
        .epsilon(0.5)
        .fault(NodeId::new(6), FaultKind::Crash)
        .seed(7)
        .stats(Arc::clone(&registry))
        .protocol(ByzantineWitness::default())
        .run()
        .expect("scenario runs");

    println!("rounds executed : {}", outcome.rounds);
    println!("messages        : {}", outcome.sim_stats.messages_delivered());
    for v in outcome.honest.iter() {
        println!("  node {v}: output {:?}", outcome.outputs[v.index()]);
    }
    println!("spread          : {:.4} (ε = {})", outcome.spread(), outcome.epsilon);
    println!("converged       : {}", outcome.converged());
    println!("validity        : {}", outcome.valid());
    assert!(outcome.converged() && outcome.valid());

    // 5. The attached registry and the outcome agree exactly, and the
    //    transport ledger breaks down by message class.
    assert_eq!(registry.snapshot(), outcome.sim_stats);
    let transport = outcome.sim_stats.transport.measured().expect("sim runs measure transport");
    for class in MsgClass::ALL {
        let c = transport.class(class);
        if c.sent > 0 {
            println!("  {:<8} sent {:>6} delivered {:>6}", class.label(), c.sent, c.delivered);
        }
    }
}
