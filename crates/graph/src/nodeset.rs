//! Bitset over node identifiers.
//!
//! The paper quantifies over node subsets constantly ("for any `F ⊆ V` such
//! that `|F| ≤ f` …"). [`NodeSet`] makes those subsets cheap values: a
//! const-generic multi-word bitset with *O(W)* union/intersection/
//! containment, `Copy` semantics and deterministic iteration order.
//!
//! # Width
//!
//! [`NodeSet`] is [`WordSet`] instantiated at [`NODE_WORDS`] 64-bit words,
//! so it holds node indices `0 .. MAX_NODES` where
//! `MAX_NODES = NODE_WORDS * 64`:
//!
//! * default build — 4 words, 256 nodes, a 32-byte `Copy` value;
//! * `huge-graphs` feature — 256 words, 16384 nodes, for the
//!   tens-of-thousands iterative scaling runs.
//!
//! The original `u128` single-word implementation survives as the
//! differential oracle in [`reference`] (compiled under `cfg(test)` and the
//! `reference-nodeset` feature, in the same spirit as the
//! `reference-messageset` / `reference-witness` backends): the in-module
//! proptests and `tests/nodeset_differential.rs` drive both through the
//! same operation sequences for `n ≤ 128` and require identical answers.

use crate::node::NodeId;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

/// Number of 64-bit words backing a [`NodeSet`].
pub const NODE_WORDS: usize = if cfg!(feature = "huge-graphs") { 256 } else { 4 };

/// Maximum number of nodes representable in a [`NodeSet`].
pub const MAX_NODES: usize = NODE_WORDS * 64;

/// A set of [`NodeId`]s backed by [`NODE_WORDS`] × 64-bit words.
///
/// # Example
///
/// ```
/// use dbac_graph::{NodeId, NodeSet};
///
/// let f: NodeSet = [NodeId::new(1), NodeId::new(4)].into_iter().collect();
/// assert_eq!(f.len(), 2);
/// assert!(f.contains(NodeId::new(4)));
///
/// // The complement within a 6-node universe — the paper's `F̄ = V \ F`.
/// let complement = f.complement_in(6);
/// assert_eq!(complement.len(), 4);
/// assert!(complement.is_disjoint(f));
/// ```
pub type NodeSet = WordSet<NODE_WORDS>;

/// Iterator over the nodes of a [`NodeSet`], produced by [`NodeSet::iter`].
pub type Iter = WordIter<NODE_WORDS>;

/// A fixed-width bitset over node indices `0 .. W * 64`.
///
/// [`NodeSet`] is the workspace-wide instantiation; the width is generic so
/// the differential harness can pin a 128-bit instance (`WordSet<2>`)
/// against the [`reference`] `u128` oracle regardless of the build's
/// [`NODE_WORDS`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct WordSet<const W: usize>([u64; W]);

impl<const W: usize> WordSet<W> {
    /// The empty set.
    pub const EMPTY: WordSet<W> = WordSet([0; W]);

    /// Node-index capacity of this width (`W * 64`).
    pub const CAPACITY: usize = W * 64;

    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a set containing exactly one node.
    #[must_use]
    pub fn singleton(v: NodeId) -> Self {
        let mut s = Self::EMPTY;
        s.0[v.index() / 64] = 1u64 << (v.index() % 64);
        s
    }

    /// Creates the full universe `{0, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the width's capacity (`MAX_NODES` for
    /// [`NodeSet`]).
    #[must_use]
    pub fn universe(n: usize) -> Self {
        assert!(n <= Self::CAPACITY, "universe size {n} exceeds {}", Self::CAPACITY);
        let mut s = Self::EMPTY;
        for (i, w) in s.0.iter_mut().enumerate() {
            let lo = i * 64;
            if n >= lo + 64 {
                *w = u64::MAX;
            } else if n > lo {
                *w = (1u64 << (n - lo)) - 1;
            }
        }
        s
    }

    /// Inserts a node; returns `true` if it was not already present.
    pub fn insert(&mut self, v: NodeId) -> bool {
        let (word, bit) = (v.index() / 64, 1u64 << (v.index() % 64));
        let was_absent = self.0[word] & bit == 0;
        self.0[word] |= bit;
        was_absent
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let (word, bit) = (v.index() / 64, 1u64 << (v.index() % 64));
        let was_present = self.0[word] & bit != 0;
        self.0[word] &= !bit;
        was_present
    }

    /// Returns `true` if the set contains `v`.
    #[must_use]
    pub fn contains(self, v: NodeId) -> bool {
        self.0[v.index() / 64] & (1u64 << (v.index() % 64)) != 0
    }

    /// Number of nodes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    /// Set union `self ∪ other`.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        let mut out = self;
        for (o, w) in out.0.iter_mut().zip(other.0) {
            *o |= w;
        }
        out
    }

    /// Set intersection `self ∩ other`.
    #[must_use]
    pub fn intersection(self, other: Self) -> Self {
        let mut out = self;
        for (o, w) in out.0.iter_mut().zip(other.0) {
            *o &= w;
        }
        out
    }

    /// Set difference `self ∖ other`.
    #[must_use]
    pub fn difference(self, other: Self) -> Self {
        let mut out = self;
        for (o, w) in out.0.iter_mut().zip(other.0) {
            *o &= !w;
        }
        out
    }

    /// Complement within the universe `{0, …, n-1}` — the paper's `X̄`.
    #[must_use]
    pub fn complement_in(self, n: usize) -> Self {
        let mut out = Self::universe(n);
        for (o, w) in out.0.iter_mut().zip(self.0) {
            *o &= !w;
        }
        out
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: Self) -> bool {
        self.0.iter().zip(other.0).all(|(&a, b)| a & !b == 0)
    }

    /// Returns `true` if the sets share no node.
    #[must_use]
    pub fn is_disjoint(self, other: Self) -> bool {
        self.0.iter().zip(other.0).all(|(&a, b)| a & b == 0)
    }

    /// Smallest node in the set, if non-empty.
    #[must_use]
    pub fn first(self) -> Option<NodeId> {
        self.0
            .iter()
            .position(|&w| w != 0)
            .map(|i| NodeId::new(i * 64 + self.0[i].trailing_zeros() as usize))
    }

    /// Number of members with index strictly below `v` — the rank `v`
    /// would occupy in the set's sorted iteration order. This is the
    /// opaque replacement for the old `bits() & (bit - 1)` popcount
    /// idiom (dense per-neighbor slot assignment in `PathIndex`).
    #[must_use]
    pub fn rank_below(self, v: NodeId) -> usize {
        let (word, bit) = (v.index() / 64, v.index() % 64);
        let below: usize = self.0[..word].iter().map(|w| w.count_ones() as usize).sum();
        below + (self.0[word] & ((1u64 << bit) - 1)).count_ones() as usize
    }

    /// Iterates over the nodes in ascending index order.
    pub fn iter(self) -> WordIter<W> {
        WordIter { words: self.0, word: 0 }
    }

    /// The backing words, least-significant first — the compact,
    /// width-honest form for wire codecs and snapshots.
    #[must_use]
    pub fn words(&self) -> &[u64; W] {
        &self.0
    }

    /// Reconstructs a set from backing words produced by
    /// [`WordSet::words`].
    #[must_use]
    pub fn from_words(words: [u64; W]) -> Self {
        WordSet(words)
    }

    /// Returns the low 128 bits as a mask.
    ///
    /// # Panics
    ///
    /// Panics if the set contains a member with index ≥ 128 — the mask
    /// cannot represent it.
    #[deprecated(
        since = "0.1.0",
        note = "128-bit escape hatch from the u128 era; use words()/from_words(), \
                rank_below(), or key maps by NodeSet directly"
    )]
    #[must_use]
    pub fn bits(self) -> u128 {
        assert!(
            self.0.iter().skip(2).all(|&w| w == 0),
            "NodeSet::bits: set {self} has members ≥ 128"
        );
        let lo = self.0.first().copied().unwrap_or(0) as u128;
        let hi = if W > 1 { self.0[1] as u128 } else { 0 };
        lo | hi << 64
    }

    /// Reconstructs a set from a raw 128-bit mask.
    ///
    /// # Panics
    ///
    /// Panics if the width cannot hold 128 bits and `bits` has high bits
    /// set.
    #[deprecated(
        since = "0.1.0",
        note = "128-bit escape hatch from the u128 era; use from_words()"
    )]
    #[must_use]
    pub fn from_bits(bits: u128) -> Self {
        let mut s = Self::EMPTY;
        s.0[0] = bits as u64;
        let hi = (bits >> 64) as u64;
        if W > 1 {
            s.0[1] = hi;
        } else {
            assert!(hi == 0, "WordSet<1>::from_bits: mask has bits ≥ 64");
        }
        s
    }
}

impl<const W: usize> Default for WordSet<W> {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// Numeric mask order, most-significant word first — coincides with the
/// old `u128` ordering for sets confined to the low 128 bits, so sorted
/// collections of sets keep their historical order.
impl<const W: usize> Ord for WordSet<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..W).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => {}
                unequal => return unequal,
            }
        }
        Ordering::Equal
    }
}

impl<const W: usize> PartialOrd for WordSet<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Hashes only the non-zero word prefix (plus its length), so small sets
/// in a wide build don't pay for hashing kilobytes of zero words. Equal
/// sets share the same prefix, keeping the impl consistent with `Eq`.
impl<const W: usize> Hash for WordSet<W> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let len = W - self.0.iter().rev().take_while(|&&w| w == 0).count();
        state.write_usize(len);
        for &w in &self.0[..len] {
            state.write_u64(w);
        }
    }
}

/// Iterator over the nodes of a [`WordSet`], produced by
/// [`WordSet::iter`].
#[derive(Clone, Debug)]
pub struct WordIter<const W: usize> {
    words: [u64; W],
    word: usize,
}

impl<const W: usize> Iterator for WordIter<W> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.word < W {
            let w = self.words[self.word];
            if w != 0 {
                self.words[self.word] = w & (w - 1);
                return Some(NodeId::new(self.word * 64 + w.trailing_zeros() as usize));
            }
            self.word += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.words[self.word..].iter().map(|w| w.count_ones() as usize).sum();
        (n, Some(n))
    }
}

impl<const W: usize> ExactSizeIterator for WordIter<W> {}

impl<const W: usize> IntoIterator for WordSet<W> {
    type Item = NodeId;
    type IntoIter = WordIter<W>;

    fn into_iter(self) -> WordIter<W> {
        self.iter()
    }
}

impl<const W: usize> FromIterator<NodeId> for WordSet<W> {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl<const W: usize> Extend<NodeId> for WordSet<W> {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<const W: usize> BitOr for WordSet<W> {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl<const W: usize> BitOrAssign for WordSet<W> {
    fn bitor_assign(&mut self, rhs: Self) {
        for (o, w) in self.0.iter_mut().zip(rhs.0) {
            *o |= w;
        }
    }
}

impl<const W: usize> BitAnd for WordSet<W> {
    type Output = Self;
    fn bitand(self, rhs: Self) -> Self {
        self.intersection(rhs)
    }
}

impl<const W: usize> BitAndAssign for WordSet<W> {
    fn bitand_assign(&mut self, rhs: Self) {
        for (o, w) in self.0.iter_mut().zip(rhs.0) {
            *o &= w;
        }
    }
}

impl<const W: usize> Sub for WordSet<W> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl<const W: usize> SubAssign for WordSet<W> {
    fn sub_assign(&mut self, rhs: Self) {
        for (o, w) in self.0.iter_mut().zip(rhs.0) {
            *o &= !w;
        }
    }
}

impl<const W: usize> fmt::Debug for WordSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl<const W: usize> fmt::Display for WordSet<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", v.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl<const W: usize> From<NodeId> for WordSet<W> {
    fn from(v: NodeId) -> Self {
        Self::singleton(v)
    }
}

/// The retired `u128` single-word bitset, kept verbatim-in-spirit as the
/// differential oracle for the multi-word [`WordSet`] (the PR 2/3
/// reference-backend idiom). Capacity is fixed at 128 nodes; the harness
/// therefore only compares behaviours for `n ≤ 128`.
#[cfg(any(test, feature = "reference-nodeset"))]
pub mod reference {
    /// Reference bitset over node *indices* (plain `usize`, so the oracle
    /// stays independent of [`NodeId`](crate::NodeId)'s own bounds).
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct RefNodeSet(pub u128);

    impl RefNodeSet {
        /// The empty set.
        pub const EMPTY: RefNodeSet = RefNodeSet(0);

        /// The full universe `{0, …, n-1}` (`n ≤ 128`).
        #[must_use]
        pub fn universe(n: usize) -> Self {
            assert!(n <= 128);
            if n == 128 {
                RefNodeSet(u128::MAX)
            } else {
                RefNodeSet((1u128 << n) - 1)
            }
        }

        /// Inserts index `i`; returns `true` if it was absent.
        pub fn insert(&mut self, i: usize) -> bool {
            let bit = 1u128 << i;
            let was_absent = self.0 & bit == 0;
            self.0 |= bit;
            was_absent
        }

        /// Removes index `i`; returns `true` if it was present.
        pub fn remove(&mut self, i: usize) -> bool {
            let bit = 1u128 << i;
            let was_present = self.0 & bit != 0;
            self.0 &= !bit;
            was_present
        }

        /// Membership test.
        #[must_use]
        pub fn contains(self, i: usize) -> bool {
            self.0 & (1u128 << i) != 0
        }

        /// Cardinality.
        #[must_use]
        pub fn len(self) -> usize {
            self.0.count_ones() as usize
        }

        /// Emptiness test.
        #[must_use]
        pub fn is_empty(self) -> bool {
            self.0 == 0
        }

        /// Set union.
        #[must_use]
        pub fn union(self, o: Self) -> Self {
            RefNodeSet(self.0 | o.0)
        }

        /// Set intersection.
        #[must_use]
        pub fn intersection(self, o: Self) -> Self {
            RefNodeSet(self.0 & o.0)
        }

        /// Set difference.
        #[must_use]
        pub fn difference(self, o: Self) -> Self {
            RefNodeSet(self.0 & !o.0)
        }

        /// Complement within `{0, …, n-1}`.
        #[must_use]
        pub fn complement_in(self, n: usize) -> Self {
            RefNodeSet(!self.0 & Self::universe(n).0)
        }

        /// Subset test.
        #[must_use]
        pub fn is_subset(self, o: Self) -> bool {
            self.0 & !o.0 == 0
        }

        /// Disjointness test.
        #[must_use]
        pub fn is_disjoint(self, o: Self) -> bool {
            self.0 & o.0 == 0
        }

        /// Smallest member, if any.
        #[must_use]
        pub fn first(self) -> Option<usize> {
            (self.0 != 0).then(|| self.0.trailing_zeros() as usize)
        }

        /// Members with index strictly below `i`.
        #[must_use]
        pub fn rank_below(self, i: usize) -> usize {
            (self.0 & ((1u128 << i) - 1)).count_ones() as usize
        }

        /// Ascending member indices.
        #[must_use]
        pub fn indices(self) -> Vec<usize> {
            let mut out = Vec::with_capacity(self.len());
            let mut bits = self.0;
            while bits != 0 {
                out.push(bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::RefNodeSet;
    use super::*;
    use proptest::prelude::*;

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(3)));
        assert!(!s.insert(NodeId::new(3)));
        assert!(s.contains(NodeId::new(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId::new(3)));
        assert!(!s.remove(NodeId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ns(&[0, 1, 2]);
        let b = ns(&[2, 3]);
        assert_eq!(a.union(b), ns(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), ns(&[2]));
        assert_eq!(a.difference(b), ns(&[0, 1]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
    }

    #[test]
    fn complement_matches_paper_overline() {
        let f = ns(&[1, 4]);
        let c = f.complement_in(6);
        assert_eq!(c, ns(&[0, 2, 3, 5]));
        assert_eq!(f.union(c), NodeSet::universe(6));
        assert!(f.is_disjoint(c));
    }

    #[test]
    fn universe_edges() {
        assert_eq!(NodeSet::universe(0), NodeSet::EMPTY);
        assert_eq!(NodeSet::universe(MAX_NODES).len(), MAX_NODES);
        // Word-boundary sizes are where a multi-word fill goes wrong.
        for n in [63, 64, 65, 127, 128, 129] {
            assert_eq!(NodeSet::universe(n).len(), n);
            assert_eq!(NodeSet::universe(n).first(), (n > 0).then(|| NodeId::new(0)));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn universe_rejects_oversize() {
        let _ = NodeSet::universe(MAX_NODES + 1);
    }

    #[test]
    fn subset_and_disjoint() {
        assert!(ns(&[1]).is_subset(ns(&[0, 1])));
        assert!(!ns(&[2]).is_subset(ns(&[0, 1])));
        assert!(NodeSet::EMPTY.is_subset(NodeSet::EMPTY));
        assert!(ns(&[0]).is_disjoint(ns(&[1])));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = ns(&[5, 1, 9]);
        let order: Vec<usize> = s.iter().map(NodeId::index).collect();
        assert_eq!(order, vec![1, 5, 9]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn first_returns_minimum() {
        assert_eq!(ns(&[7, 3]).first(), Some(NodeId::new(3)));
        assert_eq!(NodeSet::EMPTY.first(), None);
    }

    #[test]
    fn display_lists_indices() {
        assert_eq!(ns(&[0, 2]).to_string(), "{0,2}");
        assert_eq!(NodeSet::EMPTY.to_string(), "{}");
    }

    #[test]
    #[allow(deprecated)]
    fn bits_round_trip() {
        let s = ns(&[0, 64, 127]);
        assert_eq!(NodeSet::from_bits(s.bits()), s);
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "members ≥ 128")]
    fn bits_rejects_members_past_128() {
        let _ = ns(&[130]).bits();
    }

    #[test]
    fn words_round_trip_past_128() {
        let s = ns(&[0, 64, 127, 128, MAX_NODES - 1]);
        assert_eq!(NodeSet::from_words(*s.words()), s);
        assert_eq!(s.len(), 5);
        let order: Vec<usize> = s.iter().map(NodeId::index).collect();
        assert_eq!(order, vec![0, 64, 127, 128, MAX_NODES - 1]);
    }

    #[test]
    fn rank_below_counts_smaller_members() {
        let s = ns(&[2, 5, 64, 130]);
        assert_eq!(s.rank_below(NodeId::new(0)), 0);
        assert_eq!(s.rank_below(NodeId::new(2)), 0);
        assert_eq!(s.rank_below(NodeId::new(3)), 1);
        assert_eq!(s.rank_below(NodeId::new(64)), 2);
        assert_eq!(s.rank_below(NodeId::new(65)), 3);
        assert_eq!(s.rank_below(NodeId::new(130)), 3);
        assert_eq!(s.rank_below(NodeId::new(MAX_NODES - 1)), 4);
    }

    #[test]
    fn order_matches_the_u128_numeric_order() {
        // For sets within 128 bits the multi-word Ord must coincide with
        // the historical u128 comparison (sorted snapshots stay stable).
        let cases = [ns(&[0]), ns(&[1]), ns(&[0, 1]), ns(&[64]), ns(&[127]), ns(&[5, 127])];
        for a in &cases {
            for b in &cases {
                #[allow(deprecated)]
                let expect = a.bits().cmp(&b.bits());
                assert_eq!(a.cmp(b), expect, "{a} vs {b}");
            }
        }
        // Past 128 bits the order is still total and mask-numeric.
        assert!(ns(&[130]) > ns(&[127]));
    }

    #[test]
    fn hash_is_consistent_for_equal_sets() {
        use std::collections::hash_map::DefaultHasher;
        let hash = |s: &NodeSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        let a = ns(&[3, 70]);
        let mut b = ns(&[3, 70, 200]);
        b.remove(NodeId::new(200));
        assert_eq!(a, b);
        assert_eq!(hash(&a), hash(&b));
        assert_ne!(hash(&ns(&[0])), hash(&ns(&[1])));
    }

    // -----------------------------------------------------------------
    // Differential: WordSet vs the retired u128 oracle, n ≤ 128.
    // -----------------------------------------------------------------

    /// Builds both representations from one index list.
    fn both(ids: &[usize]) -> (WordSet<2>, RefNodeSet) {
        let mut w = WordSet::<2>::new();
        let mut r = RefNodeSet::EMPTY;
        for &i in ids {
            w.insert(NodeId::new(i));
            r.insert(i);
        }
        (w, r)
    }

    fn agree(w: WordSet<2>, r: RefNodeSet) {
        assert_eq!(w.len(), r.len());
        assert_eq!(w.is_empty(), r.is_empty());
        assert_eq!(w.first().map(|v| v.index()), r.first());
        let order: Vec<usize> = w.iter().map(NodeId::index).collect();
        assert_eq!(order, r.indices(), "iteration order diverged");
    }

    proptest! {
        #[test]
        fn differential_vs_u128_reference(
            a in proptest::collection::vec(0usize..128, 0..24),
            b in proptest::collection::vec(0usize..128, 0..24),
            probe in 0usize..128,
            n in 0usize..=128,
        ) {
            let (wa, ra) = both(&a);
            let (wb, rb) = both(&b);
            agree(wa, ra);
            agree(wb, rb);
            agree(wa.union(wb), ra.union(rb));
            agree(wa.intersection(wb), ra.intersection(rb));
            agree(wa.difference(wb), ra.difference(rb));
            prop_assert_eq!(wa.contains(NodeId::new(probe)), ra.contains(probe));
            prop_assert_eq!(wa.is_subset(wb), ra.is_subset(rb));
            prop_assert_eq!(wa.is_disjoint(wb), ra.is_disjoint(rb));
            prop_assert_eq!(wa.rank_below(NodeId::new(probe)), ra.rank_below(probe));
            let masked = wa.intersection(WordSet::<2>::universe(n));
            agree(masked, ra.intersection(RefNodeSet::universe(n)));
            agree(wa.complement_in(128).intersection(WordSet::<2>::universe(n)),
                  ra.complement_in(128).intersection(RefNodeSet::universe(n)));
            // Ord agrees with the u128 numeric order.
            prop_assert_eq!(wa.cmp(&wb), ra.0.cmp(&rb.0));
        }

        #[test]
        fn differential_insert_remove_sequences(
            // Each op packs (kind, index): 0..128 inserts i, 128..256 removes
            // i − 128 (the shim has no tuple strategies).
            ops in proptest::collection::vec(0usize..256, 0..64),
        ) {
            let mut w = WordSet::<2>::new();
            let mut r = RefNodeSet::EMPTY;
            for op in ops {
                let i = op % 128;
                if op < 128 {
                    prop_assert_eq!(w.insert(NodeId::new(i)), r.insert(i));
                } else {
                    prop_assert_eq!(w.remove(NodeId::new(i)), r.remove(i));
                }
                agree(w, r);
            }
        }
    }
}
