//! Bitset over node identifiers.
//!
//! The paper quantifies over node subsets constantly ("for any `F ⊆ V` such
//! that `|F| ≤ f` …"). [`NodeSet`] makes those subsets cheap values: a
//! `u128` bitset with *O(1)* union/intersection/containment, `Copy`
//! semantics and deterministic iteration order.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, Sub, SubAssign};

/// Maximum number of nodes representable in a [`NodeSet`].
pub const MAX_NODES: usize = 128;

/// A set of [`NodeId`]s backed by a 128-bit mask.
///
/// # Example
///
/// ```
/// use dbac_graph::{NodeId, NodeSet};
///
/// let f: NodeSet = [NodeId::new(1), NodeId::new(4)].into_iter().collect();
/// assert_eq!(f.len(), 2);
/// assert!(f.contains(NodeId::new(4)));
///
/// // The complement within a 6-node universe — the paper's `F̄ = V \ F`.
/// let complement = f.complement_in(6);
/// assert_eq!(complement.len(), 4);
/// assert!(complement.is_disjoint(f));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeSet(u128);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        NodeSet(0)
    }

    /// Creates a set containing exactly one node.
    #[must_use]
    pub fn singleton(v: NodeId) -> Self {
        NodeSet(1u128 << v.index())
    }

    /// Creates the full universe `{0, …, n-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[must_use]
    pub fn universe(n: usize) -> Self {
        assert!(n <= MAX_NODES, "universe size {n} exceeds {MAX_NODES}");
        if n == MAX_NODES {
            NodeSet(u128::MAX)
        } else {
            NodeSet((1u128 << n) - 1)
        }
    }

    /// Inserts a node; returns `true` if it was not already present.
    pub fn insert(&mut self, v: NodeId) -> bool {
        let bit = 1u128 << v.index();
        let was_absent = self.0 & bit == 0;
        self.0 |= bit;
        was_absent
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let bit = 1u128 << v.index();
        let was_present = self.0 & bit != 0;
        self.0 &= !bit;
        was_present
    }

    /// Returns `true` if the set contains `v`.
    #[must_use]
    pub fn contains(self, v: NodeId) -> bool {
        self.0 & (1u128 << v.index()) != 0
    }

    /// Number of nodes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union `self ∪ other`.
    #[must_use]
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set intersection `self ∩ other`.
    #[must_use]
    pub fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference `self ∖ other`.
    #[must_use]
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Complement within the universe `{0, …, n-1}` — the paper's `X̄`.
    #[must_use]
    pub fn complement_in(self, n: usize) -> NodeSet {
        NodeSet(!self.0 & NodeSet::universe(n).0)
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subset(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Returns `true` if the sets share no node.
    #[must_use]
    pub fn is_disjoint(self, other: NodeSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Smallest node in the set, if non-empty.
    #[must_use]
    pub fn first(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(NodeId::new(self.0.trailing_zeros() as usize))
        }
    }

    /// Iterates over the nodes in ascending index order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Returns the raw 128-bit mask (for hashing / compact serialization).
    #[must_use]
    pub fn bits(self) -> u128 {
        self.0
    }

    /// Reconstructs a set from a raw mask produced by [`NodeSet::bits`].
    #[must_use]
    pub fn from_bits(bits: u128) -> Self {
        NodeSet(bits)
    }
}

/// Iterator over the nodes of a [`NodeSet`], produced by [`NodeSet::iter`].
#[derive(Clone, Debug)]
pub struct Iter(u128);

impl Iterator for Iter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(NodeId::new(idx))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl BitOr for NodeSet {
    type Output = NodeSet;
    fn bitor(self, rhs: NodeSet) -> NodeSet {
        self.union(rhs)
    }
}

impl BitOrAssign for NodeSet {
    fn bitor_assign(&mut self, rhs: NodeSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for NodeSet {
    type Output = NodeSet;
    fn bitand(self, rhs: NodeSet) -> NodeSet {
        self.intersection(rhs)
    }
}

impl BitAndAssign for NodeSet {
    fn bitand_assign(&mut self, rhs: NodeSet) {
        self.0 &= rhs.0;
    }
}

impl Sub for NodeSet {
    type Output = NodeSet;
    fn sub(self, rhs: NodeSet) -> NodeSet {
        self.difference(rhs)
    }
}

impl SubAssign for NodeSet {
    fn sub_assign(&mut self, rhs: NodeSet) {
        self.0 &= !rhs.0;
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", v.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl From<NodeId> for NodeSet {
    fn from(v: NodeId) -> NodeSet {
        NodeSet::singleton(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(3)));
        assert!(!s.insert(NodeId::new(3)));
        assert!(s.contains(NodeId::new(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId::new(3)));
        assert!(!s.remove(NodeId::new(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ns(&[0, 1, 2]);
        let b = ns(&[2, 3]);
        assert_eq!(a.union(b), ns(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(b), ns(&[2]));
        assert_eq!(a.difference(b), ns(&[0, 1]));
        assert_eq!(a | b, a.union(b));
        assert_eq!(a & b, a.intersection(b));
        assert_eq!(a - b, a.difference(b));
    }

    #[test]
    fn complement_matches_paper_overline() {
        let f = ns(&[1, 4]);
        let c = f.complement_in(6);
        assert_eq!(c, ns(&[0, 2, 3, 5]));
        assert_eq!(f.union(c), NodeSet::universe(6));
        assert!(f.is_disjoint(c));
    }

    #[test]
    fn universe_edges() {
        assert_eq!(NodeSet::universe(0), NodeSet::EMPTY);
        assert_eq!(NodeSet::universe(128).len(), 128);
    }

    #[test]
    fn subset_and_disjoint() {
        assert!(ns(&[1]).is_subset(ns(&[0, 1])));
        assert!(!ns(&[2]).is_subset(ns(&[0, 1])));
        assert!(NodeSet::EMPTY.is_subset(NodeSet::EMPTY));
        assert!(ns(&[0]).is_disjoint(ns(&[1])));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = ns(&[5, 1, 9]);
        let order: Vec<usize> = s.iter().map(NodeId::index).collect();
        assert_eq!(order, vec![1, 5, 9]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn first_returns_minimum() {
        assert_eq!(ns(&[7, 3]).first(), Some(NodeId::new(3)));
        assert_eq!(NodeSet::EMPTY.first(), None);
    }

    #[test]
    fn display_lists_indices() {
        assert_eq!(ns(&[0, 2]).to_string(), "{0,2}");
        assert_eq!(NodeSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn bits_round_trip() {
        let s = ns(&[0, 64, 127]);
        assert_eq!(NodeSet::from_bits(s.bits()), s);
    }
}
