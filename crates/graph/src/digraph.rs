//! The directed communication network `G(V, E)`.

use crate::error::GraphError;
use crate::node::NodeId;
use crate::nodeset::{NodeSet, MAX_NODES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple directed graph on nodes `{0, …, n-1}` with no self-loops,
/// matching the paper's system model (Section 2): node `i` can reliably
/// transmit to `j` iff the directed edge `(i, j) ∈ E`.
///
/// Both adjacency directions are stored as [`NodeSet`] bitsets, so
/// neighborhood queries and induced-subgraph masking are *O(1)* per node.
///
/// # Example
///
/// ```
/// use dbac_graph::{Digraph, NodeId};
///
/// let mut g = Digraph::new(3)?;
/// g.add_edge(NodeId::new(0), NodeId::new(1))?;
/// g.add_edge(NodeId::new(1), NodeId::new(2))?;
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), dbac_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Digraph {
    n: usize,
    out: Vec<NodeSet>,
    inn: Vec<NodeSet>,
}

impl Digraph {
    /// Creates a graph with `n` isolated nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `n == 0` and
    /// [`GraphError::TooManyNodes`] if `n > MAX_NODES`.
    pub fn new(n: usize) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if n > MAX_NODES {
            return Err(GraphError::TooManyNodes { requested: n });
        }
        Ok(Digraph { n, out: vec![NodeSet::EMPTY; n], inn: vec![NodeSet::EMPTY; n] })
    }

    /// Builds a graph from a list of directed edges given as index pairs.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Digraph::new`] and [`Digraph::add_edge`].
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Digraph::new(n)?;
        for &(u, v) in edges {
            g.add_edge_idx(u, v)?;
        }
        Ok(g)
    }

    /// Builds a *bidirectional* digraph from undirected edges — how the
    /// paper's Table 1 embeds undirected networks into the directed model.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Digraph::new`] and [`Digraph::add_edge`].
    pub fn from_undirected_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let mut g = Digraph::new(n)?;
        for &(u, v) in edges {
            g.add_edge_idx(u, v)?;
            g.add_edge_idx(v, u)?;
        }
        Ok(g)
    }

    /// Number of nodes `n = |V|`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The full vertex set `V` as a [`NodeSet`].
    #[must_use]
    pub fn vertex_set(&self) -> NodeSet {
        NodeSet::universe(self.n)
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// Validates that `v` belongs to this graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] otherwise.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if v.index() < self.n {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange { node: v, node_count: self.n })
        }
    }

    /// Adds the directed edge `(u, v)`. Returns `true` if the edge was new.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] for `u == v` and
    /// [`GraphError::NodeOutOfRange`] for out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let added = self.out[u.index()].insert(v);
        self.inn[v.index()].insert(u);
        Ok(added)
    }

    fn add_edge_idx(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(u.min(MAX_NODES - 1)),
                node_count: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::new(v.min(MAX_NODES - 1)),
                node_count: self.n,
            });
        }
        self.add_edge(NodeId::new(u), NodeId::new(v))
    }

    /// Removes the directed edge `(u, v)`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.n || v.index() >= self.n {
            return false;
        }
        let removed = self.out[u.index()].remove(v);
        self.inn[v.index()].remove(u);
        removed
    }

    /// Returns `true` if the directed edge `(u, v)` exists.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.n && self.out[u.index()].contains(v)
    }

    /// Out-neighborhood `N⁺_v`.
    #[must_use]
    pub fn out_neighbors(&self, v: NodeId) -> NodeSet {
        self.out[v.index()]
    }

    /// In-neighborhood `N⁻_v`.
    #[must_use]
    pub fn in_neighbors(&self, v: NodeId) -> NodeSet {
        self.inn[v.index()]
    }

    /// Incoming neighborhood of a *set* `B`: all nodes outside `B` with an
    /// edge into `B` (the paper's `N⁻_B`, Appendix A).
    #[must_use]
    pub fn in_neighbors_of_set(&self, b: NodeSet) -> NodeSet {
        let mut result = NodeSet::EMPTY;
        for v in b.iter() {
            result |= self.inn[v.index()];
        }
        result - b
    }

    /// Outgoing neighborhood of a set `B` (the paper's `N⁺_B`).
    #[must_use]
    pub fn out_neighbors_of_set(&self, b: NodeSet) -> NodeSet {
        let mut result = NodeSet::EMPTY;
        for v in b.iter() {
            result |= self.out[v.index()];
        }
        result - b
    }

    /// Total number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(|s| s.len()).sum()
    }

    /// Iterates over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| self.out[u.index()].iter().map(move |v| (u, v)))
    }

    /// The subgraph induced by `keep` — the paper's `G_Y`. Node indices are
    /// preserved; nodes outside `keep` lose all incident edges.
    #[must_use]
    pub fn induced(&self, keep: NodeSet) -> Digraph {
        let mut g = Digraph {
            n: self.n,
            out: vec![NodeSet::EMPTY; self.n],
            inn: vec![NodeSet::EMPTY; self.n],
        };
        for v in keep.iter() {
            if v.index() >= self.n {
                continue;
            }
            g.out[v.index()] = self.out[v.index()] & keep;
            g.inn[v.index()] = self.inn[v.index()] & keep;
        }
        g
    }

    /// The reduced graph `G_{F1,F2}` of Definition 5: all *outgoing* edges
    /// of nodes in `F1 ∪ F2` are removed (incoming edges remain).
    #[must_use]
    pub fn reduced(&self, f1: NodeSet, f2: NodeSet) -> Digraph {
        let silenced = f1 | f2;
        let mut g = self.clone();
        for v in silenced.iter() {
            if v.index() >= self.n {
                continue;
            }
            for w in g.out[v.index()].iter() {
                g.inn[w.index()].remove(v);
            }
            g.out[v.index()] = NodeSet::EMPTY;
        }
        g
    }

    /// The reverse graph (every edge flipped).
    #[must_use]
    pub fn reverse(&self) -> Digraph {
        Digraph { n: self.n, out: self.inn.clone(), inn: self.out.clone() }
    }

    /// Returns `true` if every ordered pair of distinct nodes is an edge.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.nodes().all(|v| self.out[v.index()].len() == self.n - 1)
    }

    /// Returns `true` if for every edge `(u, v)` the edge `(v, u)` also
    /// exists, i.e. the digraph models an undirected network.
    #[must_use]
    pub fn is_bidirectional(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digraph(n={}, m={}; ", self.n, self.edge_count())?;
        let mut first = true;
        for (u, v) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}->{}", u.index(), v.index())?;
            first = false;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn construction_bounds() {
        assert_eq!(Digraph::new(0).unwrap_err(), GraphError::EmptyGraph);
        assert!(matches!(
            Digraph::new(MAX_NODES + 1).unwrap_err(),
            GraphError::TooManyNodes { requested } if requested == MAX_NODES + 1
        ));
        assert!(Digraph::new(MAX_NODES).is_ok());
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Digraph::new(4).unwrap();
        assert!(g.add_edge(id(0), id(1)).unwrap());
        assert!(!g.add_edge(id(0), id(1)).unwrap());
        assert!(g.has_edge(id(0), id(1)));
        assert!(g.in_neighbors(id(1)).contains(id(0)));
        assert!(g.remove_edge(id(0), id(1)));
        assert!(!g.remove_edge(id(0), id(1)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = Digraph::new(2).unwrap();
        assert_eq!(g.add_edge(id(1), id(1)).unwrap_err(), GraphError::SelfLoop { node: id(1) });
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Digraph::new(2).unwrap();
        assert!(g.add_edge(id(0), id(5)).is_err());
        assert!(Digraph::from_edges(2, &[(0, 3)]).is_err());
    }

    #[test]
    fn from_undirected_is_bidirectional() {
        let g = Digraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(g.is_bidirectional());
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn induced_subgraph_masks_edges() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let keep: NodeSet = [id(0), id(1), id(2)].into_iter().collect();
        let sub = g.induced(keep);
        assert!(sub.has_edge(id(0), id(1)));
        assert!(sub.has_edge(id(1), id(2)));
        assert!(!sub.has_edge(id(2), id(3)));
        assert!(!sub.has_edge(id(3), id(0)));
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn reduced_graph_removes_only_outgoing() {
        // Definition 5: nodes in F1 ∪ F2 keep incoming edges.
        let g = Digraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let f1 = NodeSet::singleton(id(1));
        let r = g.reduced(f1, NodeSet::EMPTY);
        assert!(r.has_edge(id(0), id(1)), "incoming edge into F preserved");
        assert!(!r.has_edge(id(1), id(0)), "outgoing edge from F removed");
        assert!(!r.has_edge(id(1), id(2)));
        assert!(r.has_edge(id(2), id(1)));
    }

    #[test]
    fn reverse_flips_edges() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let r = g.reverse();
        assert!(r.has_edge(id(1), id(0)));
        assert!(r.has_edge(id(2), id(1)));
        assert_eq!(r.edge_count(), 2);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn set_neighborhoods() {
        let g = Digraph::from_edges(4, &[(0, 1), (3, 1), (1, 2), (2, 0)]).unwrap();
        let b: NodeSet = [id(1), id(2)].into_iter().collect();
        assert_eq!(g.in_neighbors_of_set(b), [id(0), id(3)].into_iter().collect());
        assert_eq!(g.out_neighbors_of_set(b), NodeSet::singleton(id(0)));
    }

    #[test]
    fn completeness_check() {
        let mut g = Digraph::new(3).unwrap();
        for u in 0..3 {
            for v in 0..3 {
                if u != v {
                    g.add_edge(id(u), id(v)).unwrap();
                }
            }
        }
        assert!(g.is_complete());
        g.remove_edge(id(0), id(1));
        assert!(!g.is_complete());
    }

    #[test]
    fn edges_iterator_is_exhaustive() {
        let g = Digraph::from_edges(3, &[(0, 1), (2, 0), (1, 2)]).unwrap();
        let mut edges: Vec<(usize, usize)> =
            g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }
}
