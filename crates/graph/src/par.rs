//! Minimal data parallelism over scoped threads.
//!
//! `Topology` precomputation fans out per-terminal path enumeration and
//! per-guess reach computation; both are embarrassingly parallel. The usual
//! crate for this is rayon, which is unavailable in this offline build, so
//! this module provides the one primitive the workspace needs — an indexed
//! parallel map with work stealing via a shared atomic cursor — on plain
//! `std::thread::scope`. Results come back in input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every element of `items` across the available cores and
/// returns the results in input order. `f` receives `(index, &item)`.
///
/// Falls back to a sequential loop for tiny inputs or single-core hosts;
/// the closure therefore must not rely on running on a particular thread.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f` (the scope joins all
/// workers first).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism().map_or(1, |t| t.get()).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("result slot poisoned").expect("every index was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(par_map(&[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn results_collect_errors() {
        let items = [1usize, 2, 3, 4];
        let out: Result<Vec<usize>, &str> =
            par_map(&items, |_, &x| if x == 3 { Err("three") } else { Ok(x) })
                .into_iter()
                .collect();
        assert_eq!(out, Err("three"));
    }
}
