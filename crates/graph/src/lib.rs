//! # dbac-graph
//!
//! Directed-graph substrate for the `dbac` workspace — the reproduction of
//! *"Asynchronous Byzantine Approximate Consensus in Directed Networks"*
//! (Sakavalas, Tseng, Vaidya — PODC 2020).
//!
//! The paper models the network as a simple directed graph `G(V, E)` and its
//! algorithm and conditions are intrinsically graph-theoretic: *reach sets*,
//! *redundant paths*, *source components*, *vertex-disjoint propagation
//! paths*. This crate provides the pieces everything else is built on:
//!
//! * [`NodeId`] — a typed node identifier.
//! * [`NodeSet`] — a multi-word bitset over nodes (`|V| ≤ MAX_NODES`: 256
//!   by default, 16384 under the `huge-graphs` feature), the workhorse for
//!   the paper's ubiquitous "for any `F ⊆ V` with `|F| ≤ f`" quantifiers.
//! * [`Digraph`] — the directed network.
//! * [`Path`] — directed paths, with the paper's *simple* and *redundant*
//!   path notions (Section 3) and exhaustive enumeration with budget guards.
//! * [`PathIndex`] / [`PathId`] — interning of the enumerated path
//!   population into dense ids with precomputed metadata and a forwarding
//!   table, taking heap-allocated paths off the message hot path.
//! * [`scc`] — Tarjan strongly-connected components.
//! * [`maxflow`] — maximum vertex-disjoint paths (Menger), used by the
//!   propagation condition (Definition 10) and the Figure 1(b) analysis.
//! * [`connectivity`] — vertex connectivity `κ(G)` for the Table 1 checks.
//! * [`generators`] — named graph families, including the paper's
//!   Figure 1(a) and Figure 1(b) constructions.
//!
//! # Example
//!
//! ```
//! use dbac_graph::{generators, NodeId, paths};
//!
//! // The paper's Figure 1(b): two 7-cliques joined by 8 directed edges.
//! let g = generators::figure_1b();
//! assert_eq!(g.node_count(), 14);
//!
//! // v1 -> w1 is connected by exactly 2f = 4 vertex-disjoint paths,
//! // so all-pair reliable message transmission is infeasible for f = 2 …
//! let v1 = NodeId::new(0);
//! let w1 = NodeId::new(7);
//! assert_eq!(dbac_graph::maxflow::max_vertex_disjoint_paths(&g, v1, w1), 4);
//! # let _ = paths::is_reachable(&g, v1, w1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
pub mod digraph;
pub mod dot;
pub mod error;
pub mod fasthash;
pub mod generators;
pub mod maxflow;
pub mod node;
pub mod nodeset;
pub mod par;
pub mod path_index;
pub mod paths;
pub mod scc;
pub mod subsets;

pub use digraph::Digraph;
pub use error::GraphError;
pub use fasthash::{FastHashMap, FastHashSet};
pub use node::NodeId;
pub use nodeset::{NodeSet, WordSet, MAX_NODES, NODE_WORDS};
pub use path_index::{PathId, PathIndex};
pub use paths::{Path, PathBudget};
pub use subsets::SubsetsUpTo;
