//! A fast, non-cryptographic hasher for protocol-internal maps.
//!
//! The per-message hot path keys maps by small integers (`PathId`, node
//! ids, rounds). `std`'s default SipHash is DoS-resistant but
//! costs more than the lookups it guards; protocol-internal keys are
//! derived from the precomputed topology, not from attacker-controlled
//! bytes, so an FxHash-style multiply-xor hasher is safe and measurably
//! faster. Use [`FastHashMap`] / [`FastHashSet`] **only** for keys a
//! Byzantine sender cannot choose (validated `PathId`s, node ids, rounds);
//! anything incorporating payload fingerprints or value bits stays on the
//! seeded default hasher to resist hash-flooding.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style streaming hasher (rotate, xor, multiply per word).
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FastHashMap<u32, &str> = FastHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FastHashSet<(u32, u64)> = FastHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
    }

    #[test]
    fn hashes_are_stable_and_spread() {
        let hash_of = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash_of(7), hash_of(7));
        let distinct: std::collections::HashSet<u64> = (0..1000).map(hash_of).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        let mut a = FastHasher::default();
        a.write(b"abcdefgh-tail");
        let mut b = FastHasher::default();
        b.write(b"abcdefgh-tail");
        assert_eq!(a.finish(), b.finish());
        let mut c = FastHasher::default();
        c.write(b"abcdefgh-takl");
        assert_ne!(a.finish(), c.finish());
    }
}
