//! Vertex connectivity `κ(G)`.
//!
//! Table 1 of the paper states the classical tight conditions for
//! *undirected* networks in terms of `κ(G)` (e.g. Byzantine consensus needs
//! `n > 3f` and `κ(G) > 2f`). We compute κ on the bidirectional-digraph
//! embedding of an undirected network; for general digraphs the same
//! routine yields *strong* vertex connectivity.

use crate::digraph::Digraph;
use crate::maxflow::max_vertex_disjoint_paths;
use crate::nodeset::NodeSet;
use crate::paths::reachable_from;

/// Returns `true` if `g` is strongly connected.
#[must_use]
pub fn is_strongly_connected(g: &Digraph) -> bool {
    let v0 = crate::node::NodeId::new(0);
    reachable_from(g, v0) == g.vertex_set() && reachable_from(&g.reverse(), v0) == g.vertex_set()
}

/// (Strong) vertex connectivity: the minimum number of nodes whose removal
/// disconnects some ordered pair, computed via Menger as
/// `min_{(s,t): (s,t) ∉ E} maxdisjoint(s, t)`; `n - 1` for complete graphs.
///
/// For a bidirectional digraph this is exactly the undirected `κ(G)`.
///
/// # Example
///
/// ```
/// use dbac_graph::{connectivity, generators};
///
/// // Figure 1(a) requires κ(G) > 2f = 2; the wheel on 5 nodes has κ = 3.
/// let g = generators::figure_1a();
/// assert_eq!(connectivity::vertex_connectivity(&g), 3);
/// ```
#[must_use]
pub fn vertex_connectivity(g: &Digraph) -> usize {
    let n = g.node_count();
    if n == 1 {
        return 0;
    }
    let mut best = n - 1;
    let mut any_non_adjacent = false;
    for s in g.nodes() {
        for t in g.nodes() {
            if s == t || g.has_edge(s, t) {
                continue;
            }
            any_non_adjacent = true;
            best = best.min(max_vertex_disjoint_paths(g, s, t));
            if best == 0 {
                return 0;
            }
        }
    }
    if any_non_adjacent {
        best
    } else {
        n - 1
    }
}

/// Returns `true` if removing `cut` disconnects `g` (some ordered pair of
/// remaining nodes loses all directed paths), or leaves fewer than two
/// nodes. Used to double-check κ results in tests and experiments.
#[must_use]
pub fn is_vertex_cut(g: &Digraph, cut: NodeSet) -> bool {
    let remaining = g.vertex_set() - cut;
    if remaining.len() <= 1 {
        return true;
    }
    let sub = g.induced(remaining);
    for s in remaining.iter() {
        if reachable_from(&sub, s) & remaining != remaining {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::node::NodeId;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn clique_connectivity_is_n_minus_1() {
        for n in 2..6 {
            assert_eq!(vertex_connectivity(&generators::clique(n)), n - 1);
        }
    }

    #[test]
    fn cycle_connectivity() {
        assert_eq!(vertex_connectivity(&generators::bidirectional_cycle(5)), 2);
        assert_eq!(vertex_connectivity(&generators::directed_cycle(5)), 1);
    }

    #[test]
    fn disconnected_graph_has_zero() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(vertex_connectivity(&g), 0);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn wheel_has_connectivity_three() {
        assert_eq!(vertex_connectivity(&generators::wheel(5)), 3);
    }

    #[test]
    fn strong_connectivity_checks() {
        assert!(is_strongly_connected(&generators::directed_cycle(4)));
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn vertex_cut_detection() {
        // 0 - 1 - 2 path (bidirectional): {1} is a cut.
        let g = Digraph::from_undirected_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(is_vertex_cut(&g, NodeSet::singleton(id(1))));
        assert!(!is_vertex_cut(&g, NodeSet::singleton(id(0))));
    }

    #[test]
    fn cut_with_too_few_remaining_counts_as_cut() {
        let g = generators::clique(3);
        let cut: NodeSet = [id(0), id(1)].into_iter().collect();
        assert!(is_vertex_cut(&g, cut));
    }

    #[test]
    fn figure_1a_is_minimally_3_connected() {
        // The paper: "removing any edge will reduce κ(G)".
        let g = generators::figure_1a();
        assert_eq!(vertex_connectivity(&g), 3);
        for (u, v) in g.edges().collect::<Vec<_>>() {
            let mut h = g.clone();
            h.remove_edge(u, v);
            h.remove_edge(v, u);
            assert!(vertex_connectivity(&h) < 3, "removing {u}->{v} kept κ ≥ 3");
        }
    }
}
