//! Strongly connected components (Tarjan).
//!
//! The paper's source component `S_{F1,F2}` (Definition 6) is a strongly
//! connected component of the reduced graph; this module provides the SCC
//! decomposition it is built from.

use crate::digraph::Digraph;
use crate::node::NodeId;
use crate::nodeset::NodeSet;

/// Computes the strongly connected components of `g` restricted to the
/// nodes in `within` (pass [`Digraph::vertex_set`] for the whole graph).
///
/// Components are returned in *reverse topological order* of the
/// condensation: if component `A` appears before component `B`, there is no
/// edge from `A` to `B`.
///
/// # Example
///
/// ```
/// use dbac_graph::{Digraph, scc};
///
/// let g = Digraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])?;
/// let comps = scc::strongly_connected_components(&g, g.vertex_set());
/// assert_eq!(comps.len(), 2);
/// # Ok::<(), dbac_graph::GraphError>(())
/// ```
#[must_use]
pub fn strongly_connected_components(g: &Digraph, within: NodeSet) -> Vec<NodeSet> {
    let n = g.node_count();
    let mut state = Tarjan {
        g,
        within,
        index: vec![usize::MAX; n],
        lowlink: vec![usize::MAX; n],
        on_stack: NodeSet::EMPTY,
        stack: Vec::new(),
        next_index: 0,
        components: Vec::new(),
    };
    for v in within.iter() {
        if v.index() < n && state.index[v.index()] == usize::MAX {
            state.visit(v);
        }
    }
    state.components
}

/// The strongly connected component containing `v` (within `within`).
#[must_use]
pub fn component_of(g: &Digraph, within: NodeSet, v: NodeId) -> NodeSet {
    strongly_connected_components(g, within)
        .into_iter()
        .find(|c| c.contains(v))
        .unwrap_or_else(|| NodeSet::singleton(v))
}

/// Returns `true` if every node of `set` can reach every other node of
/// `set` inside the subgraph induced by `set`.
#[must_use]
pub fn is_strongly_connected_within(g: &Digraph, set: NodeSet) -> bool {
    if set.is_empty() {
        return true;
    }
    let comps = strongly_connected_components(g, set);
    comps.len() == 1 && comps[0] == set
}

struct Tarjan<'a> {
    g: &'a Digraph,
    within: NodeSet,
    index: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: NodeSet,
    stack: Vec<NodeId>,
    next_index: usize,
    components: Vec<NodeSet>,
}

impl Tarjan<'_> {
    fn visit(&mut self, v: NodeId) {
        self.index[v.index()] = self.next_index;
        self.lowlink[v.index()] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack.insert(v);

        for w in (self.g.out_neighbors(v) & self.within).iter() {
            if self.index[w.index()] == usize::MAX {
                self.visit(w);
                self.lowlink[v.index()] = self.lowlink[v.index()].min(self.lowlink[w.index()]);
            } else if self.on_stack.contains(w) {
                self.lowlink[v.index()] = self.lowlink[v.index()].min(self.index[w.index()]);
            }
        }

        if self.lowlink[v.index()] == self.index[v.index()] {
            let mut comp = NodeSet::EMPTY;
            loop {
                let w = self.stack.pop().expect("stack holds the component");
                self.on_stack.remove(w);
                comp.insert(w);
                if w == v {
                    break;
                }
            }
            self.components.push(comp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn clique_is_one_component() {
        let g = generators::clique(5);
        let comps = strongly_connected_components(&g, g.vertex_set());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], g.vertex_set());
        assert!(is_strongly_connected_within(&g, g.vertex_set()));
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let comps = strongly_connected_components(&g, g.vertex_set());
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn reverse_topological_order() {
        // 0 <-> 1 feeds into 2 <-> 3: the sink component {2,3} comes first.
        let g = Digraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]).unwrap();
        let comps = strongly_connected_components(&g, g.vertex_set());
        assert_eq!(comps.len(), 2);
        assert!(comps[0].contains(id(2)) && comps[0].contains(id(3)));
        assert!(comps[1].contains(id(0)) && comps[1].contains(id(1)));
    }

    #[test]
    fn respects_within_restriction() {
        let g = generators::clique(4);
        let within: NodeSet = [id(0), id(1)].into_iter().collect();
        let comps = strongly_connected_components(&g, within);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], within);
    }

    #[test]
    fn component_of_isolated_restriction() {
        let g = Digraph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(component_of(&g, g.vertex_set(), id(2)), NodeSet::singleton(id(2)));
    }

    #[test]
    fn strongly_connected_within_subsets() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        assert!(is_strongly_connected_within(&g, [id(0), id(1)].into_iter().collect()));
        assert!(!is_strongly_connected_within(&g, [id(0), id(2)].into_iter().collect()));
        assert!(is_strongly_connected_within(&g, NodeSet::EMPTY));
        assert!(is_strongly_connected_within(&g, NodeSet::singleton(id(3))));
    }

    #[test]
    fn directed_cycle_is_single_component() {
        let g = generators::directed_cycle(6);
        assert!(is_strongly_connected_within(&g, g.vertex_set()));
    }
}
