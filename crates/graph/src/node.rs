//! Typed node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`Digraph`](crate::Digraph).
///
/// Nodes are dense indices `0..n`; the paper writes `V = {1, …, n}`, we use
/// zero-based indices throughout. The inner index is private so that the
/// representation can evolve; use [`NodeId::new`] and [`NodeId::index`].
///
/// # Example
///
/// ```
/// use dbac_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the maximum supported node count
    /// ([`MAX_NODES`](crate::MAX_NODES)), which is the capacity of
    /// [`NodeSet`](crate::NodeSet).
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(
            index < crate::nodeset::MAX_NODES,
            "node index {index} exceeds the supported maximum of {}",
            crate::nodeset::MAX_NODES
        );
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0, 1, 17, 127] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn new_rejects_out_of_range() {
        let _ = NodeId::new(crate::nodeset::MAX_NODES);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId::new(2) < NodeId::new(5));
        assert_eq!(NodeId::new(4), NodeId::new(4));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", NodeId::new(9)), "n9");
        assert_eq!(format!("{:?}", NodeId::new(9)), "n9");
    }
}
