//! Directed paths: the paper's *simple* and *redundant* path notions
//! (Section 3) and their exhaustive enumeration.
//!
//! A **redundant path** is a concatenation `p1 || p2` of at most two simple
//! paths; it may contain cycles and its length is bounded by `2n`. The
//! RedundantFlood subroutine (Appendix E) propagates values along *every*
//! redundant path, and the Maximal-Consistency condition of Algorithm BW
//! requires a node to have heard from *all* incoming redundant paths that
//! avoid a suspected fault set. Enumeration is therefore a first-class
//! operation here — with explicit budgets, because the path count is
//! exponential in general.

use crate::digraph::Digraph;
use crate::error::GraphError;
use crate::node::NodeId;
use crate::nodeset::NodeSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A directed path `⟨v1, …, vk⟩` (non-empty list of nodes).
///
/// Paths are plain data: validity against a particular graph is checked by
/// [`Path::is_valid_in`]. The paper interprets a path both as a sequence and
/// as the *set* of its nodes; [`Path::node_set`] gives the latter.
///
/// # Example
///
/// ```
/// use dbac_graph::{NodeId, Path};
///
/// let p = Path::from_indices(&[0, 1, 2])?;
/// assert_eq!(p.init(), NodeId::new(0));
/// assert_eq!(p.ter(), NodeId::new(2));
/// assert!(p.is_simple());
/// assert!(p.is_redundant()); // every simple path is redundant
/// # Ok::<(), dbac_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Path(Vec<NodeId>);

impl Path {
    /// The trivial single-node path `⟨v⟩`.
    #[must_use]
    pub fn single(v: NodeId) -> Self {
        Path(vec![v])
    }

    /// Builds a path from a node sequence.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPath`] if the sequence is empty or any
    /// two consecutive nodes coincide (self-loops are not edges).
    pub fn from_nodes(nodes: Vec<NodeId>) -> Result<Self, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::InvalidPath { reason: "empty node sequence".into() });
        }
        if nodes.windows(2).any(|w| w[0] == w[1]) {
            return Err(GraphError::InvalidPath {
                reason: "consecutive repeated node (self-loop)".into(),
            });
        }
        Ok(Path(nodes))
    }

    /// Builds a path from raw indices (convenience for tests and examples).
    ///
    /// # Errors
    ///
    /// Same as [`Path::from_nodes`].
    pub fn from_indices(indices: &[usize]) -> Result<Self, GraphError> {
        Path::from_nodes(indices.iter().map(|&i| NodeId::new(i)).collect())
    }

    /// The initial node `init(p)`.
    #[must_use]
    pub fn init(&self) -> NodeId {
        self.0[0]
    }

    /// The terminal node `ter(p)`.
    #[must_use]
    pub fn ter(&self) -> NodeId {
        *self.0.last().expect("paths are non-empty")
    }

    /// The node sequence.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.0
    }

    /// Number of edges (one less than the number of node occurrences).
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len() - 1
    }

    /// Returns `true` for the trivial single-node path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.len() == 1
    }

    /// Number of node occurrences (with repetition).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.0.len()
    }

    /// The path interpreted as a node set (Section 3).
    #[must_use]
    pub fn node_set(&self) -> NodeSet {
        self.0.iter().copied().collect()
    }

    /// Returns `true` if the path visits `v`.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.0.contains(&v)
    }

    /// Returns `true` if the path shares a node with `set` — the paper's
    /// `C ∩ p ≠ ∅`.
    #[must_use]
    pub fn intersects(&self, set: NodeSet) -> bool {
        self.0.iter().any(|&v| set.contains(v))
    }

    /// Returns `true` if no node repeats (a *simple* path).
    #[must_use]
    pub fn is_simple(&self) -> bool {
        let mut seen = NodeSet::EMPTY;
        self.0.iter().all(|&v| seen.insert(v))
    }

    /// Returns `true` if the path splits into at most two simple paths —
    /// the paper's *redundant path* (Section 3). Its length is then at most
    /// `2n`.
    #[must_use]
    pub fn is_redundant(&self) -> bool {
        // Try every split point i: prefix = nodes[0..=i], suffix = nodes[i..].
        // (The shared node i is the glue; either side may be trivial.)
        let k = self.0.len();
        'split: for i in 0..k {
            let mut seen = NodeSet::EMPTY;
            for &v in &self.0[..=i] {
                if !seen.insert(v) {
                    continue 'split;
                }
            }
            let mut seen = NodeSet::EMPTY;
            if self.0[i..].iter().all(|&v| seen.insert(v)) {
                return true;
            }
        }
        false
    }

    /// Concatenation `p || q`, requiring `ter(p) = init(q)`; the glue node
    /// appears once in the result.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPath`] if the endpoints do not match.
    pub fn concat(&self, other: &Path) -> Result<Path, GraphError> {
        if self.ter() != other.init() {
            return Err(GraphError::InvalidPath {
                reason: format!(
                    "cannot concatenate: ter={} but next init={}",
                    self.ter(),
                    other.init()
                ),
            });
        }
        let mut nodes = self.0.clone();
        nodes.extend_from_slice(&other.0[1..]);
        Ok(Path(nodes))
    }

    /// The extension `p || u` (the paper's notation for appending a node).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPath`] if `u` equals the terminal node.
    pub fn extended(&self, u: NodeId) -> Result<Path, GraphError> {
        if self.ter() == u {
            return Err(GraphError::InvalidPath {
                reason: format!("cannot extend path ending at {u} with {u} (self-loop)"),
            });
        }
        let mut nodes = self.0.clone();
        nodes.push(u);
        Ok(Path(nodes))
    }

    /// Checks that every consecutive pair is an edge of `g`.
    #[must_use]
    pub fn is_valid_in(&self, g: &Digraph) -> bool {
        self.0.iter().all(|v| v.index() < g.node_count())
            && self.0.windows(2).all(|w| g.has_edge(w[0], w[1]))
    }

    /// Returns `true` if the path lies entirely inside `allowed` — the
    /// paper's `p ⊆ C`.
    #[must_use]
    pub fn is_within(&self, allowed: NodeSet) -> bool {
        self.0.iter().all(|&v| allowed.contains(v))
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", v.index())?;
        }
        write!(f, "⟩")
    }
}

/// Budget guard for exhaustive path enumeration.
///
/// The redundant-path count is exponential; every enumeration entry point
/// takes a budget so callers opt into the cost explicitly. The default
/// allows one million paths, comfortably covering the graph sizes on which
/// the full BW protocol is tractable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathBudget {
    /// Maximum number of paths an enumeration may return.
    pub max_paths: usize,
}

impl PathBudget {
    /// Creates a budget admitting up to `max_paths` paths.
    #[must_use]
    pub fn new(max_paths: usize) -> Self {
        PathBudget { max_paths }
    }
}

impl Default for PathBudget {
    fn default() -> Self {
        PathBudget { max_paths: 1_000_000 }
    }
}

/// Nodes reachable *from* `v` (including `v`) by directed paths in `g`.
#[must_use]
pub fn reachable_from(g: &Digraph, v: NodeId) -> NodeSet {
    let mut seen = NodeSet::singleton(v);
    let mut frontier = vec![v];
    while let Some(u) = frontier.pop() {
        for w in g.out_neighbors(u).iter() {
            if seen.insert(w) {
                frontier.push(w);
            }
        }
    }
    seen
}

/// Nodes that can reach `v` (including `v`) by directed paths in `g`.
#[must_use]
pub fn reaching_to(g: &Digraph, v: NodeId) -> NodeSet {
    let mut seen = NodeSet::singleton(v);
    let mut frontier = vec![v];
    while let Some(u) = frontier.pop() {
        for w in g.in_neighbors(u).iter() {
            if seen.insert(w) {
                frontier.push(w);
            }
        }
    }
    seen
}

/// Returns `true` if a directed path from `from` to `to` exists.
#[must_use]
pub fn is_reachable(g: &Digraph, from: NodeId, to: NodeId) -> bool {
    reachable_from(g, from).contains(to)
}

/// All simple paths from `from` to `to` avoiding `forbidden`.
///
/// Includes the trivial path `⟨from⟩` when `from == to`. Endpoints inside
/// `forbidden` yield an empty result.
///
/// # Errors
///
/// Returns [`GraphError::BudgetExceeded`] if more than `budget.max_paths`
/// paths exist.
pub fn simple_paths(
    g: &Digraph,
    from: NodeId,
    to: NodeId,
    forbidden: NodeSet,
    budget: PathBudget,
) -> Result<Vec<Path>, GraphError> {
    if forbidden.contains(from) || forbidden.contains(to) {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut stack = vec![from];
    let mut on_path = NodeSet::singleton(from);
    dfs_simple(g, to, forbidden, &mut stack, &mut on_path, &mut out, budget.max_paths)?;
    Ok(out)
}

fn dfs_simple(
    g: &Digraph,
    to: NodeId,
    forbidden: NodeSet,
    stack: &mut Vec<NodeId>,
    on_path: &mut NodeSet,
    out: &mut Vec<Path>,
    max_paths: usize,
) -> Result<(), GraphError> {
    let u = *stack.last().expect("non-empty DFS stack");
    if u == to {
        if out.len() >= max_paths {
            return Err(GraphError::BudgetExceeded { limit: max_paths });
        }
        out.push(Path(stack.clone()));
        return Ok(()); // cannot extend through `to` and stay a (from,to)-path
    }
    for w in g.out_neighbors(u).iter() {
        if forbidden.contains(w) || on_path.contains(w) {
            continue;
        }
        stack.push(w);
        on_path.insert(w);
        dfs_simple(g, to, forbidden, stack, on_path, out, max_paths)?;
        stack.pop();
        on_path.remove(w);
    }
    Ok(())
}

/// All simple paths (from any start) *ending at* `to`, avoiding `forbidden`;
/// includes the trivial `⟨to⟩`.
///
/// # Errors
///
/// Returns [`GraphError::BudgetExceeded`] if the budget is exhausted.
pub fn simple_paths_ending_at(
    g: &Digraph,
    to: NodeId,
    forbidden: NodeSet,
    budget: PathBudget,
) -> Result<Vec<Path>, GraphError> {
    if forbidden.contains(to) {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut stack = vec![to];
    let mut on_path = NodeSet::singleton(to);
    dfs_backward(g, forbidden, &mut stack, &mut on_path, &mut out, budget.max_paths)?;
    Ok(out)
}

fn dfs_backward(
    g: &Digraph,
    forbidden: NodeSet,
    stack: &mut Vec<NodeId>,
    on_path: &mut NodeSet,
    out: &mut Vec<Path>,
    max_paths: usize,
) -> Result<(), GraphError> {
    if out.len() >= max_paths {
        return Err(GraphError::BudgetExceeded { limit: max_paths });
    }
    // `stack` holds the path reversed: stack[0] = terminal.
    out.push(Path(stack.iter().rev().copied().collect()));
    let u = *stack.last().expect("non-empty DFS stack");
    for w in g.in_neighbors(u).iter() {
        if forbidden.contains(w) || on_path.contains(w) {
            continue;
        }
        stack.push(w);
        on_path.insert(w);
        dfs_backward(g, forbidden, stack, on_path, out, max_paths)?;
        stack.pop();
        on_path.remove(w);
    }
    Ok(())
}

/// All *redundant* paths ending at `to` avoiding `forbidden` — the paper's
/// `{p ∈ P^r_Ā : ter(p) = to}` used by the fullness condition
/// (Definition 9). Includes every simple path ending at `to` and the
/// trivial `⟨to⟩`.
///
/// # Errors
///
/// Returns [`GraphError::BudgetExceeded`] if the budget is exhausted.
pub fn redundant_paths_ending_at(
    g: &Digraph,
    to: NodeId,
    forbidden: NodeSet,
    budget: PathBudget,
) -> Result<Vec<Path>, GraphError> {
    if forbidden.contains(to) {
        return Ok(Vec::new());
    }
    // p = p1 || p2 with ter(p1) = init(p2) = m, ter(p2) = to. Enumerate all
    // glue nodes m; `seen` deduplicates (a path may arise from many splits).
    let mut seen: HashSet<Path> = HashSet::new();
    let mut out: Vec<Path> = Vec::new();
    let allowed = forbidden.complement_in(g.node_count());
    for m in allowed.iter() {
        let firsts = simple_paths_ending_at(g, m, forbidden, budget)?;
        let seconds = simple_paths(g, m, to, forbidden, budget)?;
        for p2 in &seconds {
            for p1 in &firsts {
                let glued = p1.concat(p2).expect("ter(p1) = m = init(p2)");
                debug_assert!(glued.is_redundant());
                if seen.insert(glued.clone()) {
                    if out.len() >= budget.max_paths {
                        return Err(GraphError::BudgetExceeded { limit: budget.max_paths });
                    }
                    out.push(glued);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn path_endpoints_and_length() {
        let p = Path::from_indices(&[3, 1, 4]).unwrap();
        assert_eq!(p.init(), id(3));
        assert_eq!(p.ter(), id(4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.node_count(), 3);
        assert!(!p.is_empty());
        assert!(Path::single(id(0)).is_empty());
    }

    #[test]
    fn from_nodes_validation() {
        assert!(Path::from_nodes(vec![]).is_err());
        assert!(Path::from_indices(&[1, 1]).is_err());
        assert!(Path::from_indices(&[1, 2, 1]).is_ok()); // cycle, not self-loop
    }

    #[test]
    fn simplicity() {
        assert!(Path::from_indices(&[0, 1, 2]).unwrap().is_simple());
        assert!(!Path::from_indices(&[0, 1, 0]).unwrap().is_simple());
        assert!(Path::single(id(5)).is_simple());
    }

    #[test]
    fn redundancy_definition() {
        // Simple paths are redundant (one side empty).
        assert!(Path::from_indices(&[0, 1, 2]).unwrap().is_redundant());
        // One cycle through the glue node is redundant: ⟨0,1,0,2⟩ = ⟨0,1,0⟩ ∥ ⟨0,2⟩.
        assert!(Path::from_indices(&[0, 1, 0, 2]).unwrap().is_redundant());
        // ⟨0,1,2,0,1,3⟩ = ⟨0,1,2,0⟩? not simple twice… split at index 3:
        // prefix ⟨0,1,2,0⟩ is NOT simple; it needs prefix ⟨0,1,2⟩+suffix ⟨2,0,1,3⟩: both simple.
        assert!(Path::from_indices(&[0, 1, 2, 0, 1, 3]).unwrap().is_redundant());
        // Three repetitions cannot split into two simple halves.
        assert!(!Path::from_indices(&[0, 1, 0, 1, 0, 1]).unwrap().is_redundant());
    }

    #[test]
    fn concat_and_extend() {
        let p = Path::from_indices(&[0, 1]).unwrap();
        let q = Path::from_indices(&[1, 2]).unwrap();
        assert_eq!(p.concat(&q).unwrap(), Path::from_indices(&[0, 1, 2]).unwrap());
        assert!(q.concat(&p).is_err());
        assert_eq!(p.extended(id(2)).unwrap(), Path::from_indices(&[0, 1, 2]).unwrap());
        assert!(p.extended(id(1)).is_err());
    }

    #[test]
    fn validity_against_graph() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(Path::from_indices(&[0, 1, 2]).unwrap().is_valid_in(&g));
        assert!(!Path::from_indices(&[0, 2]).unwrap().is_valid_in(&g));
        assert!(Path::single(id(2)).is_valid_in(&g));
    }

    #[test]
    fn set_interpretation() {
        let p = Path::from_indices(&[0, 1, 0, 2]).unwrap();
        assert_eq!(p.node_set().len(), 3);
        assert!(p.intersects(NodeSet::singleton(id(1))));
        assert!(!p.intersects(NodeSet::singleton(id(3))));
        assert!(p.is_within(NodeSet::universe(3)));
        assert!(!p.is_within(NodeSet::universe(2)));
    }

    #[test]
    fn reachability() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (3, 0)]).unwrap();
        assert!(is_reachable(&g, id(0), id(2)));
        assert!(!is_reachable(&g, id(2), id(0)));
        assert_eq!(reachable_from(&g, id(3)).len(), 4);
        assert_eq!(reaching_to(&g, id(2)).len(), 4);
        assert_eq!(reaching_to(&g, id(3)), NodeSet::singleton(id(3)));
    }

    #[test]
    fn simple_paths_in_diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let g = Digraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let ps = simple_paths(&g, id(0), id(3), NodeSet::EMPTY, PathBudget::default()).unwrap();
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|p| p.is_simple() && p.is_valid_in(&g)));
        // Forbidding node 1 leaves only the lower route.
        let ps = simple_paths(&g, id(0), id(3), NodeSet::singleton(id(1)), PathBudget::default())
            .unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0], Path::from_indices(&[0, 2, 3]).unwrap());
    }

    #[test]
    fn simple_paths_trivial_when_endpoints_equal() {
        let g = generators::clique(3);
        let ps = simple_paths(&g, id(1), id(1), NodeSet::EMPTY, PathBudget::default()).unwrap();
        assert_eq!(ps, vec![Path::single(id(1))]);
    }

    #[test]
    fn simple_paths_count_in_clique() {
        // In K4, (u,v)-simple paths: 1 direct + 2 one-hop + 2 two-hop = 5.
        let g = generators::clique(4);
        let ps = simple_paths(&g, id(0), id(3), NodeSet::EMPTY, PathBudget::default()).unwrap();
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn simple_paths_ending_at_counts() {
        // In K4, simple paths ending at v: ⟨v⟩ + 3 direct + 6 length-2 + 6 length-3 = 16.
        let g = generators::clique(4);
        let ps = simple_paths_ending_at(&g, id(0), NodeSet::EMPTY, PathBudget::default()).unwrap();
        assert_eq!(ps.len(), 16);
        assert!(ps.iter().all(|p| p.ter() == id(0) && p.is_simple()));
        assert!(ps.contains(&Path::single(id(0))));
    }

    #[test]
    fn redundant_paths_include_all_simple_ones() {
        let g = generators::clique(4);
        let simple =
            simple_paths_ending_at(&g, id(0), NodeSet::EMPTY, PathBudget::default()).unwrap();
        let redundant =
            redundant_paths_ending_at(&g, id(0), NodeSet::EMPTY, PathBudget::default()).unwrap();
        let rset: HashSet<&Path> = redundant.iter().collect();
        for p in &simple {
            assert!(rset.contains(p), "missing simple path {p}");
        }
        assert!(redundant.iter().all(|p| p.is_redundant() && p.ter() == id(0)));
        // Redundant strictly exceeds simple in a clique.
        assert!(redundant.len() > simple.len());
        // No duplicates.
        assert_eq!(rset.len(), redundant.len());
    }

    #[test]
    fn redundant_paths_respect_forbidden_set() {
        let g = generators::clique(5);
        let forbidden = NodeSet::singleton(id(4));
        let rs = redundant_paths_ending_at(&g, id(0), forbidden, PathBudget::default()).unwrap();
        assert!(rs.iter().all(|p| !p.contains(id(4))));
    }

    #[test]
    fn redundant_path_lengths_bounded_by_2n() {
        let g = generators::clique(4);
        let rs =
            redundant_paths_ending_at(&g, id(0), NodeSet::EMPTY, PathBudget::default()).unwrap();
        assert!(rs.iter().all(|p| p.node_count() <= 2 * g.node_count()));
    }

    #[test]
    fn budget_is_enforced() {
        let g = generators::clique(6);
        let err = simple_paths_ending_at(&g, id(0), NodeSet::EMPTY, PathBudget::new(10));
        assert_eq!(err.unwrap_err(), GraphError::BudgetExceeded { limit: 10 });
        let err = redundant_paths_ending_at(&g, id(0), NodeSet::EMPTY, PathBudget::new(10));
        assert!(matches!(err.unwrap_err(), GraphError::BudgetExceeded { .. }));
    }

    #[test]
    fn forbidden_endpoint_yields_empty() {
        let g = generators::clique(3);
        let f = NodeSet::singleton(id(0));
        assert!(simple_paths(&g, id(0), id(1), f, PathBudget::default()).unwrap().is_empty());
        assert!(simple_paths_ending_at(&g, id(0), f, PathBudget::default()).unwrap().is_empty());
        assert!(redundant_paths_ending_at(&g, id(0), f, PathBudget::default()).unwrap().is_empty());
    }

    #[test]
    fn display_format() {
        let p = Path::from_indices(&[0, 2, 1]).unwrap();
        assert_eq!(p.to_string(), "⟨0,2,1⟩");
    }
}
