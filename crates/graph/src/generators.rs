//! Named graph families, including the paper's Figure 1 constructions.

use crate::digraph::Digraph;
use crate::node::NodeId;
use rand::Rng;

/// The complete digraph `K_n` (every ordered pair is an edge).
///
/// In a clique the paper's conditions collapse to the classical bounds:
/// 1-reach ⇔ `n > f`, 2-reach ⇔ `n > 2f`, 3-reach ⇔ `n > 3f` (Appendix A).
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_NODES`.
#[must_use]
pub fn clique(n: usize) -> Digraph {
    let mut g = Digraph::new(n).expect("valid clique size");
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(NodeId::new(u), NodeId::new(v)).expect("valid edge");
            }
        }
    }
    g
}

/// The directed cycle `0 → 1 → … → n-1 → 0`.
///
/// # Panics
///
/// Panics if `n < 2` or `n > MAX_NODES`.
#[must_use]
pub fn directed_cycle(n: usize) -> Digraph {
    assert!(n >= 2, "a cycle needs at least two nodes");
    let mut g = Digraph::new(n).expect("valid cycle size");
    for u in 0..n {
        g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n)).expect("valid edge");
    }
    g
}

/// The bidirectional (undirected) cycle on `n` nodes.
///
/// # Panics
///
/// Panics if `n < 3` or `n > MAX_NODES`.
#[must_use]
pub fn bidirectional_cycle(n: usize) -> Digraph {
    assert!(n >= 3, "an undirected cycle needs at least three nodes");
    let edges: Vec<(usize, usize)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
    Digraph::from_undirected_edges(n, &edges).expect("valid cycle")
}

/// The directed path `0 → 1 → … → n-1`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > MAX_NODES`.
#[must_use]
pub fn directed_path(n: usize) -> Digraph {
    let mut g = Digraph::new(n).expect("valid path size");
    for u in 0..n.saturating_sub(1) {
        g.add_edge(NodeId::new(u), NodeId::new(u + 1)).expect("valid edge");
    }
    g
}

/// The (undirected) wheel: node 0 is the hub adjacent to every rim node,
/// and nodes `1..n` form a cycle. `wheel(5)` is minimally 3-connected.
///
/// # Panics
///
/// Panics if `n < 4` or `n > MAX_NODES`.
#[must_use]
pub fn wheel(n: usize) -> Digraph {
    assert!(n >= 4, "a wheel needs at least four nodes");
    let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
    for v in 1..n {
        let next = if v == n - 1 { 1 } else { v + 1 };
        edges.push((v, next));
    }
    Digraph::from_undirected_edges(n, &edges).expect("valid wheel")
}

/// The paper's **Figure 1(a)**: a 5-node undirected network where
/// synchronous exact Byzantine consensus is feasible for `f = 1`
/// (`n > 3f`, `κ(G) = 3 > 2f`) and removing any edge destroys the property.
///
/// The figure is reconstructed as the minimally 3-connected wheel `W_5`
/// (hub `v3`, rim `v1–v2–v5–v4–v1`); the properties claimed in the paper
/// (κ = 3, minimality) are verified in this crate's tests.
#[must_use]
pub fn figure_1a() -> Digraph {
    // Indices: v1..v5 = 0..4; hub = v3 (index 2).
    Digraph::from_undirected_edges(
        5,
        &[
            (2, 0), // v3 - v1
            (2, 1), // v3 - v2
            (2, 3), // v3 - v4
            (2, 4), // v3 - v5
            (0, 1), // v1 - v2
            (1, 4), // v2 - v5
            (4, 3), // v5 - v4
            (3, 0), // v4 - v1
        ],
    )
    .expect("figure 1(a) is well-formed")
}

/// The paper's **Figure 1(b)**: two 7-node cliques `K1 = {v1..v7}`
/// (indices 0–6) and `K2 = {w1..w7}` (indices 7–13) joined by eight
/// directed edges, satisfying 3-reach for `f = 2` while `v1` and `w1` are
/// connected by only `2f = 4` vertex-disjoint paths (so all-pair reliable
/// message transmission is infeasible).
///
/// The cross-edge pattern (`v_i → w_i` for `i ∈ {1,2,3,4}` and
/// `w_j → v_j` for `j ∈ {4,5,6,7}`, overlapping at index 4) is a
/// reconstruction of the figure; the claimed properties are verified
/// empirically by the `figure1` experiment binary.
#[must_use]
pub fn figure_1b() -> Digraph {
    two_cliques_bridged(7, &[(0, 0), (1, 1), (2, 2), (3, 3)], &[(3, 3), (4, 4), (5, 5), (6, 6)])
}

/// Two `k`-cliques `K1` (indices `0..k`) and `K2` (indices `k..2k`)
/// with directed bridges: `forward` entries `(i, j)` add `v_i → w_j`,
/// `backward` entries `(i, j)` add `w_i → v_j`.
///
/// This is the family behind Figure 1(b); scaled-down instances
/// (e.g. `k = 4`, `f = 1`) keep the same structure while remaining small
/// enough to run the full BW protocol on.
///
/// # Panics
///
/// Panics if `2k > MAX_NODES` or an index is out of `0..k`.
#[must_use]
pub fn two_cliques_bridged(
    k: usize,
    forward: &[(usize, usize)],
    backward: &[(usize, usize)],
) -> Digraph {
    let mut g = Digraph::new(2 * k).expect("valid two-clique size");
    for a in 0..k {
        for b in 0..k {
            if a != b {
                g.add_edge(NodeId::new(a), NodeId::new(b)).expect("valid edge");
                g.add_edge(NodeId::new(k + a), NodeId::new(k + b)).expect("valid edge");
            }
        }
    }
    for &(i, j) in forward {
        assert!(i < k && j < k, "bridge index out of range");
        g.add_edge(NodeId::new(i), NodeId::new(k + j)).expect("valid edge");
    }
    for &(i, j) in backward {
        assert!(i < k && j < k, "bridge index out of range");
        g.add_edge(NodeId::new(k + i), NodeId::new(j)).expect("valid edge");
    }
    g
}

/// A scaled-down Figure 1(b): two 4-cliques with the analogous overlapping
/// bridge pattern, designed for `f = 1` (`v_i → w_i` for `i ∈ {1,2}`,
/// `w_j → v_j` for `j ∈ {2,3,4}` — overlap at index 2). Eight nodes: small
/// enough to execute the full BW protocol.
#[must_use]
pub fn figure_1b_small() -> Digraph {
    two_cliques_bridged(4, &[(0, 0), (1, 1)], &[(1, 1), (2, 2), (3, 3)])
}

/// The **`k`-circulant** digraph: node `u` has an edge to
/// `u + o (mod n)` for every offset `o` in `offsets`. Every node has
/// in-degree and out-degree `|offsets|`, so the family scales to tens of
/// thousands of nodes with constant-size neighborhoods — the workhorse of
/// the iterative scaling runs.
///
/// With power-of-two offsets (see [`circulant_pow2`]) the graph mixes
/// like a hypercube: an averaging iteration contracts the value spread
/// geometrically with a rate that degrades only logarithmically in `n`.
/// Offsets `{1, …, k}` with `k ≥ 2f + 1` give the classical
/// `(f+1, f+1)`-robust family of the W-MSR literature.
///
/// A *certified* construction — the graph bundled with a machine-checkable
/// robustness certificate — is available as
/// `dbac_conditions::robustness::certified::circulant` (that crate sits
/// above this one, so the certificate types cannot live here).
///
/// # Panics
///
/// Panics if `n > MAX_NODES`, `offsets` is empty, or an offset is `0` or
/// `≥ n` (a zero offset would be a self-loop; offsets are distinct mod
/// `n` by the same check).
#[must_use]
pub fn circulant(n: usize, offsets: &[usize]) -> Digraph {
    assert!(!offsets.is_empty(), "a circulant needs at least one offset");
    let mut g = Digraph::new(n).expect("valid circulant size");
    for &o in offsets {
        assert!(o > 0 && o < n, "offset {o} out of range 1..{n}");
        for u in 0..n {
            g.add_edge(NodeId::new(u), NodeId::new((u + o) % n)).expect("valid edge");
        }
    }
    g
}

/// The circulant on the power-of-two offsets `{1, 2, 4, …}` below `n` —
/// `⌈log₂ n⌉` offsets, so the degree (and the per-round message bill)
/// grows logarithmically while the averaging iteration keeps an
/// expander-grade spectral gap. The default topology of the 10⁴-node
/// scaling story — and since the robustness subsystem landed, it ships
/// with proof: `dbac_conditions::robustness::certified::circulant_pow2`
/// returns the graph together with a certificate (the `{1, 2}` window
/// satisfies the circulant-prefix rule at `(1, 1)`) that an O(V+E)
/// verifier re-checks in milliseconds even at `n = 10⁴`.
///
/// # Panics
///
/// Panics if `n < 2` or `n > MAX_NODES`.
#[must_use]
pub fn circulant_pow2(n: usize) -> Digraph {
    assert!(n >= 2, "need at least two nodes");
    let mut offsets = Vec::new();
    let mut o = 1usize;
    while o < n {
        offsets.push(o);
        o *= 2;
    }
    circulant(n, &offsets)
}

/// A **layered expander**: `layers` layers of `width` nodes each. Within a
/// layer, nodes form a bidirectional cycle; between consecutive layers
/// (cyclically, so the last layer feeds the first), node `i` of layer `l`
/// sends to nodes `i`, `i+1` and `i+stride` of layer `l+1`. Strongly
/// connected, constant degree, and — unlike the circulant — strongly
/// *asymmetric*: information flows forward through layers an order of
/// magnitude faster than backward, which stresses schedule-dependent
/// protocol paths that symmetric families never exercise.
///
/// The family has its own robustness composition rule (`(1, s ≤ 4)` for
/// any graph containing it as a spanning subgraph); the certified
/// constructor is
/// `dbac_conditions::robustness::certified::layered_expander`.
///
/// # Panics
///
/// Panics if `layers < 2`, `width < 3`, or `layers * width > MAX_NODES`.
#[must_use]
pub fn layered_expander(layers: usize, width: usize) -> Digraph {
    assert!(layers >= 2, "need at least two layers");
    assert!(width >= 3, "need at least three nodes per layer");
    let n = layers * width;
    let stride = (width / 2).max(2);
    let mut g = Digraph::new(n).expect("valid layered size");
    let id = |layer: usize, i: usize| NodeId::new((layer % layers) * width + i % width);
    for l in 0..layers {
        for i in 0..width {
            // Intra-layer bidirectional ring.
            g.add_edge(id(l, i), id(l, i + 1)).expect("valid edge");
            g.add_edge(id(l, i + 1), id(l, i)).expect("valid edge");
            // Forward inter-layer fan: aligned, shifted, and strided.
            for &j in &[i, i + 1, i + stride] {
                let _ = g.add_edge(id(l, i), id(l + 1, j));
            }
        }
    }
    g
}

/// Erdős–Rényi style random digraph: each ordered pair `(u, v)`, `u ≠ v`,
/// is an edge independently with probability `p`.
///
/// # Panics
///
/// Panics if `n == 0`, `n > MAX_NODES` or `p ∉ [0, 1]`.
pub fn random_digraph<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Digraph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut g = Digraph::new(n).expect("valid size");
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                g.add_edge(NodeId::new(u), NodeId::new(v)).expect("valid edge");
            }
        }
    }
    g
}

/// A random strongly connected digraph: a random Hamiltonian cycle plus
/// each remaining ordered pair independently with probability `p`.
pub fn random_strongly_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Digraph {
    assert!(n >= 2, "need at least two nodes");
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut g = random_digraph(n, p, rng);
    for i in 0..n {
        let u = order[i];
        let v = order[(i + 1) % n];
        let _ = g.add_edge(NodeId::new(u), NodeId::new(v));
    }
    g
}

/// A random *undirected* network embedded as a bidirectional digraph:
/// each unordered pair is an edge with probability `p`.
pub fn random_undirected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Digraph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut g = Digraph::new(n).expect("valid size");
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId::new(u), NodeId::new(v)).expect("valid edge");
                g.add_edge(NodeId::new(v), NodeId::new(u)).expect("valid edge");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clique_shape() {
        let g = clique(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 12);
        assert!(g.is_complete());
    }

    #[test]
    fn cycle_shapes() {
        assert_eq!(directed_cycle(5).edge_count(), 5);
        assert_eq!(bidirectional_cycle(5).edge_count(), 10);
        assert!(bidirectional_cycle(5).is_bidirectional());
    }

    #[test]
    fn path_shape() {
        let g = directed_path(4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5);
        assert!(g.is_bidirectional());
        // hub degree 4, rim degree 3 → 8 undirected edges → 16 arcs.
        assert_eq!(g.edge_count(), 16);
        assert_eq!(g.out_neighbors(NodeId::new(0)).len(), 4);
    }

    #[test]
    fn figure_1a_shape() {
        let g = figure_1a();
        assert_eq!(g.node_count(), 5);
        assert!(g.is_bidirectional());
        assert_eq!(g.edge_count(), 16); // 8 undirected edges
    }

    #[test]
    fn figure_1b_shape() {
        let g = figure_1b();
        assert_eq!(g.node_count(), 14);
        // Two K7 cliques (2 * 42 arcs) + 8 directed bridges.
        assert_eq!(g.edge_count(), 92);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(7))); // v1 -> w1
        assert!(g.has_edge(NodeId::new(10), NodeId::new(3))); // w4 -> v4
        assert!(!g.has_edge(NodeId::new(7), NodeId::new(0))); // no w1 -> v1
    }

    #[test]
    fn figure_1b_small_shape() {
        let g = figure_1b_small();
        assert_eq!(g.node_count(), 8);
        // Two K4 cliques (2 * 12) + 5 bridges.
        assert_eq!(g.edge_count(), 29);
    }

    #[test]
    fn circulant_shape_and_degrees() {
        let g = circulant(10, &[1, 3]);
        assert_eq!(g.edge_count(), 20);
        for u in 0..10 {
            assert_eq!(g.out_neighbors(NodeId::new(u)).len(), 2);
            assert_eq!(g.in_neighbors(NodeId::new(u)).len(), 2);
        }
        assert!(g.has_edge(NodeId::new(9), NodeId::new(2)), "wraps mod n");
        assert!(crate::connectivity::is_strongly_connected(&g));
    }

    #[test]
    fn circulant_pow2_degree_is_logarithmic() {
        let g = circulant_pow2(200);
        // Offsets 1, 2, 4, …, 128 → 8 offsets.
        assert_eq!(g.out_neighbors(NodeId::new(0)).len(), 8);
        assert!(crate::connectivity::is_strongly_connected(&g));
    }

    #[test]
    fn circulant_past_128_nodes() {
        // The u128-era NodeSet capped graphs at 128 nodes; the multi-word
        // set carries the same generator family past it.
        let g = circulant(200, &[1, 2, 3]);
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 600);
        assert!(g.has_edge(NodeId::new(199), NodeId::new(1)));
    }

    #[test]
    fn layered_expander_is_strongly_connected() {
        let g = layered_expander(4, 5);
        assert_eq!(g.node_count(), 20);
        assert!(crate::connectivity::is_strongly_connected(&g));
        // Constant out-degree: ring (2) + up to 3 forward fan edges.
        for u in 0..20 {
            let d = g.out_neighbors(NodeId::new(u)).len();
            assert!((4..=5).contains(&d), "node {u} degree {d}");
        }
    }

    #[test]
    fn random_digraph_determinism() {
        let mut r1 = SmallRng::seed_from_u64(7);
        let mut r2 = SmallRng::seed_from_u64(7);
        assert_eq!(random_digraph(8, 0.4, &mut r1), random_digraph(8, 0.4, &mut r2));
    }

    #[test]
    fn random_digraph_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(random_digraph(5, 0.0, &mut rng).edge_count(), 0);
        assert!(random_digraph(5, 1.0, &mut rng).is_complete());
    }

    #[test]
    fn random_strongly_connected_is_strongly_connected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            let g = random_strongly_connected(7, 0.2, &mut rng);
            assert!(crate::connectivity::is_strongly_connected(&g));
        }
    }

    #[test]
    fn random_undirected_is_bidirectional() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(random_undirected(8, 0.5, &mut rng).is_bidirectional());
    }
}
