//! Graphviz DOT export, used by the experiment binaries to render the
//! networks they analyze (e.g. the Figure 1 reconstructions).

use crate::digraph::Digraph;
use crate::nodeset::NodeSet;
use std::fmt::Write as _;

/// Renders `g` in DOT format. Nodes in `highlight` (e.g. a fault set or a
/// source component) are filled red; bidirectional edge pairs are drawn as
/// a single undirected-looking edge with `dir=both`.
#[must_use]
pub fn to_dot(g: &Digraph, name: &str, highlight: NodeSet) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {name} {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for v in g.nodes() {
        if highlight.contains(v) {
            let _ = writeln!(s, "  n{} [style=filled, fillcolor=salmon];", v.index());
        } else {
            let _ = writeln!(s, "  n{};", v.index());
        }
    }
    for (u, v) in g.edges() {
        if g.has_edge(v, u) {
            if u < v {
                let _ = writeln!(s, "  n{} -> n{} [dir=both];", u.index(), v.index());
            }
        } else {
            let _ = writeln!(s, "  n{} -> n{};", u.index(), v.index());
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn renders_nodes_edges_and_highlights() {
        let g = Digraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let dot = to_dot(&g, "g", NodeSet::singleton(NodeId::new(2)));
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("n2 [style=filled"));
        assert!(dot.contains("n0 -> n1 [dir=both];"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(!dot.contains("n1 -> n0 [dir=both];"), "pair rendered once");
    }
}
