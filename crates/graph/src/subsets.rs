//! Enumeration of bounded-size subsets.
//!
//! The paper's conditions quantify over "any `F ⊆ V` with `|F| ≤ f`" and the
//! BW algorithm runs a parallel execution per such set (Algorithm 1,
//! line 5). [`SubsetsUpTo`] enumerates exactly these sets, smallest first,
//! in a deterministic order.

use crate::node::NodeId;
use crate::nodeset::NodeSet;

/// Iterator over all subsets of a universe with size at most `k`,
/// in order of increasing size (and lexicographic within one size).
///
/// # Example
///
/// ```
/// use dbac_graph::{NodeSet, SubsetsUpTo};
///
/// let universe = NodeSet::universe(4);
/// let subsets: Vec<NodeSet> = SubsetsUpTo::new(universe, 1).collect();
/// // The empty set plus the four singletons.
/// assert_eq!(subsets.len(), 5);
/// assert_eq!(subsets[0], NodeSet::EMPTY);
/// ```
#[derive(Clone, Debug)]
pub struct SubsetsUpTo {
    elements: Vec<NodeId>,
    max_size: usize,
    current_size: usize,
    /// Indices into `elements` for the current combination; empty when the
    /// current size is 0 and we have not yet emitted the empty set.
    indices: Vec<usize>,
    started: bool,
    done: bool,
}

impl SubsetsUpTo {
    /// Creates an iterator over all subsets of `universe` of size `≤ max_size`.
    #[must_use]
    pub fn new(universe: NodeSet, max_size: usize) -> Self {
        let elements: Vec<NodeId> = universe.iter().collect();
        let max_size = max_size.min(elements.len());
        SubsetsUpTo {
            elements,
            max_size,
            current_size: 0,
            indices: Vec::new(),
            started: false,
            done: false,
        }
    }

    /// Total number of subsets this iterator will produce:
    /// `Σ_{i=0..=k} C(n, i)`.
    #[must_use]
    pub fn count_total(universe_len: usize, max_size: usize) -> u128 {
        let k = max_size.min(universe_len);
        let mut total: u128 = 0;
        for i in 0..=k {
            total += binomial(universe_len, i);
        }
        total
    }

    fn emit(&self) -> NodeSet {
        self.indices.iter().map(|&i| self.elements[i]).collect()
    }

    /// Advances `indices` to the next combination of the current size.
    /// Returns false when the current size is exhausted.
    fn advance_same_size(&mut self) -> bool {
        let n = self.elements.len();
        let k = self.indices.len();
        if k == 0 {
            return false;
        }
        let mut i = k;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                break;
            }
        }
        self.indices[i] += 1;
        for j in i + 1..k {
            self.indices[j] = self.indices[j - 1] + 1;
        }
        true
    }
}

impl Iterator for SubsetsUpTo {
    type Item = NodeSet;

    fn next(&mut self) -> Option<NodeSet> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(NodeSet::EMPTY); // size 0
        }
        // Try the next combination of the current size.
        if self.advance_same_size() {
            return Some(self.emit());
        }
        // Move to the next size.
        if self.current_size >= self.max_size {
            self.done = true;
            return None;
        }
        self.current_size += 1;
        if self.current_size > self.elements.len() {
            self.done = true;
            return None;
        }
        self.indices = (0..self.current_size).collect();
        Some(self.emit())
    }
}

/// Binomial coefficient `C(n, k)` as `u128`, saturating at `u128::MAX` if
/// an intermediate product would overflow (only conceivable near
/// `C(128, 64)`; the small fault-set sizes this crate enumerates stay far
/// below that).
#[must_use]
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        match result.checked_mul((n - i) as u128) {
            Some(prod) => result = prod / (i + 1) as u128,
            None => return u128::MAX,
        }
    }
    result
}

/// Convenience: all subsets of `universe` with `|S| ≤ max_size`, collected.
#[must_use]
pub fn subsets_up_to(universe: NodeSet, max_size: usize) -> Vec<NodeSet> {
    SubsetsUpTo::new(universe, max_size).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_all_sizes() {
        let u = NodeSet::universe(5);
        let all: Vec<NodeSet> = SubsetsUpTo::new(u, 2).collect();
        // C(5,0) + C(5,1) + C(5,2) = 1 + 5 + 10
        assert_eq!(all.len(), 16);
        assert!(all.iter().all(|s| s.len() <= 2));
        // No duplicates.
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
    }

    #[test]
    fn respects_sub_universe() {
        let u: NodeSet = [2usize, 5, 9].into_iter().map(crate::node::NodeId::new).collect();
        let all = subsets_up_to(u, 3);
        assert_eq!(all.len(), 8);
        assert!(all.iter().all(|s| s.is_subset(u)));
    }

    #[test]
    fn zero_max_size_gives_only_empty() {
        let all = subsets_up_to(NodeSet::universe(6), 0);
        assert_eq!(all, vec![NodeSet::EMPTY]);
    }

    #[test]
    fn empty_universe() {
        let all = subsets_up_to(NodeSet::EMPTY, 3);
        assert_eq!(all, vec![NodeSet::EMPTY]);
    }

    #[test]
    fn count_total_matches_enumeration() {
        for n in 0..7 {
            for k in 0..4 {
                let u = NodeSet::universe(n);
                let got = SubsetsUpTo::new(u, k).count() as u128;
                assert_eq!(got, SubsetsUpTo::count_total(n, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(14, 2), 91);
        assert_eq!(binomial(7, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert!(binomial(128, 64) > 0);
    }

    #[test]
    fn sizes_are_non_decreasing() {
        let sizes: Vec<usize> =
            SubsetsUpTo::new(NodeSet::universe(6), 3).map(|s| s.len()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
