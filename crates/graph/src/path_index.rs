//! Path interning: dense [`PathId`]s over a precomputed path population.
//!
//! # Why intern
//!
//! Algorithm BW's cost is dominated by path-indexed work: RedundantFlood
//! propagates a value along *every* redundant path, and FIFO reception
//! tracks one ordered channel per `(initiator, simple path)` pair. The path
//! population is enumerated **once** per topology at startup — yet a naïve
//! implementation keeps cloning and hashing owned `Path(Vec<NodeId>)`
//! values per message, per hop. Interning replaces every hot-path `Path` by
//! a `u32` [`PathId`] into a [`PathIndex`] that precomputes, per path:
//!
//! * its [`NodeSet`] bitmask — `intersects` / `is_within` become a handful
//!   of word-wise ANDs;
//! * `init` / `ter` endpoints and simple/trivial classification;
//! * a forwarding table `extend: PathId × NodeId → Option<PathId>`, so
//!   "does `p‖w` stay admissible, and which path is it?" is one array
//!   lookup instead of clone + `extended()` + `is_simple()` re-scan.
//!
//! The index also exposes the *transposed* view: per node `v`, `u64`
//! bitmaps over the whole id space marking the paths that contain `v`
//! ([`PathIndex::member_words`]), start at `v` ([`PathIndex::init_words`])
//! or end at `v` ([`PathIndex::terminal_words`]). A columnar message set
//! whose presence bitmap shares this id-indexed layout turns the paper's
//! set algebra — exclusion `M|_Ā`, fullness for `(A, v)` — into
//! word-at-a-time AND/ANDNOT/popcount scans over these masks.
//!
//! # Trust boundary: Byzantine-supplied paths
//!
//! Interning is an *optimization*, not an assumption. Honest nodes only
//! ever produce interned paths (they start from trivial paths and extend
//! through the table), but a Byzantine sender controls every bit it sends,
//! so wire messages may carry ids that intern nothing. Receivers therefore
//! **resolve** incoming references at the validation boundary —
//! [`PathIndex::contains_id`] for id-carrying wires, [`PathIndex::resolve`]
//! for explicit node sequences (adversary forging, serde ingress, debug
//! tooling) — and drop anything unknown, exactly as the paper's model lets
//! a receiver drop provably forged messages. Every id accepted past
//! validation refers to a path that was enumerated from the real graph, so
//! downstream code may use the precomputed metadata without re-checking
//! path validity.
//!
//! # Population and closure
//!
//! The index is built from per-terminal enumerations (redundant paths in
//! the paper's flood mode, simple paths in the ablation). Because the
//! population contains *every* admissible path of its class, the class is
//! closed under admissible extension: `extend` returns `Some` **iff** the
//! extension is again in the population. Flood-mode admissibility checks
//! thus collapse into table membership.

use crate::digraph::Digraph;
use crate::fasthash::{FastHashMap, FastHasher};
use crate::node::NodeId;
use crate::nodeset::NodeSet;
use crate::paths::Path;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hasher;

/// Dense identifier of an interned path.
///
/// Ids are assigned in deterministic order (terminal-major, enumeration
/// order within a terminal), so all nodes sharing a topology agree on the
/// numbering and ids are valid on the wire.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PathId(u32);

impl PathId {
    /// Reconstructs an id from its raw wire representation. The result is
    /// **unvalidated**: check [`PathIndex::contains_id`] before trusting it.
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        PathId(raw)
    }

    /// The raw wire representation.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The id as a dense array index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Sentinel for "no interned extension" in the flat forwarding table.
const NO_EXT: u32 = u32::MAX;

/// Content hash of a node sequence, for the hash-keyed resolution map.
fn seq_hash(nodes: &[NodeId]) -> u64 {
    let mut h = FastHasher::default();
    for &v in nodes {
        h.write_u32(v.index() as u32);
    }
    h.write_usize(nodes.len());
    h.finish()
}

fn path_hash(path: &Path) -> u64 {
    seq_hash(path.nodes())
}

/// An immutable intern table over a graph's enumerated path population.
#[derive(Debug)]
pub struct PathIndex {
    /// Out-neighborhoods of the graph, for extension-rank computation.
    out: Vec<NodeSet>,
    /// id → owned path (wire egress, debug, DOT output).
    paths: Vec<Path>,
    /// id → the path's node-set bitmask.
    node_sets: Vec<NodeSet>,
    /// id → `init(p)`.
    inits: Vec<NodeId>,
    /// id → `ter(p)`.
    ters: Vec<NodeId>,
    /// id → number of node occurrences (trivial paths have 1).
    lens: Vec<u32>,
    /// id → whether the path is simple.
    simple: Vec<bool>,
    /// node → id of the trivial path `⟨v⟩`.
    trivial: Vec<PathId>,
    /// terminal → ids of all interned paths ending there.
    by_terminal: Vec<Vec<PathId>>,
    /// terminal → ids of the *simple* interned paths ending there.
    simple_by_terminal: Vec<Vec<PathId>>,
    /// Resolution map for explicit node sequences (validation boundary):
    /// content hash → candidate ids, verified against `paths` on lookup.
    /// Keying by hash instead of by owned `Path` halves the index's
    /// dominant allocation (the population is stored once, in `paths`).
    ids: FastHashMap<u64, Vec<PathId>>,
    /// id → offset into `ext_entries`.
    ext_offsets: Vec<u32>,
    /// Flat forwarding table: for each id, one entry per out-neighbor of
    /// its terminal (ascending node order); `NO_EXT` if `p‖w` is not
    /// interned.
    ext_entries: Vec<u32>,
    /// Number of `u64` words covering the id space (`ceil(len / 64)`).
    word_count: usize,
    /// node → bitmap over ids: paths whose node set contains the node.
    member_words: Vec<Vec<u64>>,
    /// node → bitmap over ids: paths starting at the node.
    init_words: Vec<Vec<u64>>,
    /// node → bitmap over ids: paths ending at the node.
    terminal_words: Vec<Vec<u64>>,
}

impl PathIndex {
    /// Interns the given per-terminal path population over `graph`.
    ///
    /// `pools[v]` must list paths ending at node `v` that are valid in
    /// `graph`; duplicates are tolerated (first occurrence wins). The
    /// trivial path `⟨v⟩` is interned for every node even if a pool omits
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if a pooled path does not end at its pool's terminal, is
    /// invalid in `graph`, or if the population exceeds `u32::MAX` paths.
    #[must_use]
    pub fn build(graph: &Digraph, pools: &[Vec<Path>]) -> Self {
        let n = graph.node_count();
        assert_eq!(pools.len(), n, "one pool per node required");

        let mut ids: FastHashMap<u64, Vec<PathId>> = FastHashMap::default();
        let mut paths: Vec<Path> = Vec::new();
        let mut by_terminal: Vec<Vec<PathId>> = vec![Vec::new(); n];
        let mut trivial = Vec::with_capacity(n);

        let mut intern = |path: Path, paths: &mut Vec<Path>| -> PathId {
            let bucket = ids.entry(path_hash(&path)).or_default();
            if let Some(&id) = bucket.iter().find(|&&id| paths[id.index()] == path) {
                return id;
            }
            let raw = u32::try_from(paths.len()).expect("path population exceeds u32 ids");
            assert_ne!(raw, NO_EXT, "path population exceeds u32 ids");
            let id = PathId(raw);
            bucket.push(id);
            paths.push(path);
            id
        };

        for (v, pool) in pools.iter().enumerate() {
            let v = NodeId::new(v);
            let before = paths.len();
            let tid = intern(Path::single(v), &mut paths);
            if paths.len() > before {
                by_terminal[v.index()].push(tid);
            }
            trivial.push(tid);
            for path in pool {
                assert_eq!(path.ter(), v, "pooled path must end at its terminal");
                assert!(path.is_valid_in(graph), "pooled path invalid in graph");
                let before = paths.len();
                let id = intern(path.clone(), &mut paths);
                if paths.len() > before {
                    by_terminal[v.index()].push(id);
                }
            }
        }

        let node_sets: Vec<NodeSet> = paths.iter().map(Path::node_set).collect();
        let inits: Vec<NodeId> = paths.iter().map(Path::init).collect();
        let ters: Vec<NodeId> = paths.iter().map(Path::ter).collect();
        let lens: Vec<u32> = paths.iter().map(|p| p.node_count() as u32).collect();
        let simple: Vec<bool> = paths.iter().map(Path::is_simple).collect();
        let simple_by_terminal: Vec<Vec<PathId>> = by_terminal
            .iter()
            .map(|pool| pool.iter().copied().filter(|id| simple[id.index()]).collect())
            .collect();

        let out: Vec<NodeSet> = (0..n).map(|v| graph.out_neighbors(NodeId::new(v))).collect();
        let mut ext_offsets = Vec::with_capacity(paths.len());
        let mut total = 0usize;
        for &t in &ters {
            ext_offsets.push(u32::try_from(total).expect("extension table overflow"));
            total += out[t.index()].len();
        }
        // Fill by prefix registration: every non-trivial interned path is
        // the extension of its one-step prefix, and path classes are
        // prefix-closed (dropping the last node keeps a path simple resp.
        // redundant), so the prefix is always interned. One slice hash per
        // path — no temporary extended paths, no per-neighbor misses.
        let mut ext_entries = vec![NO_EXT; total];
        for (id, path) in paths.iter().enumerate() {
            let nodes = path.nodes();
            let Some((&last, prefix)) = nodes.split_last() else { unreachable!("non-empty") };
            if prefix.is_empty() {
                continue; // trivial paths extend others, nothing precedes them
            }
            let pid = ids
                .get(&seq_hash(prefix))
                .and_then(|bucket| {
                    bucket.iter().copied().find(|&c| paths[c.index()].nodes() == prefix)
                })
                .expect("one-step prefix of an interned path is interned");
            let neighbors = out[prefix.last().expect("non-empty prefix").index()];
            debug_assert!(neighbors.contains(last), "pooled path uses a non-edge");
            let rank = neighbors.rank_below(last);
            ext_entries[ext_offsets[pid.index()] as usize + rank] = id as u32;
        }

        // Transposed per-node masks over the id space, for columnar scans.
        let word_count = paths.len().div_ceil(64);
        let mut member_words = vec![vec![0u64; word_count]; n];
        let mut init_words = vec![vec![0u64; word_count]; n];
        let mut terminal_words = vec![vec![0u64; word_count]; n];
        for id in 0..paths.len() {
            let (word, bit) = (id / 64, 1u64 << (id % 64));
            for v in node_sets[id].iter() {
                member_words[v.index()][word] |= bit;
            }
            init_words[inits[id].index()][word] |= bit;
            terminal_words[ters[id].index()][word] |= bit;
        }

        PathIndex {
            out,
            paths,
            node_sets,
            inits,
            ters,
            lens,
            simple,
            trivial,
            by_terminal,
            simple_by_terminal,
            ids,
            ext_offsets,
            ext_entries,
            word_count,
            member_words,
            init_words,
            terminal_words,
        }
    }

    /// Number of interned paths.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if nothing is interned (never happens for a built
    /// index: trivial paths are always present).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Returns `true` if `id` refers to an interned path. This is the
    /// validation gate for ids arriving on the wire.
    #[must_use]
    pub fn contains_id(&self, id: PathId) -> bool {
        id.index() < self.paths.len()
    }

    /// Resolves an explicit node sequence to its id, or `None` for paths
    /// outside the population (forged, malformed, or simply inadmissible).
    #[must_use]
    pub fn resolve(&self, path: &Path) -> Option<PathId> {
        self.ids.get(&path_hash(path))?.iter().copied().find(|&id| &self.paths[id.index()] == path)
    }

    /// The interned path (for wire egress, debugging, DOT output).
    #[must_use]
    pub fn path(&self, id: PathId) -> &Path {
        &self.paths[id.index()]
    }

    /// The path's node-set bitmask.
    #[must_use]
    pub fn node_set(&self, id: PathId) -> NodeSet {
        self.node_sets[id.index()]
    }

    /// `init(p)` — the path's first node.
    #[must_use]
    pub fn init(&self, id: PathId) -> NodeId {
        self.inits[id.index()]
    }

    /// `ter(p)` — the path's last node.
    #[must_use]
    pub fn ter(&self, id: PathId) -> NodeId {
        self.ters[id.index()]
    }

    /// Number of node occurrences (with repetition).
    #[must_use]
    pub fn node_count(&self, id: PathId) -> usize {
        self.lens[id.index()] as usize
    }

    /// Returns `true` for a simple path.
    #[must_use]
    pub fn is_simple(&self, id: PathId) -> bool {
        self.simple[id.index()]
    }

    /// Returns `true` for a trivial single-node path `⟨v⟩`.
    #[must_use]
    pub fn is_trivial(&self, id: PathId) -> bool {
        self.lens[id.index()] == 1
    }

    /// The id of the trivial path `⟨v⟩`.
    #[must_use]
    pub fn trivial(&self, v: NodeId) -> PathId {
        self.trivial[v.index()]
    }

    /// Returns `true` if the path shares a node with `set` — `C ∩ p ≠ ∅`
    /// as one AND.
    #[must_use]
    pub fn intersects(&self, id: PathId, set: NodeSet) -> bool {
        !self.node_sets[id.index()].is_disjoint(set)
    }

    /// Returns `true` if the path lies entirely inside `allowed` — `p ⊆ C`
    /// as one AND.
    #[must_use]
    pub fn is_within(&self, id: PathId, allowed: NodeSet) -> bool {
        self.node_sets[id.index()].is_subset(allowed)
    }

    /// All interned paths ending at `v`, in id order.
    #[must_use]
    pub fn paths_ending_at(&self, v: NodeId) -> &[PathId] {
        &self.by_terminal[v.index()]
    }

    /// The simple interned paths ending at `v`, in id order.
    #[must_use]
    pub fn simple_paths_ending_at(&self, v: NodeId) -> &[PathId] {
        &self.simple_by_terminal[v.index()]
    }

    /// The forwarding table: the id of `p‖w`, or `None` when the extension
    /// leaves the population (inadmissible) or `(ter(p), w)` is not an
    /// edge. One rank computation and one array load.
    #[must_use]
    pub fn extend(&self, id: PathId, w: NodeId) -> Option<PathId> {
        let t = self.ters[id.index()];
        let neighbors = self.out[t.index()];
        if !neighbors.contains(w) {
            return None;
        }
        let rank = neighbors.rank_below(w);
        let entry = self.ext_entries[self.ext_offsets[id.index()] as usize + rank];
        (entry != NO_EXT).then_some(PathId(entry))
    }

    /// Like [`PathIndex::extend`], additionally requiring the extension to
    /// be simple (the FIFO-flood discipline for `COMPLETE` messages).
    #[must_use]
    pub fn extend_simple(&self, id: PathId, w: NodeId) -> Option<PathId> {
        self.extend(id, w).filter(|&ext| self.simple[ext.index()])
    }

    /// Number of `u64` words covering the id space (`ceil(len / 64)`).
    /// All per-node masks below have exactly this length.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.word_count
    }

    /// Bitmap over ids (bit `i` of word `i / 64`): paths containing `v`.
    /// ANDNOT against a presence bitmap is the exclusion `M|_{v̄}` scan.
    #[must_use]
    pub fn member_words(&self, v: NodeId) -> &[u64] {
        &self.member_words[v.index()]
    }

    /// Bitmap over ids: paths with `init(p) = v`. AND against a presence
    /// bitmap finds the messages reported by initiator `v`.
    #[must_use]
    pub fn init_words(&self, v: NodeId) -> &[u64] {
        &self.init_words[v.index()]
    }

    /// Bitmap over ids: paths with `ter(p) = v` — the fullness requirement
    /// pool for terminal `v` in mask form.
    #[must_use]
    pub fn terminal_words(&self, v: NodeId) -> &[u64] {
        &self.terminal_words[v.index()]
    }

    /// The word at `word` of the union mask `⋃_{a ∈ set} member_words(a)`:
    /// the ids whose path meets `set`, one word at a time. This is the
    /// kernel of the columnar exclusion and fullness scans.
    #[must_use]
    pub fn excluded_word(&self, set: NodeSet, word: usize) -> u64 {
        set.iter().fold(0u64, |acc, a| acc | self.member_words[a.index()][word])
    }

    /// The fullness-requirement census for `(a, v)`: how many pool paths
    /// end at `v` and avoid `a` — `popcount(terminal ∧ ¬excluded)` word at
    /// a time. The single source of truth for every per-guess requirement
    /// counter (BW witness threads, crash-protocol rounds).
    #[must_use]
    pub fn required_count(&self, a: NodeSet, v: NodeId) -> usize {
        let terminal = &self.terminal_words[v.index()];
        (0..self.word_count)
            .map(|w| (terminal[w] & !self.excluded_word(a, w)).count_ones() as usize)
            .sum()
    }

    /// The word range of the id space covering every interned path ending
    /// at `v`. Ids are assigned terminal-major, so a terminal's pool is a
    /// contiguous id block; scans that pair a per-terminal mask with a
    /// presence column only need to walk these words, not the whole id
    /// space. Never empty: the trivial path `⟨v⟩` is always interned.
    #[must_use]
    pub fn terminal_word_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let pool = &self.by_terminal[v.index()];
        let first = pool.first().expect("trivial path always interned").index();
        let last = pool.last().expect("trivial path always interned").index();
        debug_assert!(
            pool.len() == last - first + 1,
            "terminal-major id assignment keeps a pool contiguous"
        );
        (first / 64)..(last / 64 + 1)
    }

    /// Materializes the per-guess avoiding mask for `(set, v)` over a word
    /// range: `terminal_words(v) ∧ ¬⋃_{a ∈ set} member_words(a)`, i.e. the
    /// pool paths ending at `v` that avoid `set`, in word form. This is the
    /// mask a witness thread probes per flood arrival (one load + AND
    /// replaces a per-path `NodeSet` disjointness test) and scans for its
    /// Maximal-Consistency census; `popcount` of the result equals
    /// [`PathIndex::required_count`].
    #[must_use]
    pub fn avoiding_words(
        &self,
        set: NodeSet,
        v: NodeId,
        words: std::ops::Range<usize>,
    ) -> Vec<u64> {
        let terminal = &self.terminal_words[v.index()];
        words.map(|w| terminal[w] & !self.excluded_word(set, w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::paths::{redundant_paths_ending_at, simple_paths_ending_at, PathBudget};

    /// Two bridged K3s: directed, non-complete, population small enough
    /// to check exhaustively in debug builds (the full figure-1b(small)
    /// population is ~4·10⁵ paths).
    fn small_bridged() -> Digraph {
        generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)])
    }

    fn build(graph: &Digraph) -> PathIndex {
        let pools: Vec<Vec<Path>> = graph
            .nodes()
            .map(|v| {
                redundant_paths_ending_at(graph, v, NodeSet::EMPTY, PathBudget::default()).unwrap()
            })
            .collect();
        PathIndex::build(graph, &pools)
    }

    #[test]
    fn round_trip_over_full_population() {
        for graph in [generators::clique(4), small_bridged()] {
            let index = build(&graph);
            assert!(!index.is_empty());
            // Path -> id -> Path is the identity over everything interned,
            // and the metadata matches the owned path's own answers.
            for raw in 0..index.len() as u32 {
                let id = PathId::from_raw(raw);
                assert!(index.contains_id(id));
                let path = index.path(id).clone();
                assert_eq!(index.resolve(&path), Some(id), "{path}");
                assert_eq!(index.node_set(id), path.node_set());
                assert_eq!(index.init(id), path.init());
                assert_eq!(index.ter(id), path.ter());
                assert_eq!(index.node_count(id), path.node_count());
                assert_eq!(index.is_simple(id), path.is_simple());
                assert_eq!(index.is_trivial(id), path.is_empty());
                assert!(path.is_valid_in(&graph));
            }
            // Every enumerated path is present, with no duplicates.
            for v in graph.nodes() {
                let direct =
                    redundant_paths_ending_at(&graph, v, NodeSet::EMPTY, PathBudget::default())
                        .unwrap();
                assert_eq!(direct.len(), index.paths_ending_at(v).len());
                for p in &direct {
                    let id = index.resolve(p).expect("enumerated path interned");
                    assert!(index.paths_ending_at(v).contains(&id));
                }
                let simple =
                    simple_paths_ending_at(&graph, v, NodeSet::EMPTY, PathBudget::default())
                        .unwrap();
                assert_eq!(simple.len(), index.simple_paths_ending_at(v).len());
            }
        }
    }

    #[test]
    fn extend_table_agrees_with_owned_path_extension() {
        for graph in [generators::clique(4), small_bridged()] {
            let index = build(&graph);
            for raw in 0..index.len() as u32 {
                let id = PathId::from_raw(raw);
                let path = index.path(id).clone();
                for w in graph.nodes() {
                    let expected = if graph.has_edge(path.ter(), w) {
                        path.extended(w).ok().filter(|e| e.is_redundant())
                    } else {
                        None
                    };
                    let got = index.extend(id, w).map(|e| index.path(e).clone());
                    assert_eq!(got, expected, "extend({path}, {w})");
                    // extend_simple additionally demands simplicity.
                    let got_simple = index.extend_simple(id, w).map(|e| index.path(e).clone());
                    assert_eq!(got_simple, expected.filter(Path::is_simple));
                }
            }
        }
    }

    #[test]
    fn unknown_and_forged_paths_resolve_to_none() {
        let graph = small_bridged();
        let index = build(&graph);
        // An id past the population is rejected, not a panic.
        assert!(!index.contains_id(PathId::from_raw(index.len() as u32)));
        assert!(!index.contains_id(PathId::from_raw(u32::MAX)));
        // A sequence using a non-edge (w1 -> v1 is absent: only v1 -> w1).
        let forged = Path::from_indices(&[3, 0]).unwrap();
        assert!(!forged.is_valid_in(&graph));
        assert_eq!(index.resolve(&forged), None);
        // A non-redundant sequence over real edges.
        let non_redundant = Path::from_indices(&[0, 1, 0, 1, 0, 1]).unwrap();
        assert!(non_redundant.is_valid_in(&graph) && !non_redundant.is_redundant());
        assert_eq!(index.resolve(&non_redundant), None);
    }

    #[test]
    fn trivial_paths_always_interned() {
        let graph = generators::directed_path(4); // sparse: tiny pools
        let pools: Vec<Vec<Path>> = graph
            .nodes()
            .map(|v| {
                simple_paths_ending_at(&graph, v, NodeSet::EMPTY, PathBudget::default()).unwrap()
            })
            .collect();
        let index = PathIndex::build(&graph, &pools);
        for v in graph.nodes() {
            let t = index.trivial(v);
            assert!(index.is_trivial(t));
            assert_eq!(index.init(t), v);
            assert_eq!(index.ter(t), v);
        }
    }

    #[test]
    fn per_node_word_masks_transpose_the_metadata() {
        for graph in [generators::clique(4), small_bridged()] {
            let index = build(&graph);
            assert_eq!(index.word_count(), index.len().div_ceil(64));
            for v in graph.nodes() {
                let member = index.member_words(v);
                let init = index.init_words(v);
                let terminal = index.terminal_words(v);
                assert_eq!(member.len(), index.word_count());
                assert_eq!(init.len(), index.word_count());
                assert_eq!(terminal.len(), index.word_count());
                for raw in 0..index.len() as u32 {
                    let id = PathId::from_raw(raw);
                    let (w, b) = (id.index() / 64, 1u64 << (id.index() % 64));
                    assert_eq!(member[w] & b != 0, index.node_set(id).contains(v), "{id} ∋ {v}");
                    assert_eq!(init[w] & b != 0, index.init(id) == v);
                    assert_eq!(terminal[w] & b != 0, index.ter(id) == v);
                }
                // No mask bit past the population.
                for (w, &word) in member.iter().enumerate() {
                    let valid = if (w + 1) * 64 <= index.len() {
                        u64::MAX
                    } else {
                        (1u64 << (index.len() % 64)) - 1
                    };
                    assert_eq!(word & !valid, 0, "ghost bits in word {w}");
                }
            }
        }
    }

    #[test]
    fn required_count_matches_pool_filter() {
        for graph in [generators::clique(4), small_bridged()] {
            let index = build(&graph);
            let sets = [
                NodeSet::EMPTY,
                NodeSet::singleton(NodeId::new(1)),
                [NodeId::new(0), NodeId::new(2)].into_iter().collect(),
            ];
            for v in graph.nodes() {
                for &a in &sets {
                    let direct = index
                        .paths_ending_at(v)
                        .iter()
                        .filter(|&&p| !index.intersects(p, a))
                        .count();
                    assert_eq!(index.required_count(a, v), direct, "census({a:?}, {v})");
                }
            }
        }
    }

    #[test]
    fn terminal_word_range_covers_exactly_the_pool() {
        for graph in [generators::clique(4), small_bridged()] {
            let index = build(&graph);
            for v in graph.nodes() {
                let words = index.terminal_word_range(v);
                assert!(!words.is_empty());
                for raw in 0..index.len() as u32 {
                    let id = PathId::from_raw(raw);
                    if index.ter(id) == v {
                        assert!(words.contains(&(id.index() / 64)), "{id} outside range of {v}");
                    }
                }
                // The range is tight: its boundary words carry pool bits.
                let terminal = index.terminal_words(v);
                assert_ne!(terminal[words.start], 0);
                assert_ne!(terminal[words.end - 1], 0);
            }
        }
    }

    #[test]
    fn avoiding_words_match_the_filtered_pool() {
        for graph in [generators::clique(4), small_bridged()] {
            let index = build(&graph);
            let sets = [
                NodeSet::EMPTY,
                NodeSet::singleton(NodeId::new(1)),
                [NodeId::new(0), NodeId::new(2)].into_iter().collect(),
            ];
            for v in graph.nodes() {
                let words = index.terminal_word_range(v);
                for &a in &sets {
                    let mask = index.avoiding_words(a, v, words.clone());
                    assert_eq!(mask.len(), words.len());
                    let count: usize = mask.iter().map(|w| w.count_ones() as usize).sum();
                    assert_eq!(count, index.required_count(a, v), "census({a:?}, {v})");
                    for (w, &word) in mask.iter().enumerate() {
                        for b in 0..64 {
                            let id = PathId::from_raw(((words.start + w) * 64 + b) as u32);
                            let expected = index.contains_id(id)
                                && index.ter(id) == v
                                && !index.intersects(id, a);
                            assert_eq!(word & (1 << b) != 0, expected, "{id} in mask({a:?}, {v})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn excluded_word_is_the_member_union() {
        let graph = small_bridged();
        let index = build(&graph);
        let set: NodeSet = [NodeId::new(0), NodeId::new(4)].into_iter().collect();
        for w in 0..index.word_count() {
            let expected =
                index.member_words(NodeId::new(0))[w] | index.member_words(NodeId::new(4))[w];
            assert_eq!(index.excluded_word(set, w), expected);
            assert_eq!(index.excluded_word(NodeSet::EMPTY, w), 0);
        }
    }

    #[test]
    fn bitmask_operations_match_path_semantics() {
        let graph = generators::clique(4);
        let index = build(&graph);
        let set: NodeSet = [NodeId::new(1), NodeId::new(3)].into_iter().collect();
        for raw in 0..index.len() as u32 {
            let id = PathId::from_raw(raw);
            let path = index.path(id);
            assert_eq!(index.intersects(id, set), path.intersects(set));
            assert_eq!(index.is_within(id, set), path.is_within(set));
        }
    }
}
