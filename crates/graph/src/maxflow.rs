//! Maximum vertex-disjoint directed paths (Menger's theorem via unit-capacity
//! max-flow with node splitting).
//!
//! The paper uses vertex-disjoint path counts in two places:
//!
//! * the propagation relation `A ⇝_C B` (Definition 10) requires `f + 1`
//!   node-disjoint `(A, b)`-paths for every `b ∈ B`;
//! * the Figure 1(b) discussion observes that `v1` and `w1` are connected by
//!   only `2f = 4` disjoint paths, so all-pair reliable message transmission
//!   is infeasible even though consensus is possible.

use crate::digraph::Digraph;
use crate::node::NodeId;
use crate::nodeset::NodeSet;

/// Maximum number of internally-vertex-disjoint directed paths from `s` to
/// `t` (`s ≠ t`). Paths share only their endpoints; a direct edge `s → t`
/// counts as one path.
///
/// # Example
///
/// ```
/// use dbac_graph::{generators, maxflow, NodeId};
///
/// // In K5 there are 4 disjoint paths between any ordered pair.
/// let g = generators::clique(5);
/// let k = maxflow::max_vertex_disjoint_paths(&g, NodeId::new(0), NodeId::new(1));
/// assert_eq!(k, 4);
/// ```
#[must_use]
pub fn max_vertex_disjoint_paths(g: &Digraph, s: NodeId, t: NodeId) -> usize {
    assert_ne!(s, t, "disjoint paths are defined for distinct endpoints");
    let mut net = SplitNetwork::new(g, NodeSet::EMPTY);
    net.uncap_node(s);
    net.uncap_node(t);
    net.max_flow(SplitNetwork::out_of(s), SplitNetwork::into(t))
}

/// Maximum number of *node-disjoint* `(A, t)`-paths inside the subgraph
/// induced by `within` — the quantity bounded in Definition 10. Paths are
/// pairwise disjoint including their initial nodes (each node of `A` starts
/// at most one path); they share only the terminal `t`.
///
/// Returns 0 if `t ∉ within` or `A ∩ within = ∅`.
#[must_use]
pub fn max_disjoint_paths_from_set(g: &Digraph, a: NodeSet, t: NodeId, within: NodeSet) -> usize {
    if !within.contains(t) {
        return 0;
    }
    let a = (a & within) - NodeSet::singleton(t);
    if a.is_empty() {
        return 0;
    }
    let forbidden = within.complement_in(g.node_count());
    let mut net = SplitNetwork::new(g, forbidden);
    net.uncap_node(t);
    // Super-source feeding every a ∈ A through its (unit) node capacity.
    let super_source = net.add_node();
    for v in a.iter() {
        net.add_arc(super_source, SplitNetwork::into(v), 1);
    }
    net.max_flow(super_source, SplitNetwork::into(t))
}

/// Unit-capacity flow network with each graph node split into
/// `in`/`out` halves connected by a capacity-1 arc.
struct SplitNetwork {
    /// cap[u][v]: residual capacity of arc u -> v.
    cap: Vec<Vec<u32>>,
    /// adjacency (forward + backward arcs share the list).
    adj: Vec<Vec<usize>>,
}

impl SplitNetwork {
    fn into(v: NodeId) -> usize {
        2 * v.index()
    }

    fn out_of(v: NodeId) -> usize {
        2 * v.index() + 1
    }

    fn new(g: &Digraph, forbidden: NodeSet) -> Self {
        let n = g.node_count();
        let size = 2 * n;
        let mut net = SplitNetwork {
            cap: vec![vec![0; size + 2]; size + 2],
            adj: vec![Vec::new(); size + 2],
        };
        for v in g.nodes() {
            if forbidden.contains(v) {
                continue;
            }
            net.add_arc(Self::into(v), Self::out_of(v), 1);
        }
        for (u, v) in g.edges() {
            if forbidden.contains(u) || forbidden.contains(v) {
                continue;
            }
            net.add_arc(Self::out_of(u), Self::into(v), 1);
        }
        net
    }

    /// Lifts the unit capacity of `v`'s split arc (used for path endpoints,
    /// which may be shared by all paths).
    fn uncap_node(&mut self, v: NodeId) {
        self.cap[Self::into(v)][Self::out_of(v)] = u32::MAX / 2;
    }

    fn add_node(&mut self) -> usize {
        // The constructor pre-allocated two spare slots.
        self.adj.len() - 2
    }

    fn add_arc(&mut self, u: usize, v: usize, c: u32) {
        if self.cap[u][v] == 0 && self.cap[v][u] == 0 {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
        self.cap[u][v] = self.cap[u][v].saturating_add(c);
    }

    /// Edmonds–Karp; unit capacities make each augmentation add one path.
    fn max_flow(&mut self, s: usize, t: usize) -> usize {
        let mut flow = 0;
        loop {
            let n = self.adj.len();
            let mut parent = vec![usize::MAX; n];
            parent[s] = s;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            'bfs: while let Some(u) = queue.pop_front() {
                for &v in &self.adj[u] {
                    if parent[v] == usize::MAX && self.cap[u][v] > 0 {
                        parent[v] = u;
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if parent[t] == usize::MAX {
                return flow;
            }
            // Unit augmentation along the BFS path.
            let mut v = t;
            while v != s {
                let u = parent[v];
                self.cap[u][v] -= 1;
                self.cap[v][u] += 1;
                v = u;
            }
            flow += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn clique_disjoint_paths() {
        for n in 3..7 {
            let g = generators::clique(n);
            assert_eq!(max_vertex_disjoint_paths(&g, id(0), id(1)), n - 1);
        }
    }

    #[test]
    fn single_path_graph() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(max_vertex_disjoint_paths(&g, id(0), id(3)), 1);
        assert_eq!(max_vertex_disjoint_paths(&g, id(3), id(0)), 0);
    }

    #[test]
    fn diamond_has_two() {
        let g = Digraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        assert_eq!(max_vertex_disjoint_paths(&g, id(0), id(3)), 2);
    }

    #[test]
    fn direct_edge_plus_detour() {
        // s -> t directly plus s -> a -> t: 2 internally disjoint paths.
        let g = Digraph::from_edges(3, &[(0, 2), (0, 1), (1, 2)]).unwrap();
        assert_eq!(max_vertex_disjoint_paths(&g, id(0), id(2)), 2);
    }

    #[test]
    fn bottleneck_node_limits_flow() {
        // Two routes that both pass through node 1.
        let g = Digraph::from_edges(5, &[(0, 1), (1, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
        assert_eq!(max_vertex_disjoint_paths(&g, id(0), id(4)), 1);
    }

    #[test]
    fn figure_1b_has_exactly_2f_disjoint_paths() {
        // The paper's headline observation: v1 -> w1 only 4 = 2f disjoint paths.
        let g = generators::figure_1b();
        assert_eq!(max_vertex_disjoint_paths(&g, id(0), id(7)), 4);
        assert_eq!(max_vertex_disjoint_paths(&g, id(7), id(0)), 4);
        // Within a clique it is still 6.
        assert_eq!(max_vertex_disjoint_paths(&g, id(0), id(1)), 6);
    }

    #[test]
    fn from_set_counts_distinct_sources() {
        // a0 -> t, a1 -> t: two disjoint (A,t)-paths.
        let g = Digraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let a: NodeSet = [id(0), id(1)].into_iter().collect();
        assert_eq!(max_disjoint_paths_from_set(&g, a, id(2), g.vertex_set()), 2);
    }

    #[test]
    fn from_set_respects_within() {
        // a0 -> m -> t and a1 -> m -> t share m; only 1 path. Removing m
        // from `within` gives 0.
        let g = Digraph::from_edges(4, &[(0, 2), (1, 2), (2, 3)]).unwrap();
        let a: NodeSet = [id(0), id(1)].into_iter().collect();
        assert_eq!(max_disjoint_paths_from_set(&g, a, id(3), g.vertex_set()), 1);
        let without_m = g.vertex_set() - NodeSet::singleton(id(2));
        assert_eq!(max_disjoint_paths_from_set(&g, a, id(3), without_m), 0);
    }

    #[test]
    fn from_set_with_target_in_set() {
        let g = generators::clique(4);
        let a: NodeSet = [id(0), id(1), id(3)].into_iter().collect();
        // t=3 excluded from sources; 0 and 1 give two disjoint paths.
        assert_eq!(max_disjoint_paths_from_set(&g, a, id(3), g.vertex_set()), 2);
    }

    #[test]
    fn from_set_empty_cases() {
        let g = generators::clique(3);
        assert_eq!(max_disjoint_paths_from_set(&g, NodeSet::EMPTY, id(0), g.vertex_set()), 0);
        let a = NodeSet::singleton(id(1));
        let within_without_t = g.vertex_set() - NodeSet::singleton(id(0));
        assert_eq!(max_disjoint_paths_from_set(&g, a, id(0), within_without_t), 0);
    }
}
