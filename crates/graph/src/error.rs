//! Error types for the graph substrate.

use crate::node::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and path enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Requested more nodes than [`MAX_NODES`](crate::nodeset::MAX_NODES).
    TooManyNodes {
        /// The requested node count.
        requested: usize,
    },
    /// A graph must have at least one node.
    EmptyGraph,
    /// A node identifier referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The graph's node count.
        node_count: usize,
    },
    /// The paper's model uses simple digraphs without self-loops
    /// (Section 2, System Model).
    SelfLoop {
        /// The node with the attempted self-loop.
        node: NodeId,
    },
    /// A path failed validation against the graph.
    InvalidPath {
        /// Human-readable reason.
        reason: String,
    },
    /// Path enumeration exceeded its budget (the paper's algorithm is
    /// intrinsically exponential; budgets keep enumeration explicit).
    BudgetExceeded {
        /// The budget that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::TooManyNodes { requested } => write!(
                f,
                "requested {requested} nodes but at most {} are supported",
                crate::nodeset::MAX_NODES
            ),
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} is out of range for a {node_count}-node graph")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed in a simple digraph")
            }
            GraphError::InvalidPath { reason } => write!(f, "invalid path: {reason}"),
            GraphError::BudgetExceeded { limit } => {
                write!(f, "path enumeration exceeded the budget of {limit}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::SelfLoop { node: NodeId::new(2) };
        assert!(e.to_string().contains("n2"));
        let e = GraphError::BudgetExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(GraphError::EmptyGraph);
    }
}
