//! Differential harness: the const-generic multi-word `NodeSet` against the
//! retired u128 single-word implementation, exercised through the public API.
//!
//! The u128 backend was the production bitset through PR 8; it is kept as
//! `nodeset::reference::RefNodeSet` behind the `reference-nodeset` feature so
//! any future width or word-order change can be checked against the original
//! semantics on the shared `n <= 128` domain. Run with:
//!
//! ```text
//! cargo test -p dbac-graph --features reference-nodeset
//! ```
#![cfg(feature = "reference-nodeset")]

use dbac_graph::nodeset::reference::RefNodeSet;
use dbac_graph::{NodeId, NodeSet};
use proptest::proptest;

/// Builds the same set in both implementations from raw indices.
fn both(indices: &[usize]) -> (NodeSet, RefNodeSet) {
    let mut new = NodeSet::EMPTY;
    let mut old = RefNodeSet(0);
    for &i in indices {
        new.insert(NodeId::new(i));
        old.insert(i);
    }
    (new, old)
}

/// Asserts the multi-word set and the u128 oracle hold the same members,
/// in the same iteration order, with the same cardinality.
fn agree(new: NodeSet, old: &RefNodeSet) {
    assert_eq!(new.len(), old.len(), "cardinality diverged");
    assert_eq!(new.is_empty(), old.is_empty());
    assert_eq!(new.first().map(|v| v.index()), old.first());
    let new_members: Vec<usize> = new.iter().map(|v| v.index()).collect();
    assert_eq!(new_members, old.indices(), "membership or order diverged");
}

proptest! {
    /// Set algebra (union / intersection / difference / complement) and the
    /// relational predicates must match the u128 oracle for every pair of
    /// subsets of the shared `n <= 128` domain.
    fn algebra_matches_the_u128_oracle(
        a in proptest::collection::vec(0usize..128, 0..40),
        b in proptest::collection::vec(0usize..128, 0..40),
    ) {
        let (na, oa) = both(&a);
        let (nb, ob) = both(&b);
        agree(na, &oa);
        agree(nb, &ob);
        agree(na.union(nb), &oa.union(ob));
        agree(na.intersection(nb), &oa.intersection(ob));
        agree(na.difference(nb), &oa.difference(ob));
        agree(na.complement_in(128), &oa.complement_in(128));
        assert_eq!(na.is_subset(nb), oa.is_subset(ob));
        assert_eq!(na.is_disjoint(nb), oa.is_disjoint(ob));
        for probe in 0..128usize {
            assert_eq!(na.contains(NodeId::new(probe)), oa.contains(probe), "probe {probe}");
            assert_eq!(na.rank_below(NodeId::new(probe)), oa.rank_below(probe), "rank {probe}");
        }
    }

    /// Interleaved insert/remove sequences must leave both implementations
    /// with identical membership. Each op packs kind and index into one
    /// integer (the proptest shim has no tuple or bool strategies):
    /// `op < 128` inserts node `op`, otherwise removes node `op - 128`.
    fn mutation_sequences_match_the_u128_oracle(
        ops in proptest::collection::vec(0usize..256, 0..96),
    ) {
        let mut new = NodeSet::EMPTY;
        let mut old = RefNodeSet(0);
        for op in ops {
            let i = op % 128;
            if op < 128 {
                new.insert(NodeId::new(i));
                old.insert(i);
            } else {
                new.remove(NodeId::new(i));
                old.remove(i);
            }
            agree(new, &old);
        }
    }
}

/// `universe(n)` must agree with the oracle at every width the oracle
/// supports, including both word boundaries of the multi-word layout.
#[test]
fn universes_match_the_u128_oracle() {
    for n in [0usize, 1, 5, 63, 64, 65, 100, 127, 128] {
        agree(NodeSet::universe(n), &RefNodeSet::universe(n));
    }
}
