//! Bracha reliable broadcast on complete networks (`n > 3f`).
//!
//! Guarantees: if an honest node delivers `(origin, seq, m)` then every
//! honest node eventually delivers exactly that tuple (agreement on
//! content even for Byzantine origins), and honest origins' broadcasts are
//! always delivered (validity). The Abraham–Amit–Dolev baseline
//! ([`aad04`](crate::aad04)) runs on top of this engine.

use dbac_graph::NodeId;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Wire messages of the broadcast. `T` is the application payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RbcMsg<T> {
    /// The origin's initial send.
    Init {
        /// Broadcasting node.
        origin: NodeId,
        /// Origin-local sequence number (distinguishes instances).
        seq: u64,
        /// The payload.
        payload: T,
    },
    /// First-phase echo.
    Echo {
        /// Broadcasting node of the echoed instance.
        origin: NodeId,
        /// Instance sequence number.
        seq: u64,
        /// The payload being echoed.
        payload: T,
    },
    /// Second-phase ready.
    Ready {
        /// Broadcasting node of the instance.
        origin: NodeId,
        /// Instance sequence number.
        seq: u64,
        /// The payload being committed.
        payload: T,
    },
}

/// A delivered broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RbcDelivery<T> {
    /// The (claimed) broadcaster.
    pub origin: NodeId,
    /// Instance sequence number.
    pub seq: u64,
    /// The agreed payload.
    pub payload: T,
}

/// Per-node engine state for arbitrarily many concurrent instances.
///
/// The engine is transport-agnostic: `broadcast` and `on_message` return
/// the messages to send to **all** nodes (including self-processing, which
/// the caller performs by feeding its own messages back in).
#[derive(Debug)]
pub struct RbcEngine<T> {
    me: NodeId,
    n: usize,
    f: usize,
    /// Instances where we already echoed (one echo per (origin, seq)).
    echoed: HashSet<(NodeId, u64)>,
    /// Instances where we already sent ready.
    readied: HashSet<(NodeId, u64)>,
    /// Delivered instances.
    delivered: HashSet<(NodeId, u64)>,
    /// (origin, seq, payload) → echo senders.
    echoes: HashMap<(NodeId, u64, T), HashSet<NodeId>>,
    /// (origin, seq, payload) → ready senders.
    readies: HashMap<(NodeId, u64, T), HashSet<NodeId>>,
    next_seq: u64,
}

impl<T: Clone + Eq + Hash> RbcEngine<T> {
    /// Creates an engine for node `me` in an `n`-node network tolerating
    /// `f` Byzantine nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f` (Bracha's resilience bound).
    #[must_use]
    pub fn new(me: NodeId, n: usize, f: usize) -> Self {
        assert!(n > 3 * f, "reliable broadcast requires n > 3f");
        RbcEngine {
            me,
            n,
            f,
            echoed: HashSet::new(),
            readied: HashSet::new(),
            delivered: HashSet::new(),
            echoes: HashMap::new(),
            readies: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Starts broadcasting `payload`; returns the instance sequence number
    /// and the `Init` message to send to every node (including self).
    pub fn broadcast(&mut self, payload: T) -> (u64, RbcMsg<T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        (seq, RbcMsg::Init { origin: self.me, seq, payload })
    }

    /// Processes a message from `from`; returns messages to send to all
    /// nodes plus any deliveries that fired.
    #[allow(clippy::int_plus_one)] // thresholds written as Bracha states them
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: RbcMsg<T>,
    ) -> (Vec<RbcMsg<T>>, Vec<RbcDelivery<T>>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        match msg {
            RbcMsg::Init { origin, seq, payload } => {
                // Authenticated links: only the origin may initiate.
                if origin == from && self.echoed.insert((origin, seq)) {
                    out.push(RbcMsg::Echo { origin, seq, payload });
                }
            }
            RbcMsg::Echo { origin, seq, payload } => {
                let senders = self.echoes.entry((origin, seq, payload.clone())).or_default();
                senders.insert(from);
                if senders.len() >= 2 * self.f + 1 && self.readied.insert((origin, seq)) {
                    out.push(RbcMsg::Ready { origin, seq, payload });
                }
            }
            RbcMsg::Ready { origin, seq, payload } => {
                let senders = self.readies.entry((origin, seq, payload.clone())).or_default();
                senders.insert(from);
                let count = senders.len();
                if count >= self.f + 1 && self.readied.insert((origin, seq)) {
                    out.push(RbcMsg::Ready { origin, seq, payload: payload.clone() });
                }
                if count >= 2 * self.f + 1 && self.delivered.insert((origin, seq)) {
                    delivered.push(RbcDelivery { origin, seq, payload });
                }
            }
        }
        (out, delivered)
    }

    /// Whether `(origin, seq)` has been delivered.
    #[must_use]
    pub fn is_delivered(&self, origin: NodeId, seq: u64) -> bool {
        self.delivered.contains(&(origin, seq))
    }

    /// Network size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Drives a set of engines to quiescence over a lossless full mesh,
    /// processing messages in FIFO order. Returns deliveries per node.
    fn drive(
        engines: &mut [RbcEngine<u64>],
        initial: Vec<(NodeId, RbcMsg<u64>)>,
        byzantine: &[usize],
    ) -> Vec<Vec<RbcDelivery<u64>>> {
        let n = engines.len();
        let mut deliveries: Vec<Vec<RbcDelivery<u64>>> = vec![Vec::new(); n];
        // Queue of (from, to, msg): each send goes to every node.
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, RbcMsg<u64>)> =
            std::collections::VecDeque::new();
        for (from, msg) in initial {
            for to in 0..n {
                queue.push_back((from, id(to), msg.clone()));
            }
        }
        while let Some((from, to, msg)) = queue.pop_front() {
            if byzantine.contains(&to.index()) {
                continue; // byzantine nodes stay silent here
            }
            let (outs, dels) = engines[to.index()].on_message(from, msg);
            deliveries[to.index()].extend(dels);
            for m in outs {
                for t in 0..n {
                    queue.push_back((to, id(t), m.clone()));
                }
            }
        }
        deliveries
    }

    fn engines(n: usize, f: usize) -> Vec<RbcEngine<u64>> {
        (0..n).map(|i| RbcEngine::new(id(i), n, f)).collect()
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn resilience_bound_enforced() {
        let _ = RbcEngine::<u64>::new(id(0), 3, 1);
    }

    #[test]
    fn honest_broadcast_delivered_by_all() {
        let mut es = engines(4, 1);
        let (seq, init) = es[0].broadcast(42);
        let deliveries = drive(&mut es, vec![(id(0), init)], &[]);
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.len(), 1, "node {i}");
            assert_eq!(d[0], RbcDelivery { origin: id(0), seq, payload: 42 });
        }
    }

    #[test]
    fn forged_init_is_ignored() {
        let mut es = engines(4, 1);
        // Node 1 forges an Init claiming origin 0.
        let forged = RbcMsg::Init { origin: id(0), seq: 9, payload: 7 };
        let (outs, dels) = es[2].on_message(id(1), forged);
        assert!(outs.is_empty() && dels.is_empty());
    }

    #[test]
    fn equivocating_origin_cannot_split_delivery() {
        // Byzantine node 3 sends Init(5) to half and Init(6) to the rest.
        // With one faulty origin, honest echoes split 2/2 at best — wait:
        // echoes go to everyone, so each honest node sees 2 echoes for one
        // value at most, short of 2f+1 = 3: nothing delivers; or the origin
        // converges on one value. Either way, no two honest nodes deliver
        // different payloads.
        let n = 4;
        let mut es = engines(n, 1);
        let mut queue: std::collections::VecDeque<(NodeId, NodeId, RbcMsg<u64>)> =
            std::collections::VecDeque::new();
        queue.push_back((id(3), id(0), RbcMsg::Init { origin: id(3), seq: 0, payload: 5 }));
        queue.push_back((id(3), id(1), RbcMsg::Init { origin: id(3), seq: 0, payload: 5 }));
        queue.push_back((id(3), id(2), RbcMsg::Init { origin: id(3), seq: 0, payload: 6 }));
        let mut delivered: Vec<(usize, u64)> = Vec::new();
        while let Some((from, to, msg)) = queue.pop_front() {
            if to.index() == 3 {
                continue;
            }
            let (outs, dels) = es[to.index()].on_message(from, msg);
            for d in dels {
                delivered.push((to.index(), d.payload));
            }
            for m in outs {
                for t in 0..n {
                    queue.push_back((to, id(t), m.clone()));
                }
            }
        }
        let payloads: HashSet<u64> = delivered.iter().map(|&(_, p)| p).collect();
        assert!(payloads.len() <= 1, "split delivery: {delivered:?}");
    }

    #[test]
    fn silent_byzantine_does_not_block_delivery() {
        let mut es = engines(4, 1);
        let (_, init) = es[1].broadcast(11);
        let deliveries = drive(&mut es, vec![(id(1), init)], &[3]);
        for (i, d) in deliveries.iter().take(3).enumerate() {
            assert_eq!(d.len(), 1, "node {i} must deliver despite silence");
        }
    }

    #[test]
    fn multiple_instances_are_independent() {
        let mut es = engines(4, 1);
        let (s0, i0) = es[0].broadcast(1);
        let (s1, i1) = es[0].broadcast(2);
        assert_ne!(s0, s1);
        let deliveries = drive(&mut es, vec![(id(0), i0), (id(0), i1)], &[]);
        for d in &deliveries {
            assert_eq!(d.len(), 2);
        }
        assert!(es[2].is_delivered(id(0), s0));
        assert!(es[2].is_delivered(id(0), s1));
    }
}
