//! Iterative approximate Byzantine consensus (the related-work family:
//! Vaidya–Tseng–Liang PODC 2012, LeBlanc et al. 2013).
//!
//! Nodes use only **local** filtering: each synchronous round, a node
//! receives its in-neighbors' values, discards up to `f` values larger
//! than its own and up to `f` values smaller than its own, and averages
//! the rest with its own value (the W-MSR rule). Correctness needs a
//! *robustness* property of the graph rather than 3-reach — experiment E10
//! exhibits graphs separating the two conditions.
//!
//! The `(r, s)`-robustness checker of LeBlanc–Zhang–Koutsoukos–Sundaram
//! (under the `f`-total malicious model W-MSR with parameter `f` is
//! correct iff the network is `(f+1, f+1)`-robust) now lives in
//! [`dbac_conditions::robustness`], next to the paper's own conditions
//! and the polynomial certificate machinery; deprecated re-export shims
//! remain here for one release cycle.

use dbac_graph::{Digraph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};

/// Moved: see [`dbac_conditions::robustness::r_reachable_subset`].
#[deprecated(note = "moved to `dbac_conditions::robustness::r_reachable_subset`")]
#[must_use]
pub fn r_reachable_subset(g: &Digraph, s: NodeSet, r: usize) -> NodeSet {
    dbac_conditions::robustness::r_reachable_subset(g, s, r)
}

/// Moved: see [`dbac_conditions::robustness::is_r_s_robust`].
#[deprecated(note = "moved to `dbac_conditions::robustness::is_r_s_robust`")]
#[must_use]
pub fn is_r_s_robust(g: &Digraph, r: usize, s: usize) -> bool {
    dbac_conditions::robustness::is_r_s_robust(g, r, s)
}

/// Moved: see [`dbac_conditions::robustness::robustness_violation`].
#[deprecated(note = "moved to `dbac_conditions::robustness::robustness_violation`")]
#[must_use]
pub fn robustness_violation(g: &Digraph, r: usize, s: usize) -> Option<(NodeSet, NodeSet)> {
    dbac_conditions::robustness::robustness_violation(g, r, s)
}

/// Behaviour of a malicious node in the iterative protocol (the `f`-total
/// *malicious* model: a faulty node sends the same wrong value to all of
/// its out-neighbors).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum IterStrategy {
    /// Always sends `value`.
    Constant(f64),
    /// Sends `base + slope·round` — a drifting attack that tries to drag
    /// the network.
    Ramp {
        /// Initial value.
        base: f64,
        /// Per-round drift.
        slope: f64,
    },
    /// Sends nothing (crash).
    Silent,
}

impl IterStrategy {
    /// The value broadcast at `round`, or `None` when silent.
    #[must_use]
    pub fn value(self, round: usize) -> Option<f64> {
        match self {
            IterStrategy::Constant(v) => Some(v),
            IterStrategy::Ramp { base, slope } => Some(base + slope * round as f64),
            IterStrategy::Silent => None,
        }
    }
}

/// The trace of an iterative run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IterativeRun {
    /// `history[r][v]`: node `v`'s value entering round `r` (`NaN` for
    /// faulty nodes when silent).
    pub history: Vec<Vec<f64>>,
    /// The honest nodes.
    pub honest: NodeSet,
}

impl IterativeRun {
    /// Honest max − min at round `r`.
    #[must_use]
    pub fn spread_at(&self, r: usize) -> f64 {
        let vals = self.honest.iter().map(|v| self.history[r][v.index()]);
        let hi = vals.clone().fold(f64::NEG_INFINITY, f64::max);
        let lo = vals.fold(f64::INFINITY, f64::min);
        hi - lo
    }

    /// Final honest spread.
    #[must_use]
    pub fn final_spread(&self) -> f64 {
        self.spread_at(self.history.len() - 1)
    }

    /// Whether honest values stayed in the initial honest hull (validity).
    #[must_use]
    pub fn valid(&self) -> bool {
        let first = &self.history[0];
        let hi = self.honest.iter().map(|v| first[v.index()]).fold(f64::NEG_INFINITY, f64::max);
        let lo = self.honest.iter().map(|v| first[v.index()]).fold(f64::INFINITY, f64::min);
        self.history.iter().all(|row| {
            self.honest.iter().all(|v| row[v.index()] >= lo - 1e-9 && row[v.index()] <= hi + 1e-9)
        })
    }
}

/// One W-MSR update for a node holding `own`, given received values.
/// Delegates to the engine's in-place kernel
/// ([`crate::iterengine::wmsr_step_in_place`]) so the synchronous loop and
/// the message-passing engine share one set of semantics.
#[must_use]
pub fn wmsr_step(own: f64, mut received: Vec<f64>, f: usize) -> f64 {
    crate::iterengine::wmsr_step_in_place(own, &mut received, f)
}

/// The synchronous closed-form W-MSR loop: the *reference semantics* for
/// the message-passing [`crate::iterengine`]. With `f = 0` the engine's
/// trajectory is bit-identical to this loop on any runtime (the
/// differential tests pin that); with `f > 0` only the convergence and
/// validity properties are shared, since asynchronous firing order is
/// schedule-dependent.
///
/// # Panics
///
/// Panics if `inputs.len() != n` or a faulty node is listed twice.
pub fn iterate(
    g: &Digraph,
    f: usize,
    inputs: &[f64],
    faulty: &[(NodeId, IterStrategy)],
    rounds: usize,
) -> IterativeRun {
    let n = g.node_count();
    assert_eq!(inputs.len(), n, "one input per node");
    let mut strategies: Vec<Option<IterStrategy>> = vec![None; n];
    for &(v, s) in faulty {
        assert!(strategies[v.index()].is_none(), "faulty node listed twice");
        strategies[v.index()] = Some(s);
    }
    let honest: NodeSet = g.nodes().filter(|v| strategies[v.index()].is_none()).collect();
    let mut values = inputs.to_vec();
    let mut history = vec![values.clone()];
    for round in 0..rounds {
        let mut next = values.clone();
        for v in honest.iter() {
            let mut received = Vec::new();
            for u in g.in_neighbors(v).iter() {
                match strategies[u.index()] {
                    None => received.push(values[u.index()]),
                    Some(s) => {
                        if let Some(bad) = s.value(round) {
                            received.push(bad);
                        }
                    }
                }
            }
            next[v.index()] = wmsr_step(values[v.index()], received, f);
        }
        values = next;
        history.push(values.clone());
    }
    IterativeRun { history, honest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_conditions::robustness::is_r_s_robust;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn deprecated_shims_still_answer() {
        // One-cycle compatibility: the shims delegate to dbac-conditions.
        #[allow(deprecated)]
        {
            let g = generators::clique(4);
            let s: NodeSet = [id(0), id(1)].into_iter().collect();
            assert_eq!(super::r_reachable_subset(&g, s, 2), s);
            assert!(super::is_r_s_robust(&g, 2, 2));
            assert!(super::robustness_violation(&g, 2, 2).is_none());
        }
    }

    #[test]
    fn wmsr_step_filters_extremes() {
        // own = 5, f = 1: the single large outlier and single small one go.
        let v = wmsr_step(5.0, vec![100.0, 4.0, 6.0, -50.0], 1);
        assert_eq!(v, (4.0 + 6.0 + 5.0) / 3.0);
        // Fewer extreme values than f: remove what exists.
        let v = wmsr_step(5.0, vec![7.0], 1);
        assert_eq!(v, 5.0, "the only larger value is removed, own remains");
    }

    #[test]
    fn honest_iteration_converges_on_clique() {
        let g = generators::clique(5);
        let run = iterate(&g, 1, &[0.0, 1.0, 2.0, 3.0, 4.0], &[], 40);
        assert!(run.final_spread() < 1e-6);
        assert!(run.valid());
    }

    #[test]
    fn malicious_constant_tolerated_on_robust_graph() {
        // K5 is (2,2)-robust: W-MSR with f=1 resists one malicious node.
        let g = generators::clique(5);
        assert!(is_r_s_robust(&g, 2, 2));
        let run = iterate(
            &g,
            1,
            &[0.0, 1.0, 2.0, 3.0, 999.0],
            &[(id(4), IterStrategy::Constant(999.0))],
            60,
        );
        assert!(run.final_spread() < 1e-6, "spread {}", run.final_spread());
        assert!(run.valid(), "dragged outside honest hull");
    }

    #[test]
    fn ramp_attack_on_robust_graph() {
        let g = generators::clique(5);
        let run = iterate(
            &g,
            1,
            &[0.0, 1.0, 2.0, 3.0, 0.0],
            &[(id(4), IterStrategy::Ramp { base: 0.0, slope: 10.0 })],
            60,
        );
        assert!(run.final_spread() < 1e-3);
        assert!(run.valid());
    }

    #[test]
    fn silent_fault_is_harmless() {
        let g = generators::clique(4);
        let run = iterate(&g, 1, &[0.0, 4.0, 8.0, 0.0], &[(id(3), IterStrategy::Silent)], 40);
        assert!(run.final_spread() < 1e-6);
        assert!(run.valid());
    }

    #[test]
    fn non_robust_graph_can_fail_to_converge() {
        // Directed cycle: one malicious node pins its successors apart.
        let g = generators::directed_cycle(6);
        assert!(!is_r_s_robust(&g, 2, 2));
        let run = iterate(
            &g,
            1,
            &[0.0, 0.0, 0.0, 10.0, 10.0, 10.0],
            &[(id(0), IterStrategy::Constant(0.0))],
            50,
        );
        // The spread must remain large: node 0 keeps feeding 0 into the
        // ring while honest nodes cannot filter it (every in-degree is 1).
        assert!(run.final_spread() > 1.0, "unexpectedly converged");
    }

    #[test]
    fn history_shape() {
        let g = generators::clique(3);
        let run = iterate(&g, 0, &[1.0, 2.0, 3.0], &[], 5);
        assert_eq!(run.history.len(), 6);
        assert_eq!(run.spread_at(0), 2.0);
    }
}
