//! Scenario-layer [`Protocol`] implementations for the baseline
//! algorithms, completing the workspace's unified **Scenario → Outcome**
//! surface (see `dbac_core::scenario` for the builder and the core
//! protocols):
//!
//! | `Protocol` | Paper positioning |
//! |------------|-------------------|
//! | [`Aad04`] | Abraham–Amit–Dolev OPODIS 2004 (related work \[1\]): the complete-network algorithm BW generalizes |
//! | [`IterativeTrimmedMean`] | W-MSR iterative consensus (related work \[13, 25\]; Vaidya–Tseng–Liang arXiv [1201.4183](https://arxiv.org/abs/1201.4183) / [1202.6094](https://arxiv.org/abs/1202.6094)): local filtering under `(f+1, f+1)`-robustness, engine in [`crate::iterengine`] |
//! | [`ReliableBroadcastProbe`] | Bracha reliable broadcast, AAD04's substrate, as a one-shot trimmed-agreement probe |
//!
//! Each implementation maps the protocol-agnostic
//! [`FaultKind`] assignments onto its own adversary
//! machinery and rejects behaviours it cannot express with typed errors,
//! so a single scenario description sweeps cleanly across algorithms.

#![deny(missing_docs)]

use crate::aad04::{AadNode, LiarAdversary};
use crate::iterative::IterStrategy;
use crate::iterengine::{IterLiar, IterMsg, IterNode};
use crate::reliable_broadcast::{RbcEngine, RbcMsg};
use dbac_conditions::robustness::CertificationStatus;
use dbac_core::error::RunError;
use dbac_core::scenario::{drive, FaultKind, Outcome, Protocol, Scenario};
use dbac_graph::{Digraph, NodeId};
use dbac_sim::process::{Adversary, Context, Process, Silent};
use std::collections::HashSet;

fn is_complete(g: &Digraph) -> bool {
    let n = g.node_count();
    g.edge_count() == n * (n.saturating_sub(1))
}

// ---------------------------------------------------------------------------
// AAD04
// ---------------------------------------------------------------------------

/// The **Abraham–Amit–Dolev 2004** optimal-resilience asynchronous
/// approximate-agreement algorithm for complete networks (`n > 3f`),
/// running on reliable broadcast with witness confirmation. The E9
/// baseline that Algorithm BW generalizes to directed networks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Aad04;

impl Protocol for Aad04 {
    fn name(&self) -> &'static str {
        "aad04"
    }

    fn check(&self, scenario: &Scenario) -> Result<(), RunError> {
        let n = scenario.graph().node_count();
        if !is_complete(scenario.graph()) {
            return Err(RunError::IncompleteGraph { protocol: self.name() });
        }
        if n <= 3 * scenario.f() {
            return Err(RunError::ResilienceExceeded {
                protocol: self.name(),
                n,
                f: scenario.f(),
                requires: "n > 3f",
            });
        }
        for (_, kind) in scenario.faults() {
            if !matches!(kind, FaultKind::Crash | FaultKind::ConstantLiar { .. }) {
                return Err(RunError::UnsupportedFault {
                    protocol: self.name(),
                    fault: kind.label(),
                });
            }
        }
        Ok(())
    }

    fn execute(&self, scenario: &Scenario) -> Result<Outcome, RunError> {
        let n = scenario.graph().node_count();
        let f = scenario.f();
        let rounds = scenario.rounds();
        let make_node = |v: NodeId, input: f64| {
            AadNode::new(v, n, f, input, scenario.epsilon(), scenario.range()).with_rounds(rounds)
        };
        let honest_set = scenario.honest_set();
        let honest: Vec<(NodeId, AadNode)> =
            honest_set.iter().map(|v| (v, make_node(v, scenario.inputs()[v.index()]))).collect();
        let byzantine = scenario
            .faults()
            .iter()
            .map(|&(v, ref kind)| {
                let boxed: Box<dyn Adversary<<AadNode as Process>::Message> + Send> = match *kind {
                    FaultKind::Crash => Box::new(Silent),
                    // The liar's node goes through `make_node` so a rounds
                    // override applies to it too — otherwise it would decide
                    // early and degrade into a crash for the tail rounds.
                    FaultKind::ConstantLiar { value } => {
                        Box::new(LiarAdversary::from_node(make_node(v, value)))
                    }
                    _ => unreachable!("checked"),
                };
                (v, boxed)
            })
            .collect();
        let registry = scenario.resolve_stats();
        let mut outputs = vec![None; n];
        let mut histories = vec![None; n];
        let mut honest_messages = 0u64;
        let report =
            drive(scenario, &registry, honest, byzantine, AadNode::is_done, &mut |v, node| {
                outputs[v.index()] = node.output();
                histories[v.index()] = Some(node.x_history().to_vec());
                honest_messages += node.sent;
            })?;
        Ok(Outcome {
            protocol: self.name(),
            outputs,
            honest: honest_set,
            epsilon: scenario.epsilon(),
            honest_input_range: scenario.honest_input_range(),
            rounds,
            sim_stats: report.stats,
            incomplete: report.incomplete,
            histories,
            honest_messages: Some(honest_messages),
            trace: report.trace,
            certification: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Iterative trimmed-mean (W-MSR)
// ---------------------------------------------------------------------------

/// The **iterative trimmed-mean** (W-MSR) algorithm of the related work:
/// purely local `f`-filtering each round, correct under
/// `(f+1, f+1)`-robustness rather than 3-reach (the E10 contrast).
///
/// Backed by the message-passing [`crate::iterengine`] since PR 9: nodes
/// exchange explicit per-round [`IterMsg`]
/// values, so the protocol runs on **all three runtimes** (Sim, Threaded,
/// Net) with real transport counters under [`Outcome::sim_stats`]'s
/// `iter` message class. With `f = 0` each node waits for every
/// in-neighbor's round value, making the trajectory schedule-independent
/// — bit-identical across runtimes, and bit-identical to the synchronous
/// reference loop [`crate::iterative::iterate`]. The round count is a
/// protocol knob (default 60, enough for the experiments' geometric
/// convergence), overridable per scenario via `ScenarioBuilder::rounds`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterativeTrimmedMean {
    /// Synchronous rounds to execute.
    pub rounds: usize,
}

impl Default for IterativeTrimmedMean {
    fn default() -> Self {
        IterativeTrimmedMean { rounds: 60 }
    }
}

impl IterativeTrimmedMean {
    /// A configuration running exactly `rounds` synchronous rounds.
    #[must_use]
    pub fn with_rounds(rounds: usize) -> Self {
        IterativeTrimmedMean { rounds }
    }

    /// The certification status of the scenario's topology for this
    /// protocol's correctness condition, `(f+1, f+1)`-robustness: a
    /// [`RobustnessCertificate`](dbac_conditions::robustness::RobustnessCertificate)
    /// when a polynomial sufficient rule covers the graph, or a typed
    /// [`Uncertified`](CertificationStatus::Uncertified) warning
    /// otherwise. Polynomial in the graph size, so safe at any `n` —
    /// unlike the exact checker.
    #[must_use]
    pub fn certification(scenario: &Scenario) -> CertificationStatus {
        let rs = scenario.f() + 1;
        dbac_conditions::robustness::certification(scenario.graph(), rs, rs)
    }
}

impl Protocol for IterativeTrimmedMean {
    fn name(&self) -> &'static str {
        "iterative-trimmed-mean"
    }

    fn check(&self, scenario: &Scenario) -> Result<(), RunError> {
        for (_, kind) in scenario.faults() {
            if !matches!(
                kind,
                FaultKind::Crash | FaultKind::ConstantLiar { .. } | FaultKind::Ramp { .. }
            ) {
                return Err(RunError::UnsupportedFault {
                    protocol: self.name(),
                    fault: kind.label(),
                });
            }
        }
        // Robustness is consulted, not enforced: an `Uncertified` topology
        // may still be (f+1, f+1)-robust (the rules are sufficient, not
        // necessary), and running on a non-robust graph is itself an
        // experiment (E10). The status is recomputed in `execute` and
        // attached to the outcome so callers see the warning.
        let _ = Self::certification(scenario);
        Ok(())
    }

    fn execute(&self, scenario: &Scenario) -> Result<Outcome, RunError> {
        let g = scenario.graph();
        let n = g.node_count();
        let f = scenario.f();
        let rounds = match scenario.rounds_override() {
            Some(r) => r as usize,
            None => self.rounds,
        } as u32;
        let honest_set = scenario.honest_set();
        let honest: Vec<(NodeId, IterNode)> = honest_set
            .iter()
            .map(|v| (v, IterNode::new(v, g, f, rounds, scenario.inputs()[v.index()])))
            .collect();
        let byzantine = scenario
            .faults()
            .iter()
            .map(|&(v, ref kind)| {
                let strategy = match *kind {
                    FaultKind::Crash => IterStrategy::Silent,
                    FaultKind::ConstantLiar { value } => IterStrategy::Constant(value),
                    FaultKind::Ramp { base, slope } => IterStrategy::Ramp { base, slope },
                    _ => unreachable!("checked"),
                };
                let boxed: Box<dyn Adversary<IterMsg> + Send> = match strategy {
                    IterStrategy::Silent => Box::new(Silent),
                    lie => Box::new(IterLiar::new(lie, rounds)),
                };
                (v, boxed)
            })
            .collect();
        let registry = scenario.resolve_stats();
        // One shared gauge handle for progress: a per-node handle would
        // cost O(n) atomics *per registration* — 10⁴-node runs register
        // exactly one.
        let gauge = registry.register();
        let mut outputs = vec![None; n];
        let mut histories = vec![None; n];
        let mut honest_messages = 0u64;
        let report =
            drive(scenario, &registry, honest, byzantine, IterNode::is_done, &mut |v, node| {
                if node.is_done() {
                    outputs[v.index()] = Some(node.value());
                }
                histories[v.index()] = Some(node.history().to_vec());
                honest_messages += node.sent;
                gauge.add_rounds_fired(u64::from(node.rounds_fired()));
            })?;
        Ok(Outcome {
            protocol: self.name(),
            outputs,
            honest: honest_set,
            epsilon: scenario.epsilon(),
            honest_input_range: scenario.honest_input_range(),
            rounds,
            sim_stats: report.stats,
            incomplete: report.incomplete,
            histories,
            honest_messages: Some(honest_messages),
            trace: report.trace,
            certification: Some(Self::certification(scenario)),
        })
    }
}

// ---------------------------------------------------------------------------
// Reliable-broadcast probe
// ---------------------------------------------------------------------------

/// A one-shot **Bracha reliable-broadcast** probe (`n > 3f`, complete
/// networks): every node RBC-broadcasts its input; each honest node
/// decides the `f`-trimmed midpoint of the first `n − f` values it
/// delivers. One communication round — it exercises AAD04's transport
/// substrate under the scenario's schedule and faults, so ε-convergence is
/// *not* guaranteed (validity is, by trimming).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableBroadcastProbe;

/// Wire message of the probe: RBC transport of `f64::to_bits` payloads.
type ProbeMsg = RbcMsg<u64>;

/// An honest probe node.
pub(crate) struct ProbeNode {
    n: usize,
    f: usize,
    rbc: RbcEngine<u64>,
    input: f64,
    delivered_from: HashSet<NodeId>,
    values: Vec<f64>,
    output: Option<f64>,
    sent: u64,
}

impl ProbeNode {
    fn new(me: NodeId, n: usize, f: usize, input: f64) -> Self {
        ProbeNode {
            n,
            f,
            rbc: RbcEngine::new(me, n, f),
            input,
            delivered_from: HashSet::new(),
            values: Vec::new(),
            output: None,
            sent: 0,
        }
    }

    fn is_done(&self) -> bool {
        self.output.is_some()
    }

    fn handle_rbc(&mut self, ctx: &mut Context<ProbeMsg>, from: NodeId, msg: ProbeMsg) {
        let (outs, deliveries) = self.rbc.on_message(from, msg);
        for m in outs {
            for w in ctx.out_neighbors().iter() {
                self.sent += 1;
                ctx.send(w, m.clone());
            }
            // A node participates in its own broadcasts.
            let me = ctx.me();
            self.handle_rbc(ctx, me, m);
        }
        for d in deliveries {
            if self.delivered_from.insert(d.origin) && self.output.is_none() {
                self.values.push(f64::from_bits(d.payload));
                if self.values.len() >= self.n - self.f {
                    let mut vals = self.values.clone();
                    vals.sort_by(f64::total_cmp);
                    let kept = &vals[self.f..vals.len() - self.f];
                    self.output = Some((kept[0] + kept[kept.len() - 1]) / 2.0);
                }
            }
        }
    }
}

impl Process for ProbeNode {
    type Message = ProbeMsg;

    fn on_start(&mut self, ctx: &mut Context<ProbeMsg>) {
        let (_, init) = self.rbc.broadcast(self.input.to_bits());
        for w in ctx.out_neighbors().iter() {
            self.sent += 1;
            ctx.send(w, init.clone());
        }
        let me = ctx.me();
        self.handle_rbc(ctx, me, init);
    }

    fn on_message(&mut self, ctx: &mut Context<ProbeMsg>, from: NodeId, msg: ProbeMsg) {
        self.handle_rbc(ctx, from, msg);
    }

    fn classify(_msg: &ProbeMsg) -> dbac_sim::stats::MsgClass {
        dbac_sim::stats::MsgClass::Rbc
    }
}

impl std::fmt::Debug for ProbeNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProbeNode").field("output", &self.output).finish()
    }
}

/// A probe liar: participates honestly but broadcasts a planted value (RBC
/// prevents equivocation, so this is the strongest value attack).
struct ProbeLiar {
    inner: ProbeNode,
}

impl Adversary<ProbeMsg> for ProbeLiar {
    fn on_start(&mut self, ctx: &mut Context<ProbeMsg>) {
        self.inner.on_start(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<ProbeMsg>, from: NodeId, msg: ProbeMsg) {
        self.inner.on_message(ctx, from, msg);
    }
}

impl Protocol for ReliableBroadcastProbe {
    fn name(&self) -> &'static str {
        "reliable-broadcast-probe"
    }

    fn check(&self, scenario: &Scenario) -> Result<(), RunError> {
        let n = scenario.graph().node_count();
        if !is_complete(scenario.graph()) {
            return Err(RunError::IncompleteGraph { protocol: self.name() });
        }
        if n <= 3 * scenario.f() {
            return Err(RunError::ResilienceExceeded {
                protocol: self.name(),
                n,
                f: scenario.f(),
                requires: "n > 3f",
            });
        }
        for (_, kind) in scenario.faults() {
            if !matches!(kind, FaultKind::Crash | FaultKind::ConstantLiar { .. }) {
                return Err(RunError::UnsupportedFault {
                    protocol: self.name(),
                    fault: kind.label(),
                });
            }
        }
        Ok(())
    }

    fn execute(&self, scenario: &Scenario) -> Result<Outcome, RunError> {
        let n = scenario.graph().node_count();
        let f = scenario.f();
        let honest_set = scenario.honest_set();
        let honest: Vec<(NodeId, ProbeNode)> = honest_set
            .iter()
            .map(|v| (v, ProbeNode::new(v, n, f, scenario.inputs()[v.index()])))
            .collect();
        let byzantine = scenario
            .faults()
            .iter()
            .map(|&(v, ref kind)| {
                let boxed: Box<dyn Adversary<ProbeMsg> + Send> = match *kind {
                    FaultKind::Crash => Box::new(Silent),
                    FaultKind::ConstantLiar { value } => {
                        Box::new(ProbeLiar { inner: ProbeNode::new(v, n, f, value) })
                    }
                    _ => unreachable!("checked"),
                };
                (v, boxed)
            })
            .collect();
        let registry = scenario.resolve_stats();
        let mut outputs = vec![None; n];
        let mut histories = vec![None; n];
        let mut honest_messages = 0u64;
        let report =
            drive(scenario, &registry, honest, byzantine, ProbeNode::is_done, &mut |v, node| {
                outputs[v.index()] = node.output;
                let mut h = vec![node.input];
                h.extend(node.output);
                histories[v.index()] = Some(h);
                honest_messages += node.sent;
            })?;
        Ok(Outcome {
            protocol: self.name(),
            outputs,
            honest: honest_set,
            epsilon: scenario.epsilon(),
            honest_input_range: scenario.honest_input_range(),
            rounds: 1,
            sim_stats: report.stats,
            incomplete: report.incomplete,
            histories,
            honest_messages: Some(honest_messages),
            trace: report.trace,
            certification: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_core::scenario::{Runtime, SchedulerSpec};
    use dbac_graph::generators;
    use std::time::Duration;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn aad04_scenario_with_liar_converges() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(0.5)
            .fault(id(3), FaultKind::ConstantLiar { value: 1e9 })
            .scheduler(SchedulerSpec::legacy_random(5))
            .protocol(Aad04)
            .run()
            .unwrap();
        assert_eq!(out.protocol, "aad04");
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid(), "{:?}", out.outputs);
        assert!(out.honest_messages.unwrap() > 0);
    }

    /// A rounds override must reach the liar's inner node too: with the
    /// honest nodes running 8 rounds, a liar stuck on the derived count
    /// would fall silent mid-run and degrade into a crash.
    #[test]
    fn aad04_rounds_override_applies_to_the_liar() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(0.5)
            .rounds(8)
            .fault(id(3), FaultKind::ConstantLiar { value: 1e6 })
            .scheduler(SchedulerSpec::legacy_random(9))
            .protocol(Aad04)
            .run()
            .unwrap();
        assert_eq!(out.rounds, 8);
        assert!(out.converged() && out.valid(), "{:?}", out.outputs);
        // Every honest trajectory covers all 8 rounds — possible only if
        // the liar kept broadcasting to the end (with it crashed, n−f
        // witnesses still form, but the liar's own x-history would not).
        for v in out.honest.iter() {
            assert_eq!(out.histories[v.index()].as_ref().unwrap().len(), 9);
        }
    }

    #[test]
    fn aad04_rejects_incomplete_graphs_and_low_resilience() {
        let err = Scenario::builder(generators::directed_cycle(5), 1)
            .inputs(vec![0.0; 5])
            .protocol(Aad04)
            .run()
            .unwrap_err();
        assert_eq!(err, RunError::IncompleteGraph { protocol: "aad04" });

        let err = Scenario::builder(generators::clique(3), 1)
            .inputs(vec![0.0; 3])
            .protocol(Aad04)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            RunError::ResilienceExceeded { protocol: "aad04", n: 3, f: 1, requires: "n > 3f" }
        );
    }

    #[test]
    fn aad04_rejects_inexpressible_faults() {
        let err = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![0.0; 4])
            .fault(id(3), FaultKind::Equivocator { low: -1.0, high: 1.0 })
            .protocol(Aad04)
            .run()
            .unwrap_err();
        assert_eq!(err, RunError::UnsupportedFault { protocol: "aad04", fault: "equivocator" });
    }

    #[test]
    fn iterative_scenario_on_robust_clique() {
        let out = Scenario::builder(generators::clique(5), 1)
            .inputs(vec![0.0, 1.0, 2.0, 3.0, 999.0])
            .epsilon(1e-6)
            .range((0.0, 999.0))
            .fault(id(4), FaultKind::ConstantLiar { value: 999.0 })
            .protocol(IterativeTrimmedMean::default())
            .run()
            .unwrap();
        assert_eq!(out.protocol, "iterative-trimmed-mean");
        assert!(out.spread() < 1e-6, "spread {}", out.spread());
        assert!(out.valid());
        assert_eq!(out.rounds, 60);
        // Histories carry the full trajectory (initial row + 60 rounds).
        let h = out.histories[0].as_ref().unwrap();
        assert_eq!(h.len(), 61);
        assert_eq!(h[0], 0.0);
    }

    /// The engine runs on the threaded runtime (the legacy implementation
    /// rejected everything but Sim), and at `f = 0` its trajectory is
    /// schedule-independent: bit-identical to the simulated run.
    #[test]
    fn iterative_runs_on_the_threaded_runtime() {
        let build = |runtime| {
            Scenario::builder(generators::clique(4), 0)
                .inputs(vec![0.0, 1.0, 2.0, 7.0])
                .epsilon(1e-9)
                .rounds(20)
                .runtime(runtime)
                .protocol(IterativeTrimmedMean::default())
                .run()
                .unwrap()
        };
        let sim = build(Runtime::Sim);
        let threaded = build(Runtime::threaded(Duration::from_secs(20)));
        assert!(threaded.incomplete.is_empty(), "{:?}", threaded.incomplete);
        assert!(sim.converged() && threaded.converged());
        for (a, b) in sim.outputs.iter().zip(&threaded.outputs) {
            assert_eq!(a.unwrap().to_bits(), b.unwrap().to_bits(), "f=0 is runtime-independent");
        }
        assert_eq!(sim.histories, threaded.histories);
    }

    /// With `f = 0` the message-passing engine reproduces the synchronous
    /// reference loop [`iterate`] bit-for-bit, trajectory included.
    #[test]
    fn iterative_engine_matches_the_synchronous_loop_at_f0() {
        let g = generators::bidirectional_cycle(7);
        let inputs: Vec<f64> = (0..7).map(|i| (i as f64).sin() * 10.0).collect();
        let rounds = 12;
        let reference = crate::iterative::iterate(&g, 0, &inputs, &[], rounds);
        let out = Scenario::builder(g, 0)
            .inputs(inputs)
            .rounds(rounds as u32)
            .protocol(IterativeTrimmedMean::default())
            .run()
            .unwrap();
        for v in out.honest.iter() {
            let engine = out.histories[v.index()].as_ref().unwrap();
            let sync: Vec<f64> = reference.history.iter().map(|row| row[v.index()]).collect();
            assert_eq!(engine.len(), sync.len());
            for (a, b) in engine.iter().zip(&sync) {
                assert_eq!(a.to_bits(), b.to_bits(), "node {v} diverged from the reference");
            }
        }
    }

    #[test]
    fn iterative_ramp_attack_supported() {
        let out = Scenario::builder(generators::clique(5), 1)
            .inputs(vec![0.0, 1.0, 2.0, 3.0, 0.0])
            .epsilon(1e-3)
            .fault(id(4), FaultKind::Ramp { base: 0.0, slope: 10.0 })
            .protocol(IterativeTrimmedMean::default())
            .run()
            .unwrap();
        assert!(out.spread() < 1e-3);
        assert!(out.valid());
    }

    #[test]
    fn rbc_probe_trims_a_liar() {
        let out = Scenario::builder(generators::clique(4), 1)
            .inputs(vec![2.0, 4.0, 6.0, 0.0])
            .epsilon(10.0)
            .fault(id(3), FaultKind::ConstantLiar { value: 1e9 })
            .scheduler(SchedulerSpec::Random { seed: 2, min: 1, max: 9 })
            .protocol(ReliableBroadcastProbe)
            .run()
            .unwrap();
        assert_eq!(out.protocol, "reliable-broadcast-probe");
        assert!(out.all_decided());
        assert!(out.valid(), "trimming must keep outputs in [2, 6]: {:?}", out.outputs);
        assert_eq!(out.rounds, 1);
    }

    /// The W-MSR round count is a per-protocol knob: it rides the sweep's
    /// protocol axis as distinctly configured instances, and the rounds
    /// axis (the scenario override) reaches it through `rounds_opt`.
    #[test]
    fn iterative_rounds_knob_sweeps_as_a_protocol_axis() {
        use dbac_core::scenario::sweep::ExperimentPlan;
        let sweep = ExperimentPlan::new()
            .protocol("wmsr10", IterativeTrimmedMean::with_rounds(10))
            .protocol("wmsr60", IterativeTrimmedMean::with_rounds(60))
            .graph("K5", generators::clique(5))
            .fault_bound(1)
            .faults("liar", vec![(id(4), FaultKind::ConstantLiar { value: 999.0 })])
            .inputs(
                "ramped",
                dbac_core::scenario::sweep::InputSpec::from_fn(|g| {
                    (0..g.node_count()).map(|i| i as f64).collect()
                })
                .with_range(0.0, 999.0),
            )
            .epsilon(1e-6)
            .build()
            .unwrap();
        let report = sweep.run();
        assert!(report.failures().is_empty());
        let rounds: Vec<u32> =
            report.rows.iter().map(|r| r.summary.as_ref().unwrap().rounds).collect();
        assert_eq!(rounds, vec![10, 60], "each protocol axis point keeps its knob");

        // The rounds axis overrides the knob for every instance.
        let report = ExperimentPlan::new()
            .protocol("wmsr", IterativeTrimmedMean::default())
            .graph("K5", generators::clique(5))
            .fault_bound(0)
            .rounds(7)
            .build()
            .unwrap()
            .run();
        assert_eq!(report.rows[0].summary.as_ref().unwrap().rounds, 7);
    }

    /// A cross-baseline plan: AAD04 and the RBC probe sweep under one
    /// schedule family; the probe is a one-round protocol, so only
    /// validity (not ε-convergence) is asserted for it.
    #[test]
    fn baseline_protocols_sweep_under_one_plan() {
        use dbac_core::scenario::sweep::{ExperimentPlan, SchedulerFamily};
        let report = ExperimentPlan::new()
            .protocol("aad04", Aad04)
            .protocol("rbc", ReliableBroadcastProbe)
            .graph("K4", generators::clique(4))
            .fault_bound(1)
            .faults("liar", vec![(id(3), FaultKind::ConstantLiar { value: 1e9 })])
            .inputs("probe", dbac_core::scenario::sweep::InputSpec::fixed(vec![2.0, 4.0, 6.0, 0.0]))
            .epsilon(10.0)
            .scheduler("legacy", SchedulerFamily::legacy_random())
            .seeds([2, 5])
            .build()
            .unwrap();
        let report = report.run();
        assert!(report.failures().is_empty());
        for row in &report.rows {
            let s = row.summary.as_ref().unwrap();
            assert!(s.all_decided && s.valid, "{}: {s:?}", row.label);
        }
        let reduced = report.reduce();
        assert_eq!(reduced.cells.len(), 2, "one group per protocol");
        for cell in &reduced.cells {
            assert_eq!(cell.runs, 2);
            assert_eq!(cell.valid, 2);
        }
    }

    #[test]
    fn rbc_probe_all_honest_agrees_with_full_delivery() {
        // f = 0: every node waits for all n broadcasts, so the probe is
        // schedule-independent and every output is the same midpoint.
        let out = Scenario::builder(generators::clique(4), 0)
            .inputs(vec![1.0, 9.0, 3.0, 5.0])
            .epsilon(0.5)
            .seed(3)
            .protocol(ReliableBroadcastProbe)
            .run()
            .unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        for v in out.honest_outputs() {
            assert_eq!(v, 5.0, "midpoint of [1, 9]");
        }
    }
}
