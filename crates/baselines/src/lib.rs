//! # dbac-baselines
//!
//! The algorithms the paper builds on or positions itself against:
//!
//! * [`reliable_broadcast`] — Bracha's reliable broadcast (`n > 3f`,
//!   complete networks): the substrate of the Abraham–Amit–Dolev
//!   algorithm.
//! * [`aad04`] — **Abraham, Amit, Dolev (OPODIS 2004)**: optimal-resilience
//!   asynchronous approximate agreement on complete networks. The paper's
//!   Algorithm BW is "a non-trivial generalization" of it to directed,
//!   incomplete networks; experiment E9 compares the two on cliques.
//! * [`iterative`] — the iterative trimmed-mean (W-MSR style) algorithm of
//!   the related work ([13, 25]): purely local filtering, correct under
//!   graph *robustness* rather than 3-reach; experiment E10 contrasts the
//!   two conditions.
//! * [`iterengine`] — the message-passing W-MSR engine: columnar per-round
//!   value buffers and an in-place trimmed-mean kernel, runnable on all
//!   three runtimes (Sim, Threaded, Net) and built to scale past 10⁴
//!   nodes.
//! * [`scenario`] — [`Protocol`](dbac_core::scenario::Protocol)
//!   implementations plugging all three baselines into the workspace's
//!   unified **Scenario → Outcome** experiment surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aad04;
pub mod iterative;
pub mod iterengine;
pub mod reliable_broadcast;
pub mod scenario;
pub mod wire;

pub use scenario::{Aad04, IterativeTrimmedMean, ReliableBroadcastProbe};
