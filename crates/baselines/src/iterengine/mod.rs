//! The message-passing **iterative W-MSR engine**.
//!
//! Historically the `IterativeTrimmedMean` protocol was a synchronous
//! closed-form loop ([`crate::iterative::iterate`]) that only the simulated
//! runtime could host. This module promotes it to a first-class
//! [`Process`]: nodes exchange explicit per-round [`IterMsg`] values, so
//! the same fleet runs on [`Runtime::Sim`], [`Runtime::Threaded`] and
//! [`Runtime::Net`] — and through the shared fault-injection, stats and
//! chaos machinery of the runtime layer.
//!
//! # Asynchronous round structure
//!
//! Node `v` enters round `r` holding value `x_v[r]` (round 0 holds the
//! input) and broadcasts `(r, x_v[r])` to its out-neighbors. It **fires**
//! round `r` once values from at least `indegree − f` distinct in-neighbors
//! for round `r` have arrived, applying the W-MSR trimmed-mean rule
//! ([`wmsr_step_in_place`]) to move to `x_v[r+1]`. With `f = 0` a node
//! waits for *every* in-neighbor, which makes the computation
//! schedule-independent: any runtime, any adversarial delivery order,
//! produces bit-identical trajectories (the cross-runtime gate relies on
//! this, exactly like the BW `f = 0` gate).
//!
//! # Columnar buffering
//!
//! The engine is built to scale past 10⁴ nodes, so per-round
//! `HashMap<NodeId, f64>` buffers are out. Each node stores its
//! in-neighborhood once as a sorted id slice and keeps one flat
//! **round-major value buffer** (`rounds × indegree` floats) plus a
//! presence bitmap; an incoming `(r, value)` from neighbor slot `i` lands
//! at offset `r·indegree + i` with one binary search and two writes, and
//! duplicated deliveries (chaos plans re-deliver frames) are absorbed by
//! the bitmap without perturbing the value column.
//!
//! [`Runtime::Sim`]: dbac_core::scenario::Runtime::Sim
//! [`Runtime::Threaded`]: dbac_core::scenario::Runtime::Threaded
//! [`Runtime::Net`]: dbac_core::scenario::Runtime::Net

mod kernel;

pub use kernel::wmsr_step_in_place;

use crate::iterative::IterStrategy;
use dbac_graph::{Digraph, NodeId};
use dbac_sim::net::codec::{WireError, WireMessage, WireReader};
use dbac_sim::process::{Adversary, Context, Process};
use dbac_sim::stats::MsgClass;

/// One round's value exchange: "entering round `round` I hold `value`".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterMsg {
    /// The 0-based round this value enters.
    pub round: u32,
    /// The sender's value at that round.
    pub value: f64,
}

/// Wire layout: `round: u32 LE` then `value: f64 bits LE` — 12 bytes,
/// total (every 12-byte frame decodes; bounds are enforced at the
/// protocol layer, where the round is checked against the run length).
impl WireMessage for IterMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&self.value.to_bits().to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let round = r.u32()?;
        let value = r.f64()?;
        Ok(IterMsg { round, value })
    }
}

/// An honest W-MSR node: columnar round buffers plus the in-place
/// trimmed-mean kernel.
#[derive(Clone, Debug)]
pub struct IterNode {
    f: usize,
    /// Total rounds to execute; the node is done entering round `rounds`.
    rounds: u32,
    /// In-neighbor ids, sorted ascending — the column order of `buf`.
    in_ids: Vec<NodeId>,
    /// Round-major value buffer: `buf[r * indegree + slot]`.
    buf: Vec<f64>,
    /// Presence bitmap over the same index space (dedups re-deliveries).
    present: Vec<u64>,
    /// Distinct round-`r` values received so far.
    counts: Vec<u32>,
    /// The round this node is currently waiting to fire.
    round: u32,
    /// Current value (`history.last()`).
    value: f64,
    /// `history[r]`: the value entering round `r`; `history[0]` is the input.
    history: Vec<f64>,
    /// Messages sent (the honest-traffic tally of the outcome).
    pub sent: u64,
    /// Reusable kernel scratch (cleared each fire, never shrunk).
    scratch: Vec<f64>,
}

impl IterNode {
    /// A node for `me` on `g`, filtering up to `f` extremes per side,
    /// running `rounds` rounds from `input`.
    #[must_use]
    pub fn new(me: NodeId, g: &Digraph, f: usize, rounds: u32, input: f64) -> Self {
        let in_ids: Vec<NodeId> = g.in_neighbors(me).iter().collect();
        let deg = in_ids.len();
        let cells = rounds as usize * deg;
        IterNode {
            f,
            rounds,
            in_ids,
            buf: vec![0.0; cells],
            present: vec![0u64; cells.div_ceil(64)],
            counts: vec![0; rounds as usize],
            round: 0,
            value: input,
            history: vec![input],
            sent: 0,
            scratch: Vec::with_capacity(deg),
        }
    }

    /// Whether the node has fired all of its rounds.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.round >= self.rounds
    }

    /// The rounds fired so far.
    #[must_use]
    pub fn rounds_fired(&self) -> u32 {
        self.round
    }

    /// The current value (the output once [`Self::is_done`]).
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The full trajectory: `history()[r]` is the value entering round `r`.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Values from at least `indegree − f` in-neighbors unlock a round.
    fn fire_threshold(&self) -> u32 {
        (self.in_ids.len() - self.f.min(self.in_ids.len())) as u32
    }

    fn broadcast_current(&mut self, ctx: &mut Context<IterMsg>) {
        let msg = IterMsg { round: self.round, value: self.value };
        self.sent += ctx.out_neighbors().len() as u64;
        ctx.broadcast(&msg);
    }

    /// Fires every round whose threshold is met, in order. Rounds unlock
    /// strictly in sequence: round `r + 1` values can only be *used* after
    /// round `r` fires, however early they arrive.
    fn fire_ready_rounds(&mut self, ctx: &mut Context<IterMsg>) {
        let deg = self.in_ids.len();
        let need = self.fire_threshold();
        while !self.is_done() && self.counts[self.round as usize] >= need {
            let base = self.round as usize * deg;
            self.scratch.clear();
            for slot in 0..deg {
                let idx = base + slot;
                if self.present[idx / 64] >> (idx % 64) & 1 == 1 {
                    self.scratch.push(self.buf[idx]);
                }
            }
            let mut received = std::mem::take(&mut self.scratch);
            self.value = wmsr_step_in_place(self.value, &mut received, self.f);
            self.scratch = received;
            self.round += 1;
            self.history.push(self.value);
            if !self.is_done() {
                self.broadcast_current(ctx);
            }
        }
    }
}

impl Process for IterNode {
    type Message = IterMsg;

    fn on_start(&mut self, ctx: &mut Context<IterMsg>) {
        if self.rounds == 0 {
            return;
        }
        self.broadcast_current(ctx);
        // A node with an empty (or all-faulty) in-neighborhood free-runs:
        // every round's threshold is zero.
        self.fire_ready_rounds(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<IterMsg>, from: NodeId, msg: IterMsg) {
        if msg.round >= self.rounds {
            return; // out-of-range round: undecodable intent, drop
        }
        let Ok(slot) = self.in_ids.binary_search(&from) else {
            return; // not an in-neighbor (runtime misdelivery guard)
        };
        let idx = msg.round as usize * self.in_ids.len() + slot;
        let (word, bit) = (idx / 64, idx % 64);
        if self.present[word] >> bit & 1 == 1 {
            return; // duplicate delivery (chaos): first value wins
        }
        self.present[word] |= 1 << bit;
        self.buf[idx] = msg.value;
        self.counts[msg.round as usize] += 1;
        if msg.round == self.round {
            self.fire_ready_rounds(ctx);
        }
    }

    fn classify(_msg: &IterMsg) -> MsgClass {
        MsgClass::Iter
    }
}

/// A malicious node in the `f`-total *malicious* model: it sends the same
/// planted per-round value to all out-neighbors. Since it answers to no
/// threshold of its own, it broadcasts its entire round schedule eagerly at
/// start — the strongest timing for a value attack, and exactly the
/// per-round values [`crate::iterative::iterate`] models.
#[derive(Clone, Debug)]
pub struct IterLiar {
    rounds: u32,
    strategy: IterStrategy,
}

impl IterLiar {
    /// A liar following `strategy` for a `rounds`-round run.
    #[must_use]
    pub fn new(strategy: IterStrategy, rounds: u32) -> Self {
        IterLiar { rounds, strategy }
    }
}

impl Adversary<IterMsg> for IterLiar {
    fn on_start(&mut self, ctx: &mut Context<IterMsg>) {
        for round in 0..self.rounds {
            if let Some(value) = self.strategy.value(round as usize) {
                ctx.broadcast(&IterMsg { round, value });
            }
        }
    }

    fn on_message(&mut self, _ctx: &mut Context<IterMsg>, _from: NodeId, _msg: IterMsg) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    #[test]
    fn iter_msg_wire_round_trips() {
        for msg in [
            IterMsg { round: 0, value: 0.0 },
            IterMsg { round: 59, value: -1.5e300 },
            IterMsg { round: u32::MAX, value: f64::NAN },
            IterMsg { round: 7, value: f64::NEG_INFINITY },
        ] {
            let bytes = msg.to_bytes();
            assert_eq!(bytes.len(), 12);
            let back = IterMsg::from_bytes(&bytes).unwrap();
            assert_eq!(back.round, msg.round);
            assert_eq!(back.value.to_bits(), msg.value.to_bits());
        }
        assert!(IterMsg::from_bytes(&[0u8; 11]).is_err(), "truncated");
        assert!(IterMsg::from_bytes(&[0u8; 13]).is_err(), "trailing");
    }

    #[test]
    fn node_tracks_rounds_and_history() {
        let g = generators::clique(3);
        let node = IterNode::new(NodeId::new(0), &g, 1, 10, 4.5);
        assert!(!node.is_done());
        assert_eq!(node.rounds_fired(), 0);
        assert_eq!(node.history(), &[4.5]);
        assert_eq!(node.fire_threshold(), 1, "indegree 2, f 1");
    }

    #[test]
    fn zero_round_node_is_born_done() {
        let g = generators::clique(3);
        let node = IterNode::new(NodeId::new(0), &g, 0, 0, 1.0);
        assert!(node.is_done());
    }

    #[test]
    fn duplicate_deliveries_do_not_double_count() {
        let g = generators::directed_cycle(3);
        let mut node = IterNode::new(NodeId::new(1), &g, 0, 5, 1.0);
        let mut ctx = Context::new(NodeId::new(1), g.out_neighbors(NodeId::new(1)));
        // Node 1's only in-neighbor on the cycle is node 0.
        node.on_message(&mut ctx, NodeId::new(0), IterMsg { round: 1, value: 9.0 });
        node.on_message(&mut ctx, NodeId::new(0), IterMsg { round: 1, value: 7.0 });
        assert_eq!(node.counts[1], 1, "second delivery is a duplicate");
        assert_eq!(node.buf[1], 9.0, "first value wins");
    }
}
