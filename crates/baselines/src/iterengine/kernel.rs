//! The in-place W-MSR trimmed-mean kernel.
//!
//! This is the per-round hot path of the iterative engine: at 10k nodes ×
//! 60 rounds the step runs hundreds of thousands of times per scenario, so
//! it sorts the caller's scratch buffer in place instead of allocating.
//! [`crate::iterative::wmsr_step`] delegates here, keeping the synchronous
//! reference loop and the engine on one set of semantics.

/// One W-MSR update for a node holding `own`, given the received values.
///
/// Sorts `received` in place (by `f64::total_cmp`, so NaNs order
/// deterministically), removes up to `f` values strictly larger than `own`
/// and up to `f` strictly smaller, and returns the average of the kept
/// values together with `own`.
#[must_use]
pub fn wmsr_step_in_place(own: f64, received: &mut [f64], f: usize) -> f64 {
    received.sort_unstable_by(f64::total_cmp);
    // Remove up to f values strictly larger than own (from the top) and up
    // to f strictly smaller (from the bottom).
    let larger = received.iter().filter(|&&v| v > own).count().min(f);
    let smaller = received.iter().filter(|&&v| v < own).count().min(f);
    let kept = &received[smaller..received.len() - larger];
    let sum: f64 = kept.iter().sum::<f64>() + own;
    sum / (kept.len() + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_extremes_like_the_reference() {
        let mut vals = vec![100.0, 4.0, 6.0, -50.0];
        let v = wmsr_step_in_place(5.0, &mut vals, 1);
        assert_eq!(v, (4.0 + 6.0 + 5.0) / 3.0);
    }

    #[test]
    fn agrees_with_the_allocating_wrapper() {
        let cases: Vec<(f64, Vec<f64>, usize)> = vec![
            (0.0, vec![], 0),
            (0.0, vec![], 2),
            (5.0, vec![7.0], 1),
            (1.0, vec![1.0, 1.0, 1.0], 1),
            (2.5, vec![-1.0, 0.0, 9.0, 2.5, f64::INFINITY], 2),
            (0.0, vec![f64::NAN, 1.0, -1.0], 1),
        ];
        for (own, vals, f) in cases {
            let mut scratch = vals.clone();
            let a = wmsr_step_in_place(own, &mut scratch, f);
            let b = crate::iterative::wmsr_step(own, vals.clone(), f);
            assert_eq!(a.to_bits(), b.to_bits(), "own={own} vals={vals:?} f={f}");
        }
    }

    #[test]
    fn empty_input_returns_own() {
        let mut vals = vec![];
        assert_eq!(wmsr_step_in_place(42.0, &mut vals, 3), 42.0);
    }
}
