//! Binary wire codecs for the baseline protocol messages.
//!
//! The RBC transport is generic in its payload, and so is its codec:
//! `RbcMsg<T>` encodes for any payload that is itself a
//! [`WireMessage`], with the payload encoded *last* so it may consume the
//! remainder of the frame. [`AadPayload`] rides that impl for the AAD04
//! baseline, and the probe's bare `u64` payload uses the codec layer's
//! built-in impl.
//!
//! ```text
//! RbcMsg<T>          := phase:u8 origin:u32 seq:u64 payload:T
//!                       (phase: 0 Init, 1 Echo, 2 Ready)
//! AadPayload::Value  := 0x00 round:u32 bits:u64
//! AadPayload::Report := 0x01 round:u32 count:u32 (node:u32 bits:u64)^count
//! ```
//!
//! Node indices are bounds-checked against the graph layer's `MAX_NODES`
//! during decode (`WireReader::node_id`), so adversarial bytes cannot
//! reach the panicking `NodeId` constructor.

use crate::aad04::AadPayload;
use crate::reliable_broadcast::RbcMsg;
use dbac_sim::net::codec::{WireError, WireMessage, WireReader};

const TAG_INIT: u8 = 0;
const TAG_ECHO: u8 = 1;
const TAG_READY: u8 = 2;

const TAG_VALUE: u8 = 0;
const TAG_REPORT: u8 = 1;

/// Bytes per `(NodeId, u64)` report entry on the wire.
const ENTRY_BYTES: usize = 4 + 8;

impl<T: WireMessage> WireMessage for RbcMsg<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let (tag, origin, seq, payload) = match self {
            RbcMsg::Init { origin, seq, payload } => (TAG_INIT, origin, seq, payload),
            RbcMsg::Echo { origin, seq, payload } => (TAG_ECHO, origin, seq, payload),
            RbcMsg::Ready { origin, seq, payload } => (TAG_READY, origin, seq, payload),
        };
        out.push(tag);
        out.extend_from_slice(&(origin.index() as u32).to_le_bytes());
        out.extend_from_slice(&seq.to_le_bytes());
        payload.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        let origin = r.node_id()?;
        let seq = r.u64()?;
        let payload = T::decode(r)?;
        match tag {
            TAG_INIT => Ok(RbcMsg::Init { origin, seq, payload }),
            TAG_ECHO => Ok(RbcMsg::Echo { origin, seq, payload }),
            TAG_READY => Ok(RbcMsg::Ready { origin, seq, payload }),
            tag => Err(WireError::UnknownTag { tag }),
        }
    }
}

impl WireMessage for AadPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AadPayload::Value { round, bits } => {
                out.push(TAG_VALUE);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&bits.to_le_bytes());
            }
            AadPayload::Report { round, entries } => {
                out.push(TAG_REPORT);
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (node, bits) in entries {
                    out.extend_from_slice(&(node.index() as u32).to_le_bytes());
                    out.extend_from_slice(&bits.to_le_bytes());
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            TAG_VALUE => Ok(AadPayload::Value { round: r.u32()?, bits: r.u64()? }),
            TAG_REPORT => {
                let round = r.u32()?;
                let count = r.u32()? as usize;
                if r.remaining() / ENTRY_BYTES < count {
                    return Err(WireError::Truncated {
                        needed: count * ENTRY_BYTES,
                        available: r.remaining(),
                    });
                }
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let node = r.node_id()?;
                    let bits = r.u64()?;
                    entries.push((node, bits));
                }
                Ok(AadPayload::Report { round, entries })
            }
            tag => Err(WireError::UnknownTag { tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aad04::AadMsg;
    use dbac_graph::NodeId;

    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn draw_payload(state: &mut u64) -> AadPayload {
        if mix(state) % 2 == 0 {
            AadPayload::Value { round: mix(state) as u32, bits: mix(state) }
        } else {
            let count = (mix(state) % 12) as usize;
            let entries = (0..count)
                .map(|_| (NodeId::new((mix(state) % 128) as usize), mix(state)))
                .collect();
            AadPayload::Report { round: mix(state) as u32, entries }
        }
    }

    fn draw_msg(state: &mut u64) -> AadMsg {
        let origin = NodeId::new((mix(state) % 128) as usize);
        let seq = mix(state);
        let payload = draw_payload(state);
        match mix(state) % 3 {
            0 => RbcMsg::Init { origin, seq, payload },
            1 => RbcMsg::Echo { origin, seq, payload },
            _ => RbcMsg::Ready { origin, seq, payload },
        }
    }

    #[test]
    fn rbc_aad_messages_round_trip() {
        let mut state = 0xAAD0_4BCA;
        for _ in 0..400 {
            let msg = draw_msg(&mut state);
            let bytes = msg.to_bytes();
            let decoded = AadMsg::from_bytes(&bytes).expect("own encoding decodes");
            assert_eq!(decoded, msg);
            assert_eq!(decoded.to_bytes(), bytes);
        }
    }

    #[test]
    fn rbc_u64_probe_messages_round_trip() {
        let msg: RbcMsg<u64> = RbcMsg::Echo { origin: NodeId::new(5), seq: 3, payload: 42 };
        let bytes = msg.to_bytes();
        assert_eq!(RbcMsg::<u64>::from_bytes(&bytes).unwrap(), msg);
    }

    #[test]
    fn decode_never_panics_on_random_buffers() {
        let mut state = 0xFEED_FACE;
        for _ in 0..20_000 {
            let len = (mix(&mut state) % 64) as usize;
            let buf: Vec<u8> = (0..len).map(|_| (mix(&mut state) & 0xFF) as u8).collect();
            let _ = AadMsg::from_bytes(&buf);
            let _ = RbcMsg::<u64>::from_bytes(&buf);
        }
    }

    #[test]
    fn oversized_origin_is_a_typed_error() {
        let raw = dbac_graph::MAX_NODES as u32;
        let mut buf = vec![TAG_INIT];
        buf.extend_from_slice(&raw.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(RbcMsg::<u64>::from_bytes(&buf).unwrap_err(), WireError::BadNodeId { raw });
    }

    #[test]
    fn forged_report_count_is_rejected_before_allocation() {
        let mut buf = vec![TAG_REPORT];
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(AadPayload::from_bytes(&buf).unwrap_err(), WireError::Truncated { .. }));
    }
}
