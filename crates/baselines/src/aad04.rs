//! The **Abraham–Amit–Dolev (OPODIS 2004)** optimal-resilience
//! asynchronous approximate agreement algorithm for *complete* networks
//! (`n > 3f`) — the algorithm that the paper's BW generalizes to directed
//! networks.
//!
//! Reconstruction (per the paper's Section 2 description of \[1\]): each
//! round, a node reliably broadcasts its value, collects the first `n−f`
//! delivered values into a *report*, reliably broadcasts the report, and
//! waits for `n−f` **witnesses** — nodes whose report and all reported
//! values it has itself RBC-delivered. Any two honest nodes then share
//! `n−2f ≥ f+1` witnesses, hence at least one *honest* witness, whose
//! report both hold: the pooled, `f`-trimmed value sets overlap, and the
//! midpoint update halves the spread per round exactly as BW's
//! Filter-and-Average does.

use crate::reliable_broadcast::{RbcEngine, RbcMsg};
use dbac_core::config::num_rounds;
use dbac_graph::NodeId;
use dbac_sim::process::{Context, Process};
use std::collections::{BTreeMap, HashMap, HashSet};

#[cfg(test)]
use dbac_graph::generators;

/// RBC payloads exchanged by the algorithm.
///
/// Values are carried as ordered bit patterns so the payload is `Eq + Hash`
/// (RBC counts votes on payload identity).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AadPayload {
    /// A round's state value (`f64` bits).
    Value {
        /// Round index.
        round: u32,
        /// `f64::to_bits` of the value.
        bits: u64,
    },
    /// A round's report: the first `n−f` `(sender, value-bits)` pairs.
    Report {
        /// Round index.
        round: u32,
        /// The collected pairs, sorted by sender.
        entries: Vec<(NodeId, u64)>,
    },
}

/// Wire message: RBC transport of [`AadPayload`].
pub type AadMsg = RbcMsg<AadPayload>;

struct AadRound {
    values: BTreeMap<NodeId, u64>,
    reported: bool,
    reports: BTreeMap<NodeId, Vec<(NodeId, u64)>>,
    witnesses: HashSet<NodeId>,
    fired: bool,
}

impl AadRound {
    fn new() -> Self {
        AadRound {
            values: BTreeMap::new(),
            reported: false,
            reports: BTreeMap::new(),
            witnesses: HashSet::new(),
            fired: false,
        }
    }
}

/// An honest AAD04 node.
pub struct AadNode {
    me: NodeId,
    n: usize,
    f: usize,
    rounds_total: u32,
    rbc: RbcEngine<AadPayload>,
    x: Vec<f64>,
    rounds: HashMap<u32, AadRound>,
    output: Option<f64>,
    /// Messages sent (for the E9 message-complexity comparison).
    pub sent: u64,
}

impl AadNode {
    /// Creates a node with the given input.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f`.
    #[must_use]
    pub fn new(
        me: NodeId,
        n: usize,
        f: usize,
        input: f64,
        epsilon: f64,
        range: (f64, f64),
    ) -> Self {
        AadNode {
            me,
            n,
            f,
            rounds_total: num_rounds(range.1 - range.0, epsilon),
            rbc: RbcEngine::new(me, n, f),
            x: vec![input],
            rounds: HashMap::new(),
            output: None,
            sent: 0,
        }
    }

    /// The decided output, once available.
    #[must_use]
    pub fn output(&self) -> Option<f64> {
        self.output
    }

    /// The state trajectory.
    #[must_use]
    pub fn x_history(&self) -> &[f64] {
        &self.x
    }

    /// Returns `true` once decided.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.output.is_some()
    }

    /// Overrides the round count derived from ε and the range (used by the
    /// scenario layer's `rounds` knob).
    #[must_use]
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds_total = rounds;
        self
    }

    fn rbc_send(&mut self, ctx: &mut Context<AadMsg>, msg: AadMsg) {
        // RBC messages go to everyone; self-processing is immediate.
        for w in ctx.out_neighbors().iter() {
            self.sent += 1;
            ctx.send(w, msg.clone());
        }
        self.handle_rbc(ctx, self.me, msg);
    }

    fn begin_round(&mut self, ctx: &mut Context<AadMsg>, round: u32) {
        let bits = self.x[round as usize].to_bits();
        let (_, init) = self.rbc.broadcast(AadPayload::Value { round, bits });
        self.rounds.entry(round).or_insert_with(AadRound::new);
        self.rbc_send(ctx, init);
    }

    fn handle_rbc(&mut self, ctx: &mut Context<AadMsg>, from: NodeId, msg: AadMsg) {
        let (outs, deliveries) = self.rbc.on_message(from, msg);
        for m in outs {
            for w in ctx.out_neighbors().iter() {
                self.sent += 1;
                ctx.send(w, m.clone());
            }
            // Feed our own sends back into the local engine (a node is a
            // participant in its own broadcasts).
            self.handle_rbc(ctx, self.me, m);
        }
        for d in deliveries {
            match d.payload {
                AadPayload::Value { round, bits } => self.on_value(ctx, round, d.origin, bits),
                AadPayload::Report { round, entries } => {
                    self.on_report(ctx, round, d.origin, entries);
                }
            }
        }
    }

    fn on_value(&mut self, ctx: &mut Context<AadMsg>, round: u32, sender: NodeId, bits: u64) {
        if round >= self.rounds_total {
            return;
        }
        let state = self.rounds.entry(round).or_insert_with(AadRound::new);
        state.values.entry(sender).or_insert(bits);
        self.refresh(ctx, round);
    }

    fn on_report(
        &mut self,
        ctx: &mut Context<AadMsg>,
        round: u32,
        sender: NodeId,
        entries: Vec<(NodeId, u64)>,
    ) {
        if round >= self.rounds_total || entries.len() != self.n - self.f {
            return;
        }
        let state = self.rounds.entry(round).or_insert_with(AadRound::new);
        state.reports.entry(sender).or_insert(entries);
        self.refresh(ctx, round);
    }

    /// Re-evaluates report emission, witness sets and round completion.
    fn refresh(&mut self, ctx: &mut Context<AadMsg>, round: u32) {
        // Borrow-friendly staging: compute decisions, then act.
        let (emit_report, advance): (Option<Vec<(NodeId, u64)>>, Option<f64>) = {
            let state = self.rounds.get_mut(&round).expect("state exists");
            let emit = if !state.reported && state.values.len() >= self.n - self.f {
                state.reported = true;
                Some(state.values.iter().take(self.n - self.f).map(|(&s, &b)| (s, b)).collect())
            } else {
                None
            };
            // Witness check: u is a witness if we hold u's report and every
            // reported (sender, value) pair matches our delivered values.
            for (&u, entries) in &state.reports {
                if state.witnesses.contains(&u) {
                    continue;
                }
                let confirmed =
                    entries.iter().all(|(s, b)| state.values.get(s).is_some_and(|mine| mine == b));
                if confirmed {
                    state.witnesses.insert(u);
                }
            }
            let advance = if !state.fired && state.witnesses.len() >= self.n - self.f {
                state.fired = true;
                // Pool all witnessed reports' values, dedup per sender
                // (RBC gives one value per sender), trim f per side.
                let mut pool: BTreeMap<NodeId, u64> = BTreeMap::new();
                for u in &state.witnesses {
                    if let Some(entries) = state.reports.get(u) {
                        for &(s, b) in entries {
                            pool.entry(s).or_insert(b);
                        }
                    }
                }
                let mut vals: Vec<f64> = pool.values().map(|&b| f64::from_bits(b)).collect();
                vals.sort_by(f64::total_cmp);
                let kept = &vals[self.f..vals.len() - self.f];
                Some((kept[0] + kept[kept.len() - 1]) / 2.0)
            } else {
                None
            };
            (emit, advance)
        };
        if let Some(entries) = emit_report {
            let (_, init) = self.rbc.broadcast(AadPayload::Report { round, entries });
            self.rbc_send(ctx, init);
        }
        if let Some(next) = advance {
            self.x.push(next);
            let next_round = round + 1;
            if next_round >= self.rounds_total {
                self.output = Some(next);
            } else {
                self.begin_round(ctx, next_round);
            }
        }
    }
}

impl Process for AadNode {
    type Message = AadMsg;

    fn on_start(&mut self, ctx: &mut Context<AadMsg>) {
        if self.rounds_total == 0 {
            self.output = Some(self.x[0]);
            return;
        }
        self.begin_round(ctx, 0);
    }

    fn on_message(&mut self, ctx: &mut Context<AadMsg>, from: NodeId, msg: AadMsg) {
        self.handle_rbc(ctx, from, msg);
    }

    fn classify(_msg: &AadMsg) -> dbac_sim::stats::MsgClass {
        dbac_sim::stats::MsgClass::Aad
    }
}

impl std::fmt::Debug for AadNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AadNode").field("me", &self.me).field("output", &self.output).finish()
    }
}

/// Byzantine behaviours for the AAD04 comparison runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AadAdversary {
    /// Silent from the start.
    Crash,
    /// Participates correctly but broadcasts an extreme input value.
    ConstantLiar {
        /// The injected value.
        value: f64,
    },
}

/// A liar that follows the protocol with a planted extreme value — RBC
/// prevents equivocation, so this is the strongest "value attack".
pub(crate) struct LiarAdversary {
    inner: AadNode,
}

impl LiarAdversary {
    /// Wraps a fully-configured node (input = the planted value); rounds
    /// must match the honest nodes' so the liar stays live to the end.
    pub(crate) fn from_node(inner: AadNode) -> Self {
        LiarAdversary { inner }
    }
}

impl dbac_sim::process::Adversary<AadMsg> for LiarAdversary {
    fn on_start(&mut self, ctx: &mut Context<AadMsg>) {
        self.inner.on_start(ctx);
    }
    fn on_message(&mut self, ctx: &mut Context<AadMsg>, from: NodeId, msg: AadMsg) {
        self.inner.on_message(ctx, from, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_core::error::RunError;
    use dbac_core::scenario::{FaultKind, Outcome, Scenario, SchedulerSpec};

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// The historical AAD04 run shape on the scenario surface: a complete
    /// `n`-node network under the legacy `[1, 15]` random schedule.
    fn run_aad(
        n: usize,
        f: usize,
        inputs: &[f64],
        epsilon: f64,
        byzantine: &[(NodeId, AadAdversary)],
        seed: u64,
    ) -> Result<Outcome, RunError> {
        Scenario::builder(generators::clique(n), f)
            .inputs(inputs.to_vec())
            .epsilon(epsilon)
            .faults(byzantine.iter().map(|&(v, kind)| {
                let fault = match kind {
                    AadAdversary::Crash => FaultKind::Crash,
                    AadAdversary::ConstantLiar { value } => FaultKind::ConstantLiar { value },
                };
                (v, fault)
            }))
            .scheduler(SchedulerSpec::legacy_random(seed))
            .protocol(crate::scenario::Aad04)
            .run()
    }

    #[test]
    fn all_honest_converges() {
        let out = run_aad(4, 1, &[0.0, 10.0, 4.0, 6.0], 0.5, &[], 3).unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid());
        assert!(out.honest_messages.unwrap() > 0);
    }

    #[test]
    fn tolerates_crash() {
        let out =
            run_aad(4, 1, &[0.0, 10.0, 4.0, 0.0], 0.5, &[(id(3), AadAdversary::Crash)], 9).unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid());
    }

    #[test]
    fn liar_cannot_break_validity() {
        let out = run_aad(
            4,
            1,
            &[2.0, 4.0, 6.0, 0.0],
            0.5,
            &[(id(3), AadAdversary::ConstantLiar { value: 1e9 })],
            5,
        )
        .unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid(), "{:?}", out.outputs);
    }

    #[test]
    fn larger_network_with_two_faults() {
        let inputs: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let out = run_aad(
            7,
            2,
            &inputs,
            0.5,
            &[(id(5), AadAdversary::Crash), (id(6), AadAdversary::ConstantLiar { value: -1e6 })],
            11,
        )
        .unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid());
    }

    #[test]
    fn resilience_bound_is_typed() {
        let err = run_aad(3, 1, &[0.0; 3], 0.5, &[], 0).unwrap_err();
        assert_eq!(
            err,
            RunError::ResilienceExceeded { protocol: "aad04", n: 3, f: 1, requires: "n > 3f" }
        );
    }
}
