//! `f`-covers of path sets (Definition 4).
//!
//! A node set `C` is an *f-cover* of a path set `P` if `|C| ≤ f` and every
//! path of `P` contains a node of `C` — i.e. a fault set of size `f` could
//! have tampered with every path in `P`. Algorithm 2 (Completeness) accepts
//! a value only when the paths carrying it have **no** f-cover avoiding the
//! source component, and Algorithm 3 (Filter-and-Average) trims exactly the
//! value prefixes/suffixes that *do* have an f-cover.
//!
//! Finding a minimum hitting set is NP-hard in general; here `f` is a small
//! constant and paths have at most `2n` nodes, so bounded-depth branching
//! is exact and fast: the search explores at most `(2n)^f` branches.

use dbac_graph::NodeSet;

/// Searches for an `f`-cover of `paths` using only nodes from `allowed`.
///
/// Paths are given by their node sets (the paper interprets paths as node
/// sets for covering purposes). Returns a *witness* cover if one exists.
///
/// The `allowed` mask implements the two restrictions the paper's proofs
/// impose on candidate covers: Algorithm 2 requires `H ⊆ V ∖ S_{F_u,F_w}`,
/// and a node never counts itself as a suspect (see DESIGN.md §3.2).
///
/// * An empty `paths` slice is covered by the empty set.
/// * A path disjoint from `allowed` can never be covered.
///
/// # Example
///
/// ```
/// use dbac_conditions::cover::find_cover;
/// use dbac_graph::{NodeId, NodeSet};
///
/// let p1: NodeSet = [NodeId::new(0), NodeId::new(1)].into_iter().collect();
/// let p2: NodeSet = [NodeId::new(1), NodeId::new(2)].into_iter().collect();
/// // Node 1 hits both paths.
/// let cover = find_cover(&[p1, p2], 1, NodeSet::universe(3)).expect("coverable");
/// assert_eq!(cover, NodeSet::singleton(NodeId::new(1)));
/// ```
#[must_use]
pub fn find_cover(paths: &[NodeSet], f: usize, allowed: NodeSet) -> Option<NodeSet> {
    search(paths, f, allowed, NodeSet::EMPTY)
}

/// Returns `true` if an `f`-cover of `paths` within `allowed` exists.
#[must_use]
pub fn has_cover(paths: &[NodeSet], f: usize, allowed: NodeSet) -> bool {
    find_cover(paths, f, allowed).is_some()
}

fn search(paths: &[NodeSet], budget: usize, allowed: NodeSet, chosen: NodeSet) -> Option<NodeSet> {
    // Find the first path not yet hit.
    let uncovered = paths.iter().find(|p| p.is_disjoint(chosen));
    let Some(&path) = uncovered else {
        return Some(chosen);
    };
    if budget == 0 {
        return None;
    }
    let candidates = path & allowed;
    if candidates.is_empty() {
        return None;
    }
    if budget == 1 {
        // Fast path: the single remaining pick must hit *all* uncovered
        // paths, i.e. lie in their common intersection.
        let mut common = candidates;
        for p in paths.iter().filter(|p| p.is_disjoint(chosen)) {
            common &= *p;
            if common.is_empty() {
                return None;
            }
        }
        let pick = common.first().expect("non-empty intersection");
        let mut cover = chosen;
        cover.insert(pick);
        return Some(cover);
    }
    for cand in candidates.iter() {
        let mut next = chosen;
        next.insert(cand);
        if let Some(cover) = search(paths, budget - 1, allowed, next) {
            return Some(cover);
        }
    }
    None
}

/// Verifies that `cover` is a genuine `f`-cover of `paths` (used by tests
/// and the experiment harness to cross-check witnesses).
#[must_use]
pub fn is_cover(paths: &[NodeSet], f: usize, cover: NodeSet) -> bool {
    cover.len() <= f && paths.iter().all(|p| !p.is_disjoint(cover))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::NodeId;

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn empty_path_set_is_covered_by_empty_set() {
        assert_eq!(find_cover(&[], 0, NodeSet::universe(4)), Some(NodeSet::EMPTY));
    }

    #[test]
    fn zero_budget_fails_on_any_path() {
        assert_eq!(find_cover(&[ns(&[0])], 0, NodeSet::universe(4)), None);
    }

    #[test]
    fn single_common_node() {
        let paths = [ns(&[0, 1, 2]), ns(&[2, 3]), ns(&[2, 4, 5])];
        let cover = find_cover(&paths, 1, NodeSet::universe(6)).unwrap();
        assert_eq!(cover, ns(&[2]));
        assert!(is_cover(&paths, 1, cover));
    }

    #[test]
    fn needs_two_nodes() {
        let paths = [ns(&[0, 1]), ns(&[2, 3]), ns(&[1, 2])];
        assert_eq!(find_cover(&paths, 1, NodeSet::universe(4)), None);
        let cover = find_cover(&paths, 2, NodeSet::universe(4)).unwrap();
        assert!(is_cover(&paths, 2, cover));
    }

    #[test]
    fn allowed_mask_blocks_candidates() {
        let paths = [ns(&[0, 1]), ns(&[1, 2])];
        // Node 1 covers both, but is disallowed (e.g. inside a source
        // component, per footnote 5 of the paper).
        let allowed = NodeSet::universe(3) - ns(&[1]);
        assert_eq!(find_cover(&paths, 1, allowed), None);
        let cover = find_cover(&paths, 2, allowed).unwrap();
        assert_eq!(cover, ns(&[0, 2]));
    }

    #[test]
    fn path_disjoint_from_allowed_is_uncoverable() {
        let paths = [ns(&[5])];
        assert_eq!(find_cover(&paths, 3, ns(&[0, 1, 2])), None);
    }

    #[test]
    fn three_budget_branching() {
        let paths = [ns(&[0]), ns(&[1]), ns(&[2])];
        let cover = find_cover(&paths, 3, NodeSet::universe(3)).unwrap();
        assert_eq!(cover, ns(&[0, 1, 2]));
        assert_eq!(find_cover(&paths, 2, NodeSet::universe(3)), None);
    }

    #[test]
    fn is_cover_rejects_oversized_or_missing() {
        let paths = [ns(&[0, 1])];
        assert!(!is_cover(&paths, 0, ns(&[0])));
        assert!(!is_cover(&paths, 2, ns(&[2, 3])));
        assert!(is_cover(&paths, 1, ns(&[1])));
    }

    #[test]
    fn exhaustive_cross_check_small_universe() {
        // Brute-force all subsets of a 5-node universe and compare with the
        // branching search on random-ish path systems.
        let systems: Vec<Vec<NodeSet>> = vec![
            vec![ns(&[0, 1]), ns(&[1, 2]), ns(&[3, 4])],
            vec![ns(&[0]), ns(&[0, 1, 2, 3, 4])],
            vec![ns(&[1, 2]), ns(&[2, 3]), ns(&[3, 1])],
            vec![ns(&[0, 2, 4]), ns(&[1, 3])],
        ];
        for paths in &systems {
            for f in 0..3 {
                let brute = dbac_graph::subsets::subsets_up_to(NodeSet::universe(5), f)
                    .into_iter()
                    .any(|c| is_cover(paths, f, c));
                assert_eq!(
                    has_cover(paths, f, NodeSet::universe(5)),
                    brute,
                    "mismatch for {paths:?} f={f}"
                );
            }
        }
    }
}
