//! Reduced graphs and source components (Definitions 5 and 6).
//!
//! The reduced graph `G_{F1,F2}` silences all *outgoing* links of nodes in
//! `F1 ∪ F2`; its **source component** `S_{F1,F2}` is the set of nodes that
//! still have directed paths to *every* node. The source component is the
//! paper's "source of common influence": Algorithm 2 (Completeness)
//! verifies values against source components, and Theorems 5, 11, 12 hinge
//! on their properties.

use dbac_graph::paths::reachable_from;
use dbac_graph::{Digraph, NodeId, NodeSet};
use std::collections::HashMap;

/// Computes the source component `S_{F1,F2}` of `g`: the nodes of the
/// reduced graph `G_{F1,F2}` (Definition 5) that reach all nodes.
///
/// By construction `S_{F1,F2} = S_{F2,F1}`, `S ∩ (F1 ∪ F2) = ∅` (silenced
/// nodes reach nobody but themselves), and the result is strongly connected
/// (paper remark after Definition 6). It may be empty when the graph is
/// poorly connected.
///
/// # Example
///
/// ```
/// use dbac_conditions::reduced::source_component;
/// use dbac_graph::{generators, NodeId, NodeSet};
///
/// let g = generators::clique(4);
/// let f1 = NodeSet::singleton(NodeId::new(0));
/// let s = source_component(&g, f1, NodeSet::EMPTY);
/// // The three unsilenced nodes still reach everyone.
/// assert_eq!(s.len(), 3);
/// assert!(!s.contains(NodeId::new(0)));
/// ```
#[must_use]
pub fn source_component(g: &Digraph, f1: NodeSet, f2: NodeSet) -> NodeSet {
    source_component_of_silenced(g, f1 | f2)
}

/// [`source_component`] keyed directly by the silenced set `F1 ∪ F2`.
#[must_use]
pub fn source_component_of_silenced(g: &Digraph, silenced: NodeSet) -> NodeSet {
    let reduced = g.reduced(silenced, NodeSet::EMPTY);
    let all = g.vertex_set();
    let mut s = NodeSet::EMPTY;
    for v in (all - silenced).iter() {
        if reachable_from(&reduced, v) == all {
            s.insert(v);
        }
    }
    s
}

/// Memoizing cache for source components, keyed by the silenced set.
///
/// The BW algorithm consults `S_{F_u,F_w}` for every pair of fault guesses;
/// the number of distinct *unions* is far smaller than the number of pairs.
#[derive(Debug, Default)]
pub struct SourceComponentCache {
    by_silenced: HashMap<NodeSet, NodeSet>,
}

impl SourceComponentCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `S_{F1,F2}`, computing it on first use.
    pub fn get(&mut self, g: &Digraph, f1: NodeSet, f2: NodeSet) -> NodeSet {
        let silenced = f1 | f2;
        *self
            .by_silenced
            .entry(silenced)
            .or_insert_with(|| source_component_of_silenced(g, silenced))
    }

    /// Number of distinct silenced sets cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_silenced.len()
    }

    /// Returns `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_silenced.is_empty()
    }
}

/// Returns `true` if node `q` can reach all of `V` in the reduced graph —
/// membership test without computing the whole component.
#[must_use]
pub fn is_in_source_component(g: &Digraph, f1: NodeSet, f2: NodeSet, q: NodeId) -> bool {
    let silenced = f1 | f2;
    if silenced.contains(q) {
        return false;
    }
    let reduced = g.reduced(silenced, NodeSet::EMPTY);
    reachable_from(&reduced, q) == g.vertex_set()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::{generators, scc};

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| id(i)).collect()
    }

    #[test]
    fn clique_source_component_is_complement_of_silenced() {
        let g = generators::clique(5);
        let s = source_component(&g, ns(&[0]), ns(&[2]));
        assert_eq!(s, ns(&[1, 3, 4]));
    }

    #[test]
    fn symmetric_in_f1_f2() {
        let g = generators::figure_1b_small();
        let f1 = ns(&[0]);
        let f2 = ns(&[5]);
        assert_eq!(source_component(&g, f1, f2), source_component(&g, f2, f1));
    }

    #[test]
    fn source_component_is_strongly_connected() {
        // Paper remark after Definition 6.
        let g = generators::figure_1b_small();
        for silenced in [ns(&[]), ns(&[0]), ns(&[1, 6]), ns(&[2, 3])] {
            let s = source_component_of_silenced(&g, silenced);
            assert!(
                scc::is_strongly_connected_within(&g.reduced(silenced, NodeSet::EMPTY), s),
                "S for silenced {silenced} not strongly connected"
            );
        }
    }

    #[test]
    fn silenced_nodes_are_excluded() {
        let g = generators::clique(4);
        let s = source_component(&g, ns(&[1]), ns(&[2]));
        assert!(s.is_disjoint(ns(&[1, 2])));
    }

    #[test]
    fn may_be_empty_without_connectivity() {
        // Directed path 0 -> 1 -> 2: silencing 0 leaves nobody reaching all.
        let g = generators::directed_path(3);
        assert_eq!(source_component_of_silenced(&g, ns(&[0])), NodeSet::EMPTY);
        // Even with nobody silenced only node 0 reaches everyone.
        assert_eq!(source_component_of_silenced(&g, NodeSet::EMPTY), ns(&[0]));
    }

    #[test]
    fn membership_test_agrees() {
        let g = generators::figure_1b_small();
        for silenced in [ns(&[]), ns(&[0]), ns(&[4, 7])] {
            let s = source_component_of_silenced(&g, silenced);
            for q in g.nodes() {
                assert_eq!(is_in_source_component(&g, silenced, NodeSet::EMPTY, q), s.contains(q));
            }
        }
    }

    #[test]
    fn cache_agrees_and_deduplicates_unions() {
        let g = generators::clique(5);
        let mut cache = SourceComponentCache::new();
        let a = cache.get(&g, ns(&[0]), ns(&[1]));
        let b = cache.get(&g, ns(&[1]), ns(&[0]));
        let c = cache.get(&g, ns(&[0, 1]), NodeSet::EMPTY);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(cache.len(), 1, "one distinct union cached once");
        assert_eq!(a, source_component(&g, ns(&[0]), ns(&[1])));
    }
}
