//! Reach sets (Definitions 2 and 15 of the paper).
//!
//! `reach_v(F) = {u ∈ V∖F : u has a directed path to v in G_{V∖F}}` — the
//! nodes whose influence can still flow to `v` after removing a suspected
//! fault set `F`. The node `v` itself is trivially in its own reach set.

use dbac_graph::paths::reaching_to;
use dbac_graph::{Digraph, NodeId, NodeSet};
use std::collections::HashMap;

/// Computes `reach_v(F)` in `g`.
///
/// Returns the empty set when `v ∈ F` (the definition requires
/// `F ⊆ V ∖ {v}`; callers quantify over sets excluding `v`).
///
/// # Example
///
/// ```
/// use dbac_conditions::reach::reach_set;
/// use dbac_graph::{Digraph, NodeId, NodeSet};
///
/// // 0 -> 1 -> 2: removing node 1 cuts 0's influence on 2.
/// let g = Digraph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let r = reach_set(&g, NodeId::new(2), NodeSet::singleton(NodeId::new(1)));
/// assert_eq!(r, NodeSet::singleton(NodeId::new(2)));
/// # Ok::<(), dbac_graph::GraphError>(())
/// ```
#[must_use]
pub fn reach_set(g: &Digraph, v: NodeId, removed: NodeSet) -> NodeSet {
    if removed.contains(v) {
        return NodeSet::EMPTY;
    }
    let keep = removed.complement_in(g.node_count());
    reaching_to(&g.induced(keep), v) & keep
}

/// Memoizing wrapper around [`reach_set`].
///
/// The condition checkers evaluate `reach_v(X)` for the same removal set
/// `X` across many nodes `v`; the cache stores, per removal set, the reach
/// set of *every* node at once.
#[derive(Debug, Default)]
pub struct ReachCache {
    /// removal set → reach set per node index (EMPTY for removed nodes).
    by_removed: HashMap<NodeSet, Vec<NodeSet>>,
}

impl ReachCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `reach_v(removed)`, computing and caching all nodes' reach
    /// sets for this removal set on first use.
    pub fn reach(&mut self, g: &Digraph, v: NodeId, removed: NodeSet) -> NodeSet {
        let entry = self.by_removed.entry(removed).or_insert_with(|| {
            let keep = removed.complement_in(g.node_count());
            let sub = g.induced(keep);
            (0..g.node_count())
                .map(|i| {
                    let u = NodeId::new(i);
                    if removed.contains(u) {
                        NodeSet::EMPTY
                    } else {
                        reaching_to(&sub, u) & keep
                    }
                })
                .collect()
        });
        entry[v.index()]
    }

    /// Number of distinct removal sets cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_removed.len()
    }

    /// Returns `true` if nothing has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| id(i)).collect()
    }

    #[test]
    fn contains_self() {
        let g = generators::clique(4);
        let r = reach_set(&g, id(0), NodeSet::EMPTY);
        assert!(r.contains(id(0)));
        assert_eq!(r, g.vertex_set());
    }

    #[test]
    fn clique_reach_is_everything_outside_f() {
        let g = generators::clique(5);
        let f = ns(&[1, 3]);
        assert_eq!(reach_set(&g, id(0), f), f.complement_in(5));
    }

    #[test]
    fn empty_when_v_removed() {
        let g = generators::clique(3);
        assert_eq!(reach_set(&g, id(0), ns(&[0])), NodeSet::EMPTY);
    }

    #[test]
    fn directed_chain_reach() {
        // 0 -> 1 -> 2 -> 3
        let g = dbac_graph::generators::directed_path(4);
        assert_eq!(reach_set(&g, id(3), NodeSet::EMPTY), NodeSet::universe(4));
        assert_eq!(reach_set(&g, id(0), NodeSet::EMPTY), ns(&[0]));
        // Removing 1 splits the chain.
        assert_eq!(reach_set(&g, id(3), ns(&[1])), ns(&[2, 3]));
    }

    #[test]
    fn paths_must_avoid_removed_nodes_entirely() {
        // 0 -> 1 -> 2 and 0 -> 2: removing 1 keeps the direct edge.
        let g = Digraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(reach_set(&g, id(2), ns(&[1])), ns(&[0, 2]));
    }

    #[test]
    fn cache_agrees_with_direct_computation() {
        let g = generators::figure_1b_small();
        let mut cache = ReachCache::new();
        for f_bits in [ns(&[]), ns(&[0]), ns(&[3, 5]), ns(&[1, 6])] {
            for v in g.nodes() {
                assert_eq!(cache.reach(&g, v, f_bits), reach_set(&g, v, f_bits));
            }
        }
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
    }
}
