//! The propagation relation `A ⇝_C B` (Definition 10).
//!
//! Set `A` *propagates in `C` to* `B` when either `B = ∅` or every `b ∈ B`
//! is reached by at least `f + 1` node-disjoint `(A, b)`-paths inside the
//! induced subgraph `G_C`. With at most `f` faults, at least one of those
//! paths survives — this is how common influence from a source component
//! reaches the rest of the network (Theorem 5).

use dbac_graph::maxflow::max_disjoint_paths_from_set;
use dbac_graph::{Digraph, NodeId, NodeSet};

/// Checks `A ⇝_C B` for fault bound `f` (Definition 10).
///
/// # Panics
///
/// Panics if `A ∩ B ≠ ∅` or `B ⊄ C`, which the definition requires.
#[must_use]
#[allow(clippy::int_plus_one)] // `≥ f + 1` is the paper's phrasing
pub fn propagates(g: &Digraph, a: NodeSet, b: NodeSet, c: NodeSet, f: usize) -> bool {
    assert!(a.is_disjoint(b), "Definition 10 requires A ∩ B = ∅");
    assert!(b.is_subset(c), "Definition 10 requires B ⊆ C");
    b.iter().all(|t| max_disjoint_paths_from_set(g, a, t, c) >= f + 1)
}

/// The witness variant: the first `b ∈ B` with fewer than `f + 1` disjoint
/// `(A, b)`-paths, with its achieved path count.
#[must_use]
pub fn propagation_violation(
    g: &Digraph,
    a: NodeSet,
    b: NodeSet,
    c: NodeSet,
    f: usize,
) -> Option<(NodeId, usize)> {
    b.iter().find_map(|t| {
        let k = max_disjoint_paths_from_set(g, a, t, c);
        (k < f + 1).then_some((t, k))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| id(i)).collect()
    }

    #[test]
    fn empty_b_always_propagates() {
        let g = generators::directed_path(3);
        assert!(propagates(&g, ns(&[0]), NodeSet::EMPTY, g.vertex_set(), 5));
    }

    #[test]
    fn clique_propagates_with_enough_sources() {
        let g = generators::clique(5);
        // A = {0,1,2}: every other node has 3 disjoint (A,b)-paths (direct edges).
        let a = ns(&[0, 1, 2]);
        let b = ns(&[3, 4]);
        assert!(propagates(&g, a, b, g.vertex_set(), 2));
        assert!(!propagates(&g, a, b, g.vertex_set(), 3));
    }

    #[test]
    fn chain_fails_beyond_f_zero() {
        let g = generators::directed_path(3);
        let a = ns(&[0]);
        let b = ns(&[2]);
        assert!(propagates(&g, a, b, g.vertex_set(), 0));
        assert!(!propagates(&g, a, b, g.vertex_set(), 1));
        assert_eq!(propagation_violation(&g, a, b, g.vertex_set(), 1), Some((id(2), 1)));
    }

    #[test]
    fn restriction_to_c_matters() {
        // A = {1, 2} reaches 3 along two fully node-disjoint routes;
        // restricting C to drop node 2 leaves one.
        let g = Digraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        let a = ns(&[1, 2]);
        let b = ns(&[3]);
        assert!(propagates(&g, a, b, g.vertex_set(), 1));
        let c = g.vertex_set() - ns(&[2]);
        assert!(!propagates(&g, a, b, c, 1));
        assert!(propagates(&g, a, b, c, 0));
    }

    #[test]
    fn node_disjointness_includes_initial_nodes() {
        // Definition 10's (A,b)-paths are pairwise node-disjoint including
        // their initial nodes: a singleton A yields at most one path, no
        // matter how many routes fan out of it.
        let g = Digraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
        assert!(!propagates(&g, ns(&[0]), ns(&[3]), g.vertex_set(), 1));
        assert!(propagates(&g, ns(&[0]), ns(&[3]), g.vertex_set(), 0));
    }

    #[test]
    #[should_panic(expected = "A ∩ B")]
    fn overlapping_a_b_panics() {
        let g = generators::clique(3);
        let _ = propagates(&g, ns(&[0]), ns(&[0, 1]), g.vertex_set(), 1);
    }

    #[test]
    #[should_panic(expected = "B ⊆ C")]
    fn b_outside_c_panics() {
        let g = generators::clique(3);
        let _ = propagates(&g, ns(&[0]), ns(&[1]), ns(&[0, 2]), 1);
    }
}
