//! The Tseng–Vaidya partition conditions **CCS**, **CCA**, **BCS**
//! (Definitions 16–18, from PODC'15), which Theorem 17 proves equivalent to
//! 1-reach, 2-reach and 3-reach respectively.
//!
//! Implementing both formulations lets the experiment harness *check* the
//! equivalence theorem on sampled graphs instead of assuming it
//! (experiment E7).
//!
//! All three checkers enumerate vertex partitions, which is `Θ(3^n)` —
//! fine for the graph sizes on which the equivalences are validated.

use dbac_graph::subsets::SubsetsUpTo;
use dbac_graph::{Digraph, NodeSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Returns `true` if `B` has at least `x` incoming neighbors in `A` — the
/// paper's `A →ˣ B` (Definition 14).
#[must_use]
pub fn has_x_incoming(g: &Digraph, a: NodeSet, b: NodeSet, x: usize) -> bool {
    (g.in_neighbors_of_set(b) & a).len() >= x
}

/// A partition `F, L, C, R` witnessing the violation of a partition
/// condition (`F` is empty for CCA).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionViolation {
    /// The fault part `F` (empty for CCA).
    pub f: NodeSet,
    /// The left part `L` (non-empty).
    pub l: NodeSet,
    /// The center part `C`.
    pub c: NodeSet,
    /// The right part `R` (non-empty).
    pub r: NodeSet,
    /// The in-neighbor threshold `x` that both directions failed to meet.
    pub threshold: usize,
}

impl fmt::Display for PartitionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "partition F={} L={} C={} R={} with L∪C ↛{} R and R∪C ↛{} L",
            self.f, self.l, self.c, self.r, self.threshold, self.threshold
        )
    }
}

/// Result of evaluating a partition condition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionOutcome {
    /// Every admissible partition satisfies one of the two directions.
    Holds,
    /// A violating partition exists.
    Violated(PartitionViolation),
}

impl PartitionOutcome {
    /// Returns `true` if the condition holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, PartitionOutcome::Holds)
    }

    /// The violating partition, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&PartitionViolation> {
        match self {
            PartitionOutcome::Holds => None,
            PartitionOutcome::Violated(w) => Some(w),
        }
    }
}

/// **Condition CCS** (Definition 16) — synchronous crash consensus: for
/// every partition `F, L, C, R` with `|F| ≤ f` and `L, R ≠ ∅`, either
/// `L∪C →¹ R` or `R∪C →¹ L`.
#[must_use]
pub fn ccs(g: &Digraph, f: usize) -> PartitionOutcome {
    check_partitions(g, f, |_| 1)
}

/// **Condition CCA** (Definition 17) — asynchronous crash approximate
/// consensus: for every partition `L, C, R` (no fault part) with
/// `L, R ≠ ∅`, either `L∪C →^{f+1} R` or `R∪C →^{f+1} L`.
#[must_use]
pub fn cca(g: &Digraph, f: usize) -> PartitionOutcome {
    check_partitions(g, 0, |_| f + 1)
}

/// **Condition BCS** (Definition 18) — synchronous Byzantine consensus
/// (and, by this paper, asynchronous Byzantine approximate consensus): for
/// every partition `F, L, C, R` with `|F| ≤ f` and `L, R ≠ ∅`, either
/// `L∪C →^{f+1} R` or `R∪C →^{f+1} L`.
#[must_use]
pub fn bcs(g: &Digraph, f: usize) -> PartitionOutcome {
    check_partitions(g, f, move |_| f + 1)
}

fn check_partitions(
    g: &Digraph,
    max_fault: usize,
    threshold: impl Fn(&NodeSet) -> usize,
) -> PartitionOutcome {
    let all = g.vertex_set();
    for fset in SubsetsUpTo::new(all, max_fault) {
        let rest: Vec<_> = (all - fset).iter().collect();
        let k = rest.len();
        if k < 2 {
            continue;
        }
        let x = threshold(&fset);
        // Assign each remaining node to L (0), C (1) or R (2).
        let mut assignment = vec![0u8; k];
        loop {
            let mut l = NodeSet::EMPTY;
            let mut c = NodeSet::EMPTY;
            let mut r = NodeSet::EMPTY;
            for (i, &node) in rest.iter().enumerate() {
                match assignment[i] {
                    0 => l.insert(node),
                    1 => c.insert(node),
                    _ => r.insert(node),
                };
            }
            if !l.is_empty()
                && !r.is_empty()
                && !has_x_incoming(g, l | c, r, x)
                && !has_x_incoming(g, r | c, l, x)
            {
                return PartitionOutcome::Violated(PartitionViolation {
                    f: fset,
                    l,
                    c,
                    r,
                    threshold: x,
                });
            }
            // Next base-3 assignment.
            let mut i = 0;
            loop {
                if i == k {
                    break;
                }
                if assignment[i] == 2 {
                    assignment[i] = 0;
                    i += 1;
                } else {
                    assignment[i] += 1;
                    break;
                }
            }
            if i == k {
                break;
            }
        }
    }
    PartitionOutcome::Holds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kreach;
    use dbac_graph::generators;
    use dbac_graph::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ns(ids: &[usize]) -> NodeSet {
        ids.iter().map(|&i| NodeId::new(i)).collect()
    }

    #[test]
    fn incoming_threshold() {
        let g = Digraph::from_edges(4, &[(0, 2), (1, 2), (0, 3)]).unwrap();
        let b = ns(&[2, 3]);
        assert!(has_x_incoming(&g, ns(&[0, 1]), b, 2));
        assert!(!has_x_incoming(&g, ns(&[0, 1]), b, 3));
        assert!(has_x_incoming(&g, ns(&[1]), b, 1));
        // Edges from inside B do not count (N⁻ excludes B).
        assert!(!has_x_incoming(&g, b, b, 1));
    }

    #[test]
    fn clique_thresholds() {
        // In a clique: CCA ⇔ n > 2f, BCS ⇔ n > 3f. CCS, like 1-reach,
        // holds unconditionally in a clique (any non-empty L has an
        // incoming neighbor from the rest), consistent with Theorem 17.
        for f in 1..=2 {
            for n in 2..=7 {
                let g = generators::clique(n);
                assert!(ccs(&g, f).holds(), "CCS n={n} f={f}");
                assert_eq!(cca(&g, f).holds(), n > 2 * f, "CCA n={n} f={f}");
                assert_eq!(bcs(&g, f).holds(), n > 3 * f, "BCS n={n} f={f}");
            }
        }
    }

    #[test]
    fn theorem_17_equivalences_on_random_graphs() {
        // CCS ⇔ 1-reach, CCA ⇔ 2-reach, BCS ⇔ 3-reach.
        let mut rng = SmallRng::seed_from_u64(2024);
        for trial in 0..15 {
            let g = generators::random_digraph(5, 0.45, &mut rng);
            for f in 0..=1 {
                assert_eq!(
                    ccs(&g, f).holds(),
                    kreach::one_reach(&g, f).holds(),
                    "CCS≠1-reach trial={trial} f={f} g={g:?}"
                );
                assert_eq!(
                    cca(&g, f).holds(),
                    kreach::two_reach(&g, f).holds(),
                    "CCA≠2-reach trial={trial} f={f} g={g:?}"
                );
                assert_eq!(
                    bcs(&g, f).holds(),
                    kreach::three_reach(&g, f).holds(),
                    "BCS≠3-reach trial={trial} f={f} g={g:?}"
                );
            }
        }
    }

    #[test]
    fn violation_witness_is_genuine() {
        let g = generators::clique(3);
        match bcs(&g, 1) {
            PartitionOutcome::Holds => panic!("K3 violates BCS for f=1"),
            PartitionOutcome::Violated(w) => {
                assert!(!w.l.is_empty() && !w.r.is_empty());
                assert!(w.f.len() <= 1);
                // The four parts partition V.
                assert_eq!(w.f | w.l | w.c | w.r, g.vertex_set());
                assert_eq!(w.f.len() + w.l.len() + w.c.len() + w.r.len(), 3);
                assert!(!has_x_incoming(&g, w.l | w.c, w.r, w.threshold));
                assert!(!has_x_incoming(&g, w.r | w.c, w.l, w.threshold));
                assert!(w.to_string().contains("partition"));
            }
        }
    }

    #[test]
    fn figure_1a_satisfies_bcs_f1() {
        assert!(bcs(&generators::figure_1a(), 1).holds());
    }

    #[test]
    fn directed_cycle_fails_bcs() {
        assert!(!bcs(&generators::directed_cycle(4), 1).holds());
    }

    #[test]
    fn single_node_graph_holds_vacuously() {
        let g = Digraph::new(1).unwrap();
        assert!(ccs(&g, 1).holds());
        assert!(cca(&g, 1).holds());
        assert!(bcs(&g, 1).holds());
    }
}
