//! `(r, s)`-robustness: the exact checker, certified sufficient
//! conditions, and the O(V+E) certificate verifier.
//!
//! Robustness (LeBlanc–Zhang–Koutsoukos–Sundaram) is the tight condition
//! for the *iterative* consensus family of the related work
//! (Vaidya–Tseng–Liang, arXiv 1201.4183 and its asynchronous Part II,
//! arXiv 1202.6094): under the `f`-total malicious model, W-MSR with
//! parameter `f` is correct iff the network is `(f+1, f+1)`-robust. The
//! exact decision procedure quantifies over subset pairs and is
//! exponential — fine at experiment scale, unusable past ~20 nodes — so
//! this subsystem splits the problem in three:
//!
//! * [`exact`] — the typed exponential checker
//!   ([`exact_verdict`] / [`is_r_s_robust`] / [`robustness_violation`]),
//!   rewritten with candidate pruning and early-exit witness search.
//! * [`sufficient`] — polynomial rules ([`certify`]) that issue a
//!   serializable [`RobustnessCertificate`] naming the rule, its
//!   parameters and per-node evidence; when none applies the result is a
//!   typed, non-fatal [`CertificationStatus::Uncertified`] warning.
//! * [`certificate`] — the certificate types and [`verify_certificate`],
//!   which re-checks any certificate in O(V+E) without re-running the
//!   search: certificates are trust-but-verify artifacts that ship next
//!   to large-n experiment outputs.
//!
//! [`certified`] wraps the scalable generator families
//! (`circulant`, `circulant_pow2`, `layered_expander`) into certified
//! constructions.
//!
//! # Example
//!
//! ```
//! use dbac_conditions::robustness::{certify, is_r_s_robust, verify_certificate};
//! use dbac_graph::generators;
//!
//! // K5 supports f = 1 ((2,2)-robust); the in-degree rule proves it in
//! // polynomial time and the exact checker agrees.
//! let g = generators::clique(5);
//! let cert = certify(&g, 2, 2).expect("a rule applies");
//! verify_certificate(&g, &cert).expect("O(V+E) re-check passes");
//! assert!(is_r_s_robust(&g, 2, 2));
//!
//! // At 10^4 nodes only the certificate path is feasible:
//! let big = generators::circulant_pow2(256);
//! let cert = certify(&big, 1, 1).expect("circulant window rule");
//! verify_certificate(&big, &cert).expect("still O(V+E)");
//! ```

pub mod certificate;
pub mod certified;
pub mod exact;
pub mod sufficient;

pub use certificate::{
    required_circulant_k, verify_certificate, CertificateError, CertificateRule,
    RobustnessCertificate,
};
pub use certified::CertifiedTopology;
pub use exact::{
    exact_verdict, is_r_s_robust, r_reachable_subset, robustness_violation, RobustnessVerdict,
    RobustnessViolation,
};
pub use sufficient::{certification, certify, CertificationStatus};
