//! Serializable robustness certificates and their O(V+E) verifier.
//!
//! A [`RobustnessCertificate`] is a *trust-but-verify* artifact: it names
//! the sufficient-condition rule that was applied, the rule's parameters,
//! and per-node evidence, and [`verify_certificate`] re-checks all of it
//! against the graph in O(V+E) — **without** re-running either the
//! exponential exact search or the polynomial rule discovery. A tampered
//! certificate (forged parameters, forged node evidence, wrong graph) is
//! rejected with a typed [`CertificateError`].
//!
//! Every rule's soundness argument lives with its issuer in
//! [`crate::robustness::sufficient`]; the verifier only needs to re-check
//! the *premises* (degrees, edges, connectivity, structure) and the
//! rule's arithmetic against the claimed `(r, s)`.

use dbac_graph::connectivity::is_strongly_connected;
use dbac_graph::{generators, Digraph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Renders a [`NodeSet`] as a JSON array of node indices.
#[must_use]
pub fn set_to_json(s: NodeSet) -> String {
    let mut out = String::from("[");
    for (i, v) in s.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.index().to_string());
    }
    out.push(']');
    out
}

/// The sufficient-condition rule a certificate rests on, with its
/// parameters. See [`crate::robustness::sufficient`] for each rule's
/// soundness argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertificateRule {
    /// `r = 0`, `s = 0`, or `n ≤ 1`: the definition is vacuous.
    Trivial,
    /// Every node has in-degree ≥ `⌊n/2⌋ + r − 1`, which forces the
    /// smaller side of any disjoint pair to be fully r-reachable.
    MinInDegree {
        /// The minimum in-degree over all nodes.
        min_in_degree: usize,
    },
    /// Every node `v` has the `k` consecutive circulant in-neighbors
    /// `v−1, …, v−k (mod n)` with `k ≥ max(2r−1, 2r−2+⌈s/2⌉)` — the
    /// k-circulant / in-degree criterion.
    CirculantPrefix {
        /// The consecutive-offset window bound used by the rule.
        k: usize,
    },
    /// The graph is strongly connected, which certifies `r ≤ 1, s ≤ 2`.
    StronglyConnected,
    /// The graph contains `generators::layered_expander(layers, width)`
    /// as a spanning subgraph, which certifies `r ≤ 1, s ≤ 4`.
    LayeredExpander {
        /// Number of layers in the template (≥ 2).
        layers: usize,
        /// Nodes per layer in the template (≥ 3).
        width: usize,
    },
}

impl CertificateRule {
    /// The rule's stable name (used in labels, tables and JSON).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CertificateRule::Trivial => "trivial",
            CertificateRule::MinInDegree { .. } => "min-in-degree",
            CertificateRule::CirculantPrefix { .. } => "circulant-prefix",
            CertificateRule::StronglyConnected => "strongly-connected",
            CertificateRule::LayeredExpander { .. } => "layered-expander",
        }
    }

    fn params_json(&self) -> String {
        match *self {
            CertificateRule::Trivial | CertificateRule::StronglyConnected => "{}".into(),
            CertificateRule::MinInDegree { min_in_degree } => {
                format!("{{\"min_in_degree\": {min_in_degree}}}")
            }
            CertificateRule::CirculantPrefix { k } => format!("{{\"k\": {k}}}"),
            CertificateRule::LayeredExpander { layers, width } => {
                format!("{{\"layers\": {layers}, \"width\": {width}}}")
            }
        }
    }
}

/// A machine-checkable claim that a graph is `(r, s)`-robust.
///
/// Produced by [`crate::robustness::certify`] and the certified
/// constructors in [`crate::robustness::certified`]; checked by
/// [`verify_certificate`] in O(V+E).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessCertificate {
    /// Node count of the graph the certificate was issued for.
    pub n: usize,
    /// The certified `r`.
    pub r: usize,
    /// The certified `s`.
    pub s: usize,
    /// The rule and its parameters.
    pub rule: CertificateRule,
    /// Per-node evidence; its meaning is rule-specific (in-degrees for
    /// `min-in-degree`, consecutive-prefix lengths for
    /// `circulant-prefix`, empty for the global rules) and the verifier
    /// recomputes it entry by entry, so a forged entry is rejected.
    pub evidence: Vec<u32>,
}

impl RobustnessCertificate {
    /// The certificate as a self-contained JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ev: Vec<String> = self.evidence.iter().map(ToString::to_string).collect();
        format!(
            "{{\"n\": {}, \"r\": {}, \"s\": {}, \"rule\": \"{}\", \"params\": {}, \
             \"evidence\": [{}]}}",
            self.n,
            self.r,
            self.s,
            self.rule.name(),
            self.rule.params_json(),
            ev.join(", ")
        )
    }
}

impl fmt::Display for RobustnessCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})-robust by {} on {} nodes", self.r, self.s, self.rule.name(), self.n)
    }
}

/// Why a certificate was rejected.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertificateError {
    /// The certificate was issued for a different node count.
    NodeCountMismatch {
        /// Node count claimed by the certificate.
        claimed: usize,
        /// Node count of the graph being verified against.
        actual: usize,
    },
    /// The claimed `(r, s)` is outside what the rule can certify.
    ParamsOutOfScope {
        /// The rule's name.
        rule: &'static str,
        /// The claimed `r`.
        r: usize,
        /// The claimed `s`.
        s: usize,
    },
    /// The evidence vector has the wrong length for the rule.
    EvidenceLength {
        /// The rule's name.
        rule: &'static str,
        /// The length the rule requires.
        expected: usize,
        /// The length found.
        got: usize,
    },
    /// A per-node evidence entry does not match the graph.
    EvidenceMismatch {
        /// The node whose entry is wrong.
        node: NodeId,
        /// The entry in the certificate.
        claimed: u32,
        /// The value recomputed from the graph.
        actual: u32,
    },
    /// The rule's arithmetic bound fails for the claimed `(r, s)`.
    BoundNotMet {
        /// The rule's name.
        rule: &'static str,
        /// The bound the rule needs.
        needed: usize,
        /// The quantity the graph provides.
        got: usize,
    },
    /// A structural edge the rule relies on is absent.
    MissingEdge {
        /// Tail of the missing edge.
        from: NodeId,
        /// Head of the missing edge.
        to: NodeId,
    },
    /// The strongly-connected rule was claimed on a disconnected graph.
    NotStronglyConnected,
    /// The rule's structural parameters do not describe this graph.
    BadShape {
        /// The rule's name.
        rule: &'static str,
        /// What went wrong.
        detail: &'static str,
    },
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::NodeCountMismatch { claimed, actual } => {
                write!(f, "certificate is for {claimed} nodes, graph has {actual}")
            }
            CertificateError::ParamsOutOfScope { rule, r, s } => {
                write!(f, "rule {rule} cannot certify (r, s) = ({r}, {s})")
            }
            CertificateError::EvidenceLength { rule, expected, got } => {
                write!(f, "rule {rule} needs {expected} evidence entries, found {got}")
            }
            CertificateError::EvidenceMismatch { node, claimed, actual } => {
                write!(f, "evidence for node {node} claims {claimed}, graph says {actual}")
            }
            CertificateError::BoundNotMet { rule, needed, got } => {
                write!(f, "rule {rule} needs {needed}, graph provides {got}")
            }
            CertificateError::MissingEdge { from, to } => {
                write!(f, "required edge {from} -> {to} is absent")
            }
            CertificateError::NotStronglyConnected => {
                write!(f, "graph is not strongly connected")
            }
            CertificateError::BadShape { rule, detail } => {
                write!(f, "rule {rule}: {detail}")
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// The circulant window the [`CertificateRule::CirculantPrefix`] rule
/// needs for `(r, s)`: `max(2r − 1, 2r − 2 + ⌈s/2⌉)`. The commonly quoted
/// `2(r + s) − 1` criterion implies this bound, so any graph passing the
/// quoted form also passes here. Meaningful for `r, s ≥ 1`.
#[must_use]
pub fn required_circulant_k(r: usize, s: usize) -> usize {
    (2 * r).saturating_sub(1).max((2 * r).saturating_sub(2) + s.div_ceil(2))
}

/// The longest consecutive circulant prefix at `v`: the largest `p` such
/// that every `v−1, …, v−p (mod n)` is an in-neighbor of `v`.
#[must_use]
pub fn circulant_prefix_len(g: &Digraph, v: NodeId, n: usize) -> u32 {
    let mut p = 0u32;
    for i in 1..n {
        let u = NodeId::new((v.index() + n - i) % n);
        if !g.has_edge(u, v) {
            break;
        }
        p += 1;
    }
    p
}

/// Re-checks `cert` against `g` in O(V+E), without re-running the search
/// that issued it.
///
/// # Errors
///
/// A typed [`CertificateError`] naming the first premise that failed:
/// wrong graph, parameters outside the rule's scope, forged per-node
/// evidence, or a missing structural edge.
pub fn verify_certificate(
    g: &Digraph,
    cert: &RobustnessCertificate,
) -> Result<(), CertificateError> {
    let n = g.node_count();
    if cert.n != n {
        return Err(CertificateError::NodeCountMismatch { claimed: cert.n, actual: n });
    }
    let expect_evidence = |expected: usize, rule: &'static str| {
        if cert.evidence.len() == expected {
            Ok(())
        } else {
            Err(CertificateError::EvidenceLength { rule, expected, got: cert.evidence.len() })
        }
    };
    match cert.rule {
        CertificateRule::Trivial => {
            expect_evidence(0, "trivial")?;
            if cert.r == 0 || cert.s == 0 || n <= 1 {
                Ok(())
            } else {
                Err(CertificateError::ParamsOutOfScope { rule: "trivial", r: cert.r, s: cert.s })
            }
        }
        CertificateRule::MinInDegree { min_in_degree } => {
            expect_evidence(n, "min-in-degree")?;
            let mut min = usize::MAX;
            for (i, v) in g.nodes().enumerate() {
                let actual = g.in_neighbors(v).len() as u32;
                if cert.evidence[i] != actual {
                    return Err(CertificateError::EvidenceMismatch {
                        node: v,
                        claimed: cert.evidence[i],
                        actual,
                    });
                }
                min = min.min(actual as usize);
            }
            if min_in_degree != min {
                return Err(CertificateError::BoundNotMet {
                    rule: "min-in-degree",
                    needed: min_in_degree,
                    got: min,
                });
            }
            // δ_in ≥ ⌊n/2⌋ + r − 1 certifies (r, s) for every s.
            let needed = n / 2 + cert.r.saturating_sub(1);
            if cert.r >= 1 && min >= needed {
                Ok(())
            } else {
                Err(CertificateError::BoundNotMet { rule: "min-in-degree", needed, got: min })
            }
        }
        CertificateRule::CirculantPrefix { k } => {
            expect_evidence(n, "circulant-prefix")?;
            if cert.r < 1 || cert.s < 1 {
                return Err(CertificateError::ParamsOutOfScope {
                    rule: "circulant-prefix",
                    r: cert.r,
                    s: cert.s,
                });
            }
            let needed = required_circulant_k(cert.r, cert.s);
            if k < needed || k > n.saturating_sub(1) {
                return Err(CertificateError::BoundNotMet {
                    rule: "circulant-prefix",
                    needed,
                    got: k,
                });
            }
            // Each prefix probe stops at the first absent edge, so the
            // whole pass is O(V+E) even on dense graphs.
            for (i, v) in g.nodes().enumerate() {
                let actual = circulant_prefix_len(g, v, n);
                if cert.evidence[i] != actual {
                    return Err(CertificateError::EvidenceMismatch {
                        node: v,
                        claimed: cert.evidence[i],
                        actual,
                    });
                }
                if (actual as usize) < k {
                    return Err(CertificateError::MissingEdge {
                        from: NodeId::new((v.index() + n - (actual as usize + 1)) % n),
                        to: v,
                    });
                }
            }
            Ok(())
        }
        CertificateRule::StronglyConnected => {
            expect_evidence(0, "strongly-connected")?;
            if cert.r > 1 || cert.s > 2 || cert.r < 1 || cert.s < 1 {
                return Err(CertificateError::ParamsOutOfScope {
                    rule: "strongly-connected",
                    r: cert.r,
                    s: cert.s,
                });
            }
            if n < 2 {
                return Err(CertificateError::BadShape {
                    rule: "strongly-connected",
                    detail: "needs at least 2 nodes (use the trivial rule below that)",
                });
            }
            if is_strongly_connected(g) {
                Ok(())
            } else {
                Err(CertificateError::NotStronglyConnected)
            }
        }
        CertificateRule::LayeredExpander { layers, width } => {
            expect_evidence(0, "layered-expander")?;
            if cert.r != 1 || cert.s < 1 || cert.s > 4 {
                return Err(CertificateError::ParamsOutOfScope {
                    rule: "layered-expander",
                    r: cert.r,
                    s: cert.s,
                });
            }
            if layers < 2 || width < 3 || layers * width != n {
                return Err(CertificateError::BadShape {
                    rule: "layered-expander",
                    detail: "layers/width do not tile the node count (layers ≥ 2, width ≥ 3)",
                });
            }
            // The template must be a spanning subgraph: extra edges only
            // strengthen robustness (X_S^r grows monotonically with
            // in-neighborhoods), so containment is what the rule needs.
            let template = generators::layered_expander(layers, width);
            for (u, v) in template.edges() {
                if !g.has_edge(u, v) {
                    return Err(CertificateError::MissingEdge { from: u, to: v });
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    #[test]
    fn required_k_matches_the_quoted_criterion() {
        // k ≥ 2(r+s)−1 (the commonly quoted form) always implies our
        // sharper bound, so the quoted criterion is honored.
        for r in 1..=5 {
            for s in 1..=5 {
                assert!(required_circulant_k(r, s) < 2 * (r + s), "r={r} s={s}");
            }
        }
        assert_eq!(required_circulant_k(1, 1), 1);
        assert_eq!(required_circulant_k(2, 2), 3);
    }

    #[test]
    fn wrong_graph_is_rejected() {
        let g = generators::clique(5);
        let cert = RobustnessCertificate {
            n: 6,
            r: 1,
            s: 1,
            rule: CertificateRule::Trivial,
            evidence: vec![],
        };
        assert!(matches!(
            verify_certificate(&g, &cert),
            Err(CertificateError::NodeCountMismatch { claimed: 6, actual: 5 })
        ));
    }

    #[test]
    fn prefix_len_probes_stop_at_the_gap() {
        let g = generators::circulant(8, &[1, 2, 4]);
        for v in g.nodes() {
            assert_eq!(circulant_prefix_len(&g, v, 8), 2, "offsets 1,2 form the prefix");
        }
        let full = generators::clique(4);
        for v in full.nodes() {
            assert_eq!(circulant_prefix_len(&full, v, 4), 3);
        }
    }
}
