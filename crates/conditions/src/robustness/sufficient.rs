//! Polynomial sufficient conditions for `(r, s)`-robustness.
//!
//! Each rule here is **sound**: when it issues a
//! [`RobustnessCertificate`], the graph really is `(r, s)`-robust. None
//! is complete — a robust graph may match no rule, which is exactly what
//! the typed `Uncertified` status is for. The differential harness
//! (`tests/robustness_differential.rs`) replays every issued certificate
//! against the exact exponential checker on all corpus graphs ≤ 12 nodes.
//!
//! # The rules and why they are sound
//!
//! Throughout, `S1, S2` is a disjoint non-empty pair and
//! `Xi = X_{Si}^r` its r-reachable subsets; a *violation* needs
//! `X1 ≠ S1`, `X2 ≠ S2` and `|X1| + |X2| < s`.
//!
//! **Trivial** (`r = 0`, `s = 0`, or `n ≤ 1`). With `r = 0` every node
//! has ≥ 0 outside in-neighbors, so `X_S^0 = S` always; with `s = 0` the
//! size clause holds vacuously; with `n ≤ 1` no disjoint non-empty pair
//! exists.
//!
//! **Minimum in-degree** (`δ_in ≥ ⌊n/2⌋ + r − 1` certifies `(r, s)` for
//! *every* `s`). The smaller side of a disjoint pair has
//! `|S| ≤ ⌊n/2⌋`, so each of its nodes keeps at least
//! `δ_in − (|S| − 1) ≥ ⌊n/2⌋ + r − 1 − ⌊n/2⌋ + 1 = r` in-neighbors
//! outside `S` — that side is fully r-reachable and the condition holds.
//!
//! **Circulant prefix** (every node `v` has in-neighbors
//! `v−1, …, v−k (mod n)`, `k ≥ max(2r−1, 2r−2+⌈s/2⌉)`). Write
//! `a(v) = |W_v ∩ S1|` for the window `W_v = {v−1, …, v−k}`. If
//! `X1 ≠ S1` some `u1 ∈ S1` has fewer than `r` in-neighbors outside
//! `S1`, hence `a(u1) ≥ k − r + 1`; symmetrically `u2 ∈ S2` gives
//! `a(u2) ≤ k − b(u2) ≤ r − 1`. Walking the circle one step at a time,
//! `a` changes by at most 1 per step and *increments only at steps whose
//! position is an `S1` node*. On the arc from `u2` to `u1` the value
//! must climb from ≤ `r − 1` to ≥ `k − r + 1`, so before it first
//! reaches `k − r + 1` there are at least `k − 2r + 2` increment steps —
//! each at a distinct `S1` node `p` with `a(p) ≤ k − r`, i.e. with ≥ `r`
//! window in-neighbors outside `S1`, so `p ∈ X1`. Thus
//! `|X1| ≥ k − 2r + 2`, and symmetrically `|X2| ≥ k − 2r + 2` on the
//! complementary arc; `k ≥ 2r − 2 + ⌈s/2⌉` makes the sum ≥ `s`. Extra
//! edges beyond the window only *add* outside in-neighbors, so the rule
//! applies to any supergraph of the consecutive circulant — the commonly
//! quoted "every node has ≥ 2(r+s)−1 circulant in-neighbors" criterion
//! is the special case `k = 2(r+s)−1`.
//!
//! **Strong connectivity** (certifies `r ≤ 1`, `s ≤ 2`). Every proper
//! non-empty `S` receives an edge from outside, so `|X_S^1| ≥ 1`; both
//! sides of a disjoint pair are proper, giving `|X1| + |X2| ≥ 2`.
//!
//! **Layered expander** (a spanning
//! [`generators::layered_expander`]`(L, w)` subgraph, `L ≥ 2`, `w ≥ 3`,
//! certifies `r = 1`, `s ≤ 4`). The template stays strongly connected
//! after removing any single vertex: a layer ring minus a node is still
//! a path, and of the ≥ 3 distinct forward fan targets at most one can
//! be the removed node. Consequently no proper `S` with `|S|, |V∖S| ≥ 2`
//! can funnel all incoming edges through one head (removing that head
//! would disconnect the rest), so `X_S^1 ≠ S` implies `|X_S^1| ≥ 2`
//! (singletons are always fully 1-reachable, and `|V∖S| = 1` gives `X_S`
//! at least the lone outside node's ≥ 2 ring successors). Both sides of
//! a violating pair therefore contribute 2, and `|X1| + |X2| ≥ 4 ≥ s`.
//! Extra edges again only help.

use super::certificate::{
    circulant_prefix_len, required_circulant_k, CertificateRule, RobustnessCertificate,
};
use dbac_graph::connectivity::is_strongly_connected;
use dbac_graph::{generators, Digraph};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of consulting the certificate rules for a topology: a
/// certificate, or a typed, non-fatal `Uncertified` warning.
///
/// `Uncertified` does **not** mean "not robust" — the rules are sound but
/// incomplete — it means the run rides on faith and should say so.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertificationStatus {
    /// A rule applied; the certificate is attached.
    Certified(RobustnessCertificate),
    /// No sufficient condition applied to this graph at these parameters.
    Uncertified {
        /// The `r` that was requested.
        r: usize,
        /// The `s` that was requested.
        s: usize,
    },
}

impl CertificationStatus {
    /// `true` when a certificate was issued.
    #[must_use]
    pub fn is_certified(&self) -> bool {
        matches!(self, CertificationStatus::Certified(_))
    }

    /// The certificate, if one was issued.
    #[must_use]
    pub fn certificate(&self) -> Option<&RobustnessCertificate> {
        match self {
            CertificationStatus::Certified(c) => Some(c),
            CertificationStatus::Uncertified { .. } => None,
        }
    }

    /// The rule name, or the literal `"UNCERTIFIED"` marker — the string
    /// reports and sweep labels carry.
    #[must_use]
    pub fn rule_label(&self) -> &'static str {
        match self {
            CertificationStatus::Certified(c) => c.rule.name(),
            CertificationStatus::Uncertified { .. } => "UNCERTIFIED",
        }
    }
}

impl fmt::Display for CertificationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificationStatus::Certified(c) => write!(f, "{c}"),
            CertificationStatus::Uncertified { r, s } => {
                write!(f, "UNCERTIFIED for ({r}, {s})-robustness")
            }
        }
    }
}

/// Tries every sufficient rule in order of cost and returns the first
/// certificate that applies, or `None`.
///
/// Rule order: trivial (O(1)), minimum in-degree (O(V+E)), circulant
/// prefix (O(V+E)), strong connectivity (O(V+E), only covers
/// `r ≤ 1, s ≤ 2`), layered-expander shape detection (O(d(n)·(V+E)) over
/// the divisors of `n`, only covers `r = 1, s ≤ 4`).
#[must_use]
pub fn certify(g: &Digraph, r: usize, s: usize) -> Option<RobustnessCertificate> {
    trivial_rule(g, r, s)
        .or_else(|| min_in_degree_rule(g, r, s))
        .or_else(|| circulant_prefix_rule(g, r, s))
        .or_else(|| strongly_connected_rule(g, r, s))
        .or_else(|| layered_expander_detect(g, r, s))
}

/// [`certify`] wrapped as a typed status: the certificate, or the
/// `Uncertified` warning carrying the requested parameters.
#[must_use]
pub fn certification(g: &Digraph, r: usize, s: usize) -> CertificationStatus {
    match certify(g, r, s) {
        Some(c) => CertificationStatus::Certified(c),
        None => CertificationStatus::Uncertified { r, s },
    }
}

/// The vacuous regimes: `r = 0`, `s = 0`, or `n ≤ 1`.
#[must_use]
pub fn trivial_rule(g: &Digraph, r: usize, s: usize) -> Option<RobustnessCertificate> {
    let n = g.node_count();
    (r == 0 || s == 0 || n <= 1).then(|| RobustnessCertificate {
        n,
        r,
        s,
        rule: CertificateRule::Trivial,
        evidence: vec![],
    })
}

/// The minimum-in-degree bound: `δ_in ≥ ⌊n/2⌋ + r − 1` certifies
/// `(r, s)`-robustness for every `s`. Evidence: each node's in-degree.
#[must_use]
pub fn min_in_degree_rule(g: &Digraph, r: usize, s: usize) -> Option<RobustnessCertificate> {
    let n = g.node_count();
    if r == 0 || s == 0 || n <= 1 {
        return None; // the trivial rule's territory
    }
    let degrees: Vec<u32> = g.nodes().map(|v| g.in_neighbors(v).len() as u32).collect();
    let min = degrees.iter().copied().min()? as usize;
    (min >= n / 2 + r - 1).then_some(RobustnessCertificate {
        n,
        r,
        s,
        rule: CertificateRule::MinInDegree { min_in_degree: min },
        evidence: degrees,
    })
}

/// The k-circulant criterion: every node has the consecutive circulant
/// in-neighbors `v−1, …, v−k` with `k ≥ max(2r−1, 2r−2+⌈s/2⌉)` (implied
/// by the commonly quoted `k ≥ 2(r+s)−1`). Evidence: each node's actual
/// consecutive-prefix length.
#[must_use]
pub fn circulant_prefix_rule(g: &Digraph, r: usize, s: usize) -> Option<RobustnessCertificate> {
    let n = g.node_count();
    if r == 0 || s == 0 || n <= 1 {
        return None;
    }
    let k = required_circulant_k(r, s);
    if k > n - 1 {
        return None;
    }
    let mut evidence = Vec::with_capacity(n);
    for v in g.nodes() {
        let p = circulant_prefix_len(g, v, n);
        if (p as usize) < k {
            return None;
        }
        evidence.push(p);
    }
    Some(RobustnessCertificate { n, r, s, rule: CertificateRule::CirculantPrefix { k }, evidence })
}

/// Strong connectivity certifies `(1, 2)`-robustness (hence `(1, 1)`).
#[must_use]
pub fn strongly_connected_rule(g: &Digraph, r: usize, s: usize) -> Option<RobustnessCertificate> {
    let n = g.node_count();
    if r != 1 || !(1..=2).contains(&s) || n < 2 {
        return None;
    }
    is_strongly_connected(g).then(|| RobustnessCertificate {
        n,
        r,
        s,
        rule: CertificateRule::StronglyConnected,
        evidence: vec![],
    })
}

/// The layered-expander composition rule with *known* template
/// parameters (the certified constructors call this directly).
#[must_use]
pub fn layered_expander_rule(
    g: &Digraph,
    layers: usize,
    width: usize,
    r: usize,
    s: usize,
) -> Option<RobustnessCertificate> {
    let n = g.node_count();
    if r != 1 || !(1..=4).contains(&s) || layers < 2 || width < 3 || layers * width != n {
        return None;
    }
    let template = generators::layered_expander(layers, width);
    let spanning = template.edges().all(|(u, v)| g.has_edge(u, v));
    spanning.then(|| RobustnessCertificate {
        n,
        r,
        s,
        rule: CertificateRule::LayeredExpander { layers, width },
        evidence: vec![],
    })
}

/// Detection form of the layered-expander rule for arbitrary graphs: try
/// every `(layers, width)` factorization of `n` and accept the first
/// whose template is a spanning subgraph.
#[must_use]
pub fn layered_expander_detect(g: &Digraph, r: usize, s: usize) -> Option<RobustnessCertificate> {
    let n = g.node_count();
    if r != 1 || !(1..=4).contains(&s) {
        return None;
    }
    for layers in 2..=n / 3 {
        if n % layers == 0 {
            let width = n / layers;
            if width >= 3 {
                if let Some(cert) = layered_expander_rule(g, layers, width, r, s) {
                    return Some(cert);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robustness::certificate::verify_certificate;
    use dbac_graph::generators;

    #[test]
    fn clique_certified_by_min_in_degree() {
        let g = generators::clique(5);
        let cert = certify(&g, 2, 2).expect("K5 is (2,2)-robust by δ_in = 4 ≥ 3");
        assert_eq!(cert.rule.name(), "min-in-degree");
        verify_certificate(&g, &cert).expect("verifies");
    }

    #[test]
    fn circulant_certified_for_f1() {
        // circulant(n, {1,2,3}) has the k = 3 window, enough for (2, 2).
        let g = generators::circulant(12, &[1, 2, 3]);
        let cert = certify(&g, 2, 2).expect("k = 3 ≥ required 3");
        assert_eq!(cert.rule.name(), "circulant-prefix");
        verify_certificate(&g, &cert).expect("verifies");
    }

    #[test]
    fn directed_cycle_certified_only_weakly() {
        let g = generators::directed_cycle(8);
        // (1,1) via the 1-window; (2,2) matches no rule (and is false).
        assert!(certify(&g, 1, 1).is_some());
        assert!(certify(&g, 2, 2).is_none());
    }

    #[test]
    fn layered_expander_detected_when_degree_rules_fail() {
        // 2 layers × 6: δ_in = 5 < ⌊12/2⌋, prefix window is 1, s = 3 is
        // out of the strong-connectivity rule's reach — only the layered
        // template matches.
        let g = generators::layered_expander(2, 6);
        let cert = certify(&g, 1, 3).expect("layered rule applies");
        assert_eq!(cert.rule.name(), "layered-expander");
        verify_certificate(&g, &cert).expect("verifies");
    }

    #[test]
    fn uncertified_is_a_typed_warning() {
        let status = certification(&generators::bidirectional_cycle(6), 2, 2);
        assert!(!status.is_certified());
        assert_eq!(status.rule_label(), "UNCERTIFIED");
        assert_eq!(status.to_string(), "UNCERTIFIED for (2, 2)-robustness");
    }
}
