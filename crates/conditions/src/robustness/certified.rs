//! Certified constructions: the scalable generator families from
//! [`dbac_graph::generators`] bundled with the [`RobustnessCertificate`]
//! their structure earns.
//!
//! The generators themselves live in `dbac-graph`, *below* this crate in
//! the dependency order, so the graph crate cannot issue certificates;
//! these wrappers are the certified front door. Each knows which rule its
//! family satisfies and calls that rule directly (falling back to the
//! full [`certify`] dispatcher, which may still cover small dense
//! instances through a different rule), so a `Some` here is a proven
//! construction, not a search result.

use super::certificate::{required_circulant_k, RobustnessCertificate};
use super::sufficient::{certify, circulant_prefix_rule, layered_expander_rule};
use dbac_graph::{generators, Digraph};
use serde::{Deserialize, Serialize};

/// A generator-built topology together with its robustness certificate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CertifiedTopology {
    /// The constructed graph.
    pub graph: Digraph,
    /// The certificate naming the rule that covers it.
    pub certificate: RobustnessCertificate,
}

/// The consecutive-offset circulant `circulant(n, {1, …, k})`, certified
/// `(r, s)`-robust when `k` reaches the rule's window bound
/// ([`required_circulant_k`]); denser instances may still certify
/// through another rule (a `k = n−1` circulant is a clique).
#[must_use]
pub fn circulant(n: usize, k: usize, r: usize, s: usize) -> Option<CertifiedTopology> {
    let offsets: Vec<usize> = (1..=k).collect();
    let graph = generators::circulant(n, &offsets);
    let certificate = if k >= required_circulant_k(r.max(1), s.max(1)) {
        circulant_prefix_rule(&graph, r, s).or_else(|| certify(&graph, r, s))
    } else {
        certify(&graph, r, s)
    }?;
    Some(CertifiedTopology { graph, certificate })
}

/// The power-of-two circulant ([`generators::circulant_pow2`]), whose
/// consecutive `{1, 2}` prefix certifies `r = 1` up to `s = 4` — the
/// family `scaling_iterative` runs at 10⁴ nodes with `f = 0`, i.e.
/// `(1, 1)`. Larger `(r, s)` fall back to the dispatcher (tiny instances
/// are dense enough for the in-degree rule) and may return `None`.
#[must_use]
pub fn circulant_pow2(n: usize, r: usize, s: usize) -> Option<CertifiedTopology> {
    let graph = generators::circulant_pow2(n);
    let certificate = certify(&graph, r, s)?;
    Some(CertifiedTopology { graph, certificate })
}

/// The layered expander ([`generators::layered_expander`]), certified by
/// its own composition rule for `r = 1, s ≤ 4`; other `(r, s)` fall back
/// to the dispatcher.
#[must_use]
pub fn layered_expander(
    layers: usize,
    width: usize,
    r: usize,
    s: usize,
) -> Option<CertifiedTopology> {
    let graph = generators::layered_expander(layers, width);
    let certificate =
        layered_expander_rule(&graph, layers, width, r, s).or_else(|| certify(&graph, r, s))?;
    Some(CertifiedTopology { graph, certificate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robustness::certificate::verify_certificate;

    #[test]
    fn certified_circulant_carries_the_stated_rule() {
        let ct = circulant(16, 3, 2, 2).expect("k = 3 certifies (2,2)");
        assert_eq!(ct.certificate.rule.name(), "circulant-prefix");
        verify_certificate(&ct.graph, &ct.certificate).expect("verifies");
    }

    #[test]
    fn certified_pow2_covers_the_scaling_run() {
        // The exact topology/parameters of the f = 0 scaling bin.
        let ct = circulant_pow2(64, 1, 1).expect("(1,1) always certifiable here");
        verify_certificate(&ct.graph, &ct.certificate).expect("verifies");
        // f = 1 wants (2,2): the {1,2} prefix is too narrow and the
        // graph is sparse — honestly uncertifiable by the rule set.
        assert!(circulant_pow2(64, 2, 2).is_none());
    }

    #[test]
    fn certified_layered_expander() {
        let ct = layered_expander(4, 8, 1, 4).expect("layered rule covers (1,4)");
        assert_eq!(ct.certificate.rule.name(), "layered-expander");
        verify_certificate(&ct.graph, &ct.certificate).expect("verifies");
        // A dense tiny instance still certifies (2,·) through fallback:
        // 2 layers × 3 is K6.
        let dense = layered_expander(2, 3, 2, 2).expect("K6 via min-in-degree");
        assert_eq!(dense.certificate.rule.name(), "min-in-degree");
    }
}
