//! The exact `(r, s)`-robustness decision procedure.
//!
//! Relocated from `dbac-baselines` (where it lived next to the W-MSR
//! loop) and rewritten: the original enumerated every *ordered pair* of
//! disjoint subsets as one base-3 assignment per node — `3^n` assignments
//! — recomputing both reachable subsets for each. This version enumerates
//! each subset **once** (`2^n` bitmasks), prunes every subset that can
//! never appear in a violating pair, and then searches candidate pairs in
//! ascending `|X_S^r|` order with an early exit, so a violation witness is
//! usually found long before the pair space is exhausted.
//!
//! Pruning is justified by two monotone facts about the definition:
//!
//! * a subset with `X_S^r = S` satisfies its side of the condition for
//!   *every* partner, so it never appears in a violation;
//! * a violating pair needs `|X_1| + |X_2| < s`, so any subset with
//!   `|X_S^r| ≥ s` is out, and once candidates are sorted by `|X|` the
//!   pair scan can stop as soon as the two smallest remaining sums reach
//!   `s`.
//!
//! The procedure is still exponential — that is inherent (the condition
//! quantifies over subset pairs) — but the base drops from 3 to 2 and
//! robust instances stop at the candidate filter. Past ~20 nodes even
//! `2^n` is the wrong tool: use the polynomial certificates in
//! [`crate::robustness::sufficient`] instead.

use super::certificate::set_to_json;
use dbac_graph::{Digraph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Returns the set `X_S^r` of nodes in `S` with at least `r` in-neighbors
/// outside `S` (the "r-reachable" nodes of `S`).
#[must_use]
pub fn r_reachable_subset(g: &Digraph, s: NodeSet, r: usize) -> NodeSet {
    s.iter().filter(|&v| (g.in_neighbors(v) - s).len() >= r).collect()
}

/// A concrete counterexample to `(r, s)`-robustness: a disjoint non-empty
/// pair whose r-reachable subsets are both proper and jointly smaller
/// than `s`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessViolation {
    /// First subset of the violating pair.
    pub s1: NodeSet,
    /// Second subset of the violating pair (disjoint from `s1`).
    pub s2: NodeSet,
    /// `X_{S1}^r` — properly contained in `s1`.
    pub x1: NodeSet,
    /// `X_{S2}^r` — properly contained in `s2`.
    pub x2: NodeSet,
}

impl fmt::Display for RobustnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S1 = {} with X1 = {}, S2 = {} with X2 = {}", self.s1, self.x1, self.s2, self.x2)
    }
}

impl RobustnessViolation {
    /// The violation as a JSON object (for certificate-adjacent reports).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"s1\": {}, \"s2\": {}, \"x1\": {}, \"x2\": {}}}",
            set_to_json(self.s1),
            set_to_json(self.s2),
            set_to_json(self.x1),
            set_to_json(self.x2)
        )
    }
}

/// The typed result of the exact check: robust, or a concrete witness.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustnessVerdict {
    /// The graph is `(r, s)`-robust.
    Robust,
    /// It is not; the witness pair is attached.
    NotRobust(RobustnessViolation),
}

impl RobustnessVerdict {
    /// `true` when the graph is robust.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, RobustnessVerdict::Robust)
    }

    /// The counterexample, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&RobustnessViolation> {
        match self {
            RobustnessVerdict::Robust => None,
            RobustnessVerdict::NotRobust(w) => Some(w),
        }
    }
}

impl fmt::Display for RobustnessVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobustnessVerdict::Robust => write!(f, "robust"),
            RobustnessVerdict::NotRobust(w) => write!(f, "not robust: {w}"),
        }
    }
}

/// `(r, s)`-robustness (LeBlanc–Zhang–Koutsoukos–Sundaram): for every
/// pair of disjoint non-empty `S1, S2 ⊆ V`, with `Xi` the r-reachable
/// subset of `Si`, at least one of `X1 = S1`, `X2 = S2`, or
/// `|X1| + |X2| ≥ s` holds. Under the `f`-total malicious model, W-MSR
/// with parameter `f` is correct iff the network is `(f+1, f+1)`-robust.
///
/// Exponential in `n` — see the module docs for the pruning strategy and
/// the size cliff. For large graphs use [`crate::robustness::certify`].
#[must_use]
pub fn is_r_s_robust(g: &Digraph, r: usize, s: usize) -> bool {
    exact_verdict(g, r, s).holds()
}

/// The witness variant of [`is_r_s_robust`]: a violating pair, if any.
#[must_use]
pub fn robustness_violation(g: &Digraph, r: usize, s: usize) -> Option<(NodeSet, NodeSet)> {
    exact_verdict(g, r, s).violation().map(|w| (w.s1, w.s2))
}

/// The exact decision procedure, with a typed verdict.
///
/// # Panics
///
/// Panics past 63 nodes, where the subset enumeration cannot even be
/// indexed — far beyond the practical cliff (~20 nodes) anyway.
#[must_use]
pub fn exact_verdict(g: &Digraph, r: usize, s: usize) -> RobustnessVerdict {
    let n = g.node_count();
    // Trivial regimes: with r = 0 every subset is fully 0-reachable
    // (X_S^0 = S), with s = 0 the size clause always holds, and with
    // n ≤ 1 no disjoint non-empty pair exists.
    if n <= 1 || r == 0 || s == 0 {
        return RobustnessVerdict::Robust;
    }
    assert!(
        n <= 63,
        "exact (r,s)-robustness enumerates 2^n subsets; n = {n} is past the cliff \
         (≤ 63 representable, ≤ ~20 practical) — use robustness::certify instead"
    );
    let nodes: Vec<NodeId> = g.nodes().collect();
    let in_nbrs: Vec<NodeSet> = nodes.iter().map(|&v| g.in_neighbors(v)).collect();
    let expand = |mask: u64| -> NodeSet {
        nodes.iter().enumerate().filter(|&(i, _)| mask & (1 << i) != 0).map(|(_, &v)| v).collect()
    };

    // Candidate filter: keep the subsets that could appear in a violating
    // pair — X_S^r proper in S and |X_S^r| < s.
    let mut candidates: Vec<(u64, u32)> = Vec::new();
    for mask in 1u64..(1u64 << n) {
        let set = expand(mask);
        let mut xlen = 0u32;
        let mut fully_reachable = true;
        for (i, &inn) in in_nbrs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                if (inn - set).len() >= r {
                    xlen += 1;
                } else {
                    fully_reachable = false;
                }
            }
        }
        if !fully_reachable && (xlen as usize) < s {
            candidates.push((mask, xlen));
        }
    }

    // Early-exit witness search over disjoint candidate pairs, smallest
    // |X| first: once the two smallest remaining |X| sums reach s, no
    // later pair can violate.
    candidates.sort_unstable_by_key(|&(_, xlen)| xlen);
    for (i, &(m1, x1)) in candidates.iter().enumerate() {
        match candidates.get(i + 1) {
            Some(&(_, next)) if ((x1 + next) as usize) < s => {}
            _ => break,
        }
        for &(m2, x2) in &candidates[i + 1..] {
            if ((x1 + x2) as usize) >= s {
                break;
            }
            if m1 & m2 == 0 {
                let s1 = expand(m1);
                let s2 = expand(m2);
                return RobustnessVerdict::NotRobust(RobustnessViolation {
                    x1: r_reachable_subset(g, s1, r),
                    x2: r_reachable_subset(g, s2, r),
                    s1,
                    s2,
                });
            }
        }
    }
    RobustnessVerdict::Robust
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    // The three robustness tests migrated from crates/baselines (the
    // checker's previous home), unchanged in substance.

    #[test]
    fn r_reachable_basics() {
        let g = generators::clique(4);
        let s: NodeSet = [id(0), id(1)].into_iter().collect();
        // Each of 0,1 has 2 in-neighbors outside {0,1}.
        assert_eq!(r_reachable_subset(&g, s, 2), s);
        assert_eq!(r_reachable_subset(&g, s, 3), NodeSet::EMPTY);
    }

    #[test]
    fn clique_robustness() {
        // K_n is (⌈n/2⌉, 1)-robust; K4 is (2,2)-robust (f=1 works).
        assert!(is_r_s_robust(&generators::clique(4), 2, 2));
        assert!(!is_r_s_robust(&generators::clique(4), 3, 1));
        // K3 is (2,2)-robust: every disjoint pair has a singleton side,
        // and a singleton in K3 sees both other nodes.
        assert!(is_r_s_robust(&generators::clique(3), 2, 2));
    }

    #[test]
    fn cycle_is_weakly_robust() {
        // A bidirectional cycle is (1,1)-robust but not (2,2)-robust.
        let g = generators::bidirectional_cycle(6);
        assert!(is_r_s_robust(&g, 1, 1));
        assert!(!is_r_s_robust(&g, 2, 2));
        let (s1, s2) = robustness_violation(&g, 2, 2).unwrap();
        assert!(!s1.is_empty() && !s2.is_empty() && s1.is_disjoint(s2));
    }

    #[test]
    fn verdict_witness_is_consistent() {
        let g = generators::directed_cycle(6);
        let w = exact_verdict(&g, 2, 2).violation().cloned().expect("cycle is not (2,2)-robust");
        // The witness must actually witness: proper reachable subsets,
        // disjoint sides, and a sum below s.
        assert!(w.s1.is_disjoint(w.s2));
        assert_eq!(w.x1, r_reachable_subset(&g, w.s1, 2));
        assert_eq!(w.x2, r_reachable_subset(&g, w.s2, 2));
        assert!(w.x1 != w.s1 && w.x2 != w.s2);
        assert!(w.x1.len() + w.x2.len() < 2);
    }

    #[test]
    fn trivial_regimes_are_robust() {
        let g = generators::directed_cycle(5);
        assert!(is_r_s_robust(&g, 0, 4), "r = 0: X_S^0 = S always");
        assert!(is_r_s_robust(&g, 4, 0), "s = 0: the size clause is free");
        assert!(is_r_s_robust(&generators::clique(1), 3, 3), "no disjoint pair on 1 node");
    }
}
