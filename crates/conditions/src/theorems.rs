//! Executable verifiers for the paper's structural theorems.
//!
//! These turn proof obligations into checkable invariants:
//!
//! * **Theorem 5** — under 3-reach, a source component `S_{F1,F2}`
//!   propagates (with `f + 1` disjoint paths) to everything outside it in
//!   both `G_{F̄1}` and `G_{F̄2}`.
//! * **Theorem 12** — under 3-reach, `S_{F_v,F_u} ∩ S_{F_v,F_w} ≠ ∅` for
//!   any admissible triple of fault sets (the overlap that makes the
//!   trimmed vectors of any two nodes intersect, Theorem 14).
//!
//! The property-test suites and the `equivalences` experiment run these
//! over sampled graphs.

use crate::propagate::propagates;
use crate::reduced::SourceComponentCache;
use dbac_graph::subsets::SubsetsUpTo;
use dbac_graph::{Digraph, NodeSet};

/// Checks the Theorem 5 conclusion for one pair `(F1, F2)`:
/// `S_{F1,F2} ⇝ (in G_{F̄1}) to F̄1 ∖ S` and likewise within `G_{F̄2}`.
#[must_use]
pub fn theorem5_holds_for(g: &Digraph, f: usize, f1: NodeSet, f2: NodeSet) -> bool {
    let s = crate::reduced::source_component(g, f1, f2);
    if s.is_empty() {
        return false;
    }
    let all = g.vertex_set();
    for removed in [f1, f2] {
        let within = all - removed;
        let b = within - s;
        // S may intersect `removed`? No: S avoids F1 ∪ F2, so S ⊆ within.
        if !propagates(g, s, b, within, f) {
            return false;
        }
    }
    true
}

/// Sweeps Theorem 5 over all `F1` with `|F1| ≤ f` and `F2 ⊆ F̄1` with
/// `|F2| ≤ f`; returns the first failing pair, or `None` if the theorem's
/// conclusion holds everywhere (as it must when `g` satisfies 3-reach).
#[must_use]
pub fn theorem5_sweep(g: &Digraph, f: usize) -> Option<(NodeSet, NodeSet)> {
    let all = g.vertex_set();
    for f1 in SubsetsUpTo::new(all, f) {
        for f2 in SubsetsUpTo::new(all - f1, f) {
            if !theorem5_holds_for(g, f, f1, f2) {
                return Some((f1, f2));
            }
        }
    }
    None
}

/// Checks the Theorem 12 conclusion for one triple:
/// `S_{F_v,F_u} ∩ S_{F_v,F_w} ≠ ∅`.
#[must_use]
pub fn theorem12_holds_for(
    g: &Digraph,
    cache: &mut SourceComponentCache,
    fv: NodeSet,
    fu: NodeSet,
    fw: NodeSet,
) -> bool {
    let s1 = cache.get(g, fv, fu);
    let s2 = cache.get(g, fv, fw);
    !s1.is_disjoint(s2)
}

/// Sweeps Theorem 12 over all admissible triples (`F_v ⊂ V`,
/// `F_u, F_w ⊆ V ∖ F_v`, all of size ≤ f); returns the first failing
/// triple, or `None`.
#[must_use]
pub fn theorem12_sweep(g: &Digraph, f: usize) -> Option<(NodeSet, NodeSet, NodeSet)> {
    let all = g.vertex_set();
    let mut cache = SourceComponentCache::new();
    for fv in SubsetsUpTo::new(all, f) {
        let rest: Vec<NodeSet> = SubsetsUpTo::new(all - fv, f).collect();
        for &fu in &rest {
            for &fw in &rest {
                if !theorem12_holds_for(g, &mut cache, fv, fu, fw) {
                    return Some((fv, fu, fw));
                }
            }
        }
    }
    None
}

/// The clique specialization of k-reach (Appendix A): in `K_n`, k-reach is
/// equivalent to `n > k·f`.
#[must_use]
pub fn clique_equivalent_bound(n: usize, k: usize, f: usize) -> bool {
    n > k * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kreach::three_reach;
    use dbac_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn theorem5_on_cliques() {
        // K4 satisfies 3-reach for f=1; the theorem conclusion must hold.
        let g = generators::clique(4);
        assert_eq!(theorem5_sweep(&g, 1), None);
    }

    #[test]
    fn theorem5_on_figure_1b_small() {
        let g = generators::figure_1b_small();
        assert!(three_reach(&g, 1).holds());
        assert_eq!(theorem5_sweep(&g, 1), None);
    }

    #[test]
    fn theorem5_fails_without_three_reach() {
        // K3 with f=1 violates 3-reach; some pair must break the conclusion.
        let g = generators::clique(3);
        assert!(theorem5_sweep(&g, 1).is_some());
    }

    #[test]
    fn theorem12_on_cliques_and_figure() {
        assert_eq!(theorem12_sweep(&generators::clique(4), 1), None);
        assert_eq!(theorem12_sweep(&generators::figure_1b_small(), 1), None);
    }

    #[test]
    fn theorem12_fails_on_directed_cycle() {
        assert!(theorem12_sweep(&generators::directed_cycle(4), 1).is_some());
    }

    #[test]
    fn theorems_hold_on_random_three_reach_graphs() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut found = 0;
        while found < 3 {
            let g = generators::random_digraph(5, 0.75, &mut rng);
            if three_reach(&g, 1).holds() {
                found += 1;
                assert_eq!(theorem5_sweep(&g, 1), None, "Theorem 5 failed on {g:?}");
                assert_eq!(theorem12_sweep(&g, 1), None, "Theorem 12 failed on {g:?}");
            }
        }
    }

    #[test]
    fn clique_bound_helper() {
        assert!(clique_equivalent_bound(4, 3, 1));
        assert!(!clique_equivalent_bound(3, 3, 1));
        assert!(clique_equivalent_bound(7, 3, 2));
    }
}
