//! The k-reach condition family (Definitions 3 and 20).
//!
//! * **1-reach** — tight for synchronous *crash* exact consensus.
//! * **2-reach** — tight for asynchronous *crash* approximate consensus.
//! * **3-reach** — tight for synchronous *Byzantine* exact consensus and —
//!   the paper's main result (Theorem 4) — for asynchronous *Byzantine*
//!   approximate consensus.
//!
//! The general family (Definition 20 as printed) is inconsistent with
//! Definition 3 at `k ∈ {2, 3}`; we implement the evident intent that makes
//! the family extend Definition 3: per side, `⌊k/2⌋` suspect sets of size
//! `≤ f` each, plus a *common* set `F` (`|F| ≤ f`) when `k` is odd. In a
//! clique this yields the classical `n > kf` (see
//! [`theorems::clique_equivalent_bound`](crate::theorems)).

use crate::reach::ReachCache;
use dbac_graph::subsets::SubsetsUpTo;
use dbac_graph::{Digraph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete counterexample to a reach condition: the pair of nodes whose
/// surviving influence sets are disjoint, and the removal sets achieving it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReachViolation {
    /// First node (the paper's `u`).
    pub u: NodeId,
    /// Second node (the paper's `v`).
    pub v: NodeId,
    /// The common suspect set `F` (empty for even `k`).
    pub common: NodeSet,
    /// The full removal set applied on `u`'s side (`F ∪ Fu ∪ …`).
    pub removed_u: NodeSet,
    /// The full removal set applied on `v`'s side (`F ∪ Fv ∪ …`).
    pub removed_v: NodeSet,
}

impl fmt::Display for ReachViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reach_{}({}) ∩ reach_{}({}) = ∅ (common suspects {})",
            self.u, self.removed_u, self.v, self.removed_v, self.common
        )
    }
}

/// The result of evaluating a condition: either it holds, or a concrete
/// violation witnesses why it does not.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConditionOutcome {
    /// The condition holds for every admissible choice of sets.
    Holds,
    /// The condition fails; a witness is attached.
    Violated(ReachViolation),
}

impl ConditionOutcome {
    /// Returns `true` if the condition holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, ConditionOutcome::Holds)
    }

    /// The violation, if any.
    #[must_use]
    pub fn violation(&self) -> Option<&ReachViolation> {
        match self {
            ConditionOutcome::Holds => None,
            ConditionOutcome::Violated(w) => Some(w),
        }
    }
}

impl fmt::Display for ConditionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConditionOutcome::Holds => write!(f, "holds"),
            ConditionOutcome::Violated(w) => write!(f, "violated: {w}"),
        }
    }
}

/// **1-reach** (Definition 3): for any `F` with `|F| ≤ f` and any
/// `u, v ∉ F`: `reach_u(F) ∩ reach_v(F) ≠ ∅`.
#[must_use]
pub fn one_reach(g: &Digraph, f: usize) -> ConditionOutcome {
    let mut cache = ReachCache::new();
    let all = g.vertex_set();
    for fset in SubsetsUpTo::new(all, f) {
        let outside = all - fset;
        if let Some(w) = check_pairwise(g, &mut cache, fset, fset, fset, outside, outside) {
            return ConditionOutcome::Violated(w);
        }
    }
    ConditionOutcome::Holds
}

/// **2-reach** (Definition 3): for any `u, v` and `F_u, F_v` with
/// `|F_u|, |F_v| ≤ f`, `u ∉ F_u`, `v ∉ F_v`:
/// `reach_v(F_v) ∩ reach_u(F_u) ≠ ∅`.
#[must_use]
pub fn two_reach(g: &Digraph, f: usize) -> ConditionOutcome {
    let mut cache = ReachCache::new();
    let all = g.vertex_set();
    let removals: Vec<NodeSet> = SubsetsUpTo::new(all, f).collect();
    for &ru in &removals {
        for &rv in &removals {
            if let Some(w) =
                check_pairwise(g, &mut cache, NodeSet::EMPTY, ru, rv, all - ru, all - rv)
            {
                return ConditionOutcome::Violated(w);
            }
        }
    }
    ConditionOutcome::Holds
}

/// **3-reach** (Definition 3) — the paper's tight condition for
/// asynchronous Byzantine approximate consensus (Theorem 4): for any
/// `F, F_u, F_v` of size `≤ f` and `u ∉ F ∪ F_u`, `v ∉ F ∪ F_v`:
/// `reach_v(F ∪ F_v) ∩ reach_u(F ∪ F_u) ≠ ∅`.
///
/// # Example
///
/// ```
/// use dbac_conditions::kreach::three_reach;
/// use dbac_graph::generators;
///
/// // Figure 1(b) satisfies 3-reach for f = 2 even though all-pair RMT fails.
/// // (Checked exhaustively by the `figure1` experiment; here the small
/// // 8-node analogue for f = 1.)
/// assert!(three_reach(&generators::figure_1b_small(), 1).holds());
/// ```
#[must_use]
pub fn three_reach(g: &Digraph, f: usize) -> ConditionOutcome {
    let mut cache = ReachCache::new();
    let all = g.vertex_set();
    let smalls: Vec<NodeSet> = SubsetsUpTo::new(all, f).collect();
    for &common in &smalls {
        // Distinct unions F ∪ Fx, deduplicated.
        let mut unions: Vec<NodeSet> = smalls.iter().map(|&s| s | common).collect();
        unions.sort_unstable();
        unions.dedup();
        for &ru in &unions {
            for &rv in &unions {
                if let Some(w) = check_pairwise(g, &mut cache, common, ru, rv, all - ru, all - rv) {
                    return ConditionOutcome::Violated(w);
                }
            }
        }
    }
    ConditionOutcome::Holds
}

/// The general **k-reach** condition (Definition 20, with the subscript
/// typo corrected as described in the module docs): per side `⌊k/2⌋`
/// suspect sets of size `≤ f`, plus a shared `F` when `k` is odd.
///
/// `k_reach(g, 1, f)`, `k_reach(g, 2, f)`, `k_reach(g, 3, f)` agree with
/// [`one_reach`], [`two_reach`], [`three_reach`].
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn k_reach(g: &Digraph, k: usize, f: usize) -> ConditionOutcome {
    assert!(k >= 1, "k-reach requires k ≥ 1");
    let per_side = (k / 2) * f;
    let mut cache = ReachCache::new();
    let all = g.vertex_set();
    let commons: Vec<NodeSet> =
        if k % 2 == 1 { SubsetsUpTo::new(all, f).collect() } else { vec![NodeSet::EMPTY] };
    // A union of m sets of size ≤ f each is exactly an arbitrary set of
    // size ≤ m·f, so each side's removal is `common ∪ B` with |B| ≤ per_side.
    let sides: Vec<NodeSet> = SubsetsUpTo::new(all, per_side).collect();
    for &common in &commons {
        let mut unions: Vec<NodeSet> = sides.iter().map(|&s| s | common).collect();
        unions.sort_unstable();
        unions.dedup();
        for &ru in &unions {
            for &rv in &unions {
                if let Some(w) = check_pairwise(g, &mut cache, common, ru, rv, all - ru, all - rv) {
                    return ConditionOutcome::Violated(w);
                }
            }
        }
    }
    ConditionOutcome::Holds
}

/// Checks `reach_u(ru) ∩ reach_v(rv) ≠ ∅` for all `u ∈ us`, `v ∈ vs`;
/// returns the first violation.
fn check_pairwise(
    g: &Digraph,
    cache: &mut ReachCache,
    common: NodeSet,
    ru: NodeSet,
    rv: NodeSet,
    us: NodeSet,
    vs: NodeSet,
) -> Option<ReachViolation> {
    for u in us.iter() {
        let reach_u = cache.reach(g, u, ru);
        for v in vs.iter() {
            let reach_v = cache.reach(g, v, rv);
            if reach_u.is_disjoint(reach_v) {
                return Some(ReachViolation { u, v, common, removed_u: ru, removed_v: rv });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_graph::generators;

    #[test]
    fn clique_thresholds_match_appendix_a() {
        // In a clique: 2-reach ⇔ n > 2f, 3-reach ⇔ n > 3f (Appendix A).
        // 1-reach holds *unconditionally* in a clique under the literal
        // Definition 3 (reach_u(F) = F̄ for every survivor), matching the
        // fact that crash consensus in complete graphs is solvable for any
        // f — Appendix A's "⇔ n > f" is vacuous in the n > f regime.
        for f in 1..=2 {
            for n in 2..=7 {
                let g = generators::clique(n);
                assert!(one_reach(&g, f).holds(), "1-reach n={n} f={f}");
                assert_eq!(two_reach(&g, f).holds(), n > 2 * f, "2-reach n={n} f={f}");
                assert_eq!(three_reach(&g, f).holds(), n > 3 * f, "3-reach n={n} f={f}");
            }
        }
    }

    #[test]
    fn k_reach_agrees_with_specializations() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(11);
        for _ in 0..8 {
            let g = generators::random_digraph(5, 0.5, &mut rng);
            for f in 0..=1 {
                assert_eq!(k_reach(&g, 1, f).holds(), one_reach(&g, f).holds());
                assert_eq!(k_reach(&g, 2, f).holds(), two_reach(&g, f).holds());
                assert_eq!(k_reach(&g, 3, f).holds(), three_reach(&g, f).holds());
            }
        }
    }

    #[test]
    fn k_reach_clique_threshold_generalizes() {
        // k-reach in a clique ⇔ n > k·f for k ≥ 2 (k = 1 is unconditional
        // in cliques; see `clique_thresholds_match_appendix_a`).
        for k in 2..=4 {
            for n in 2..=6 {
                let g = generators::clique(n);
                assert_eq!(k_reach(&g, k, 1).holds(), n > k, "k={k} n={n}");
            }
        }
    }

    #[test]
    fn conditions_are_monotone_in_strength() {
        // 3-reach ⇒ 2-reach ⇒ 1-reach (larger removals are harder).
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..12 {
            let g = generators::random_digraph(6, 0.45, &mut rng);
            if three_reach(&g, 1).holds() {
                assert!(two_reach(&g, 1).holds());
            }
            if two_reach(&g, 1).holds() {
                assert!(one_reach(&g, 1).holds());
            }
        }
    }

    #[test]
    fn violation_witness_is_genuine() {
        let g = generators::clique(3);
        match three_reach(&g, 1) {
            ConditionOutcome::Holds => panic!("K3 cannot satisfy 3-reach for f=1"),
            ConditionOutcome::Violated(w) => {
                use crate::reach::reach_set;
                let ru = reach_set(&g, w.u, w.removed_u);
                let rv = reach_set(&g, w.v, w.removed_v);
                assert!(ru.is_disjoint(rv));
                assert!(w.removed_u.len() <= 2 && w.removed_v.len() <= 2);
                assert!(w.common.is_subset(w.removed_u) && w.common.is_subset(w.removed_v));
            }
        }
    }

    #[test]
    fn f_zero_reduces_to_mutual_influence() {
        // With f = 0 all three conditions collapse to: every pair has a
        // common influencer.
        let g = generators::directed_path(3); // 0 -> 1 -> 2: node 0 reaches all
        assert!(one_reach(&g, 0).holds());
        assert!(three_reach(&g, 0).holds());
        let mut g2 = Digraph::new(3).unwrap();
        g2.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        // Node 2 is isolated: reach_2(∅) = {2} disjoint from reach_0(∅) = {0}.
        assert!(!one_reach(&g2, 0).holds());
    }

    #[test]
    fn figure_1a_satisfies_three_reach_for_f1() {
        assert!(three_reach(&generators::figure_1a(), 1).holds());
    }

    #[test]
    fn directed_cycle_fails_three_reach() {
        // A single faulty node disconnects influence in a directed ring.
        assert!(!three_reach(&generators::directed_cycle(5), 1).holds());
    }

    #[test]
    fn outcome_display() {
        let g = generators::clique(3);
        let out = three_reach(&g, 1);
        assert!(out.to_string().starts_with("violated"));
        assert!(!out.holds());
        assert!(out.violation().is_some());
        assert_eq!(one_reach(&g, 1).to_string(), "holds");
    }
}
