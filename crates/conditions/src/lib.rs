//! # dbac-conditions
//!
//! The topological conditions of *"Asynchronous Byzantine Approximate
//! Consensus in Directed Networks"* (PODC 2020), as executable checkers:
//!
//! * [`reach`] — reach sets `reach_v(F)` (Definition 2/15) with caching.
//! * [`reduced`] — reduced graphs `G_{F1,F2}` (Definition 5) and source
//!   components `S_{F1,F2}` (Definition 6).
//! * [`kreach`] — the **1-reach / 2-reach / 3-reach** conditions
//!   (Definition 3) and the general k-reach family (Definition 20). The
//!   paper's main result: 3-reach is tight for asynchronous Byzantine
//!   approximate consensus.
//! * [`partition`] — Tseng–Vaidya's **CCS / CCA / BCS** conditions
//!   (Definitions 16–18), proven equivalent to 1-/2-/3-reach in
//!   Theorem 17; both forms are implemented so the equivalence is
//!   *checked*, not assumed.
//! * [`cover`] — `f`-covers of path sets (Definition 4), the filtering
//!   primitive of Algorithms 2 and 3.
//! * [`propagate`] — the propagation relation `A ⇝_C B` (Definition 10).
//! * [`theorems`] — executable verifiers for Theorem 5 (source components
//!   propagate) and Theorem 12 (source components overlap).
//! * [`robustness`] — the related work's `(r, s)`-robustness (tight for
//!   iterative W-MSR consensus): a typed exact checker, polynomial
//!   sufficient conditions issuing serializable
//!   [`RobustnessCertificate`]s, and an O(V+E) certificate verifier so
//!   large-n topologies ship with proof instead of faith.
//!
//! # Example
//!
//! ```
//! use dbac_conditions::kreach;
//! use dbac_graph::generators;
//!
//! // In a clique, 3-reach ⇔ n > 3f (Appendix A).
//! assert!(kreach::three_reach(&generators::clique(4), 1).holds());
//! assert!(!kreach::three_reach(&generators::clique(3), 1).holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
pub mod kreach;
pub mod partition;
pub mod propagate;
pub mod reach;
pub mod reduced;
pub mod robustness;
pub mod theorems;

pub use kreach::{k_reach, one_reach, three_reach, two_reach, ConditionOutcome, ReachViolation};
pub use reach::{reach_set, ReachCache};
pub use reduced::{source_component, SourceComponentCache};
pub use robustness::{
    certify, verify_certificate, CertificationStatus, RobustnessCertificate, RobustnessVerdict,
};
