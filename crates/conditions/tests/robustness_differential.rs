//! Differential harness for the robustness subsystem, on three fronts:
//!
//! 1. **Sufficient rules vs. the exact checker** — on a corpus drawn from
//!    every generator/topology class at ≤ 12 nodes, every certificate the
//!    polynomial rules issue must be confirmed by the exponential exact
//!    checker (zero disagreements) *and* accepted by the O(V+E) verifier.
//! 2. **Exact-checker rewrite vs. the frozen reference** — the pruned
//!    2^n-mask search must agree with a verbatim copy of the retired
//!    base-3 enumeration from `dbac-baselines` on every corpus graph.
//! 3. **Verifier tamper-rejection (proptest)** — the verifier accepts
//!    every issued certificate and rejects mutated ones: inflated rule
//!    params, forged per-node evidence, padded evidence vectors, wrong
//!    node counts.

use dbac_conditions::robustness::{
    certify, exact_verdict, is_r_s_robust, verify_certificate, RobustnessVerdict,
};
use dbac_graph::{generators, Digraph, NodeId, NodeSet};
use proptest::proptest;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every generator/topology class in the workspace, instantiated at
/// ≤ 12 nodes so the exponential exact checker stays fast.
fn corpus() -> Vec<(String, Digraph)> {
    let mut graphs: Vec<(String, Digraph)> = Vec::new();
    for n in 2..=8 {
        graphs.push((format!("clique({n})"), generators::clique(n)));
    }
    for n in [4usize, 6, 9, 12] {
        graphs.push((format!("directed_cycle({n})"), generators::directed_cycle(n)));
        graphs.push((format!("bidirectional_cycle({n})"), generators::bidirectional_cycle(n)));
    }
    graphs.push(("directed_path(6)".into(), generators::directed_path(6)));
    graphs.push(("wheel(6)".into(), generators::wheel(6)));
    graphs.push(("wheel(9)".into(), generators::wheel(9)));
    graphs.push(("figure_1a".into(), generators::figure_1a()));
    graphs.push(("figure_1b_small".into(), generators::figure_1b_small()));
    graphs.push((
        "two_cliques_bridged(5)".into(),
        generators::two_cliques_bridged(5, &[(0, 0), (1, 1)], &[(2, 2), (3, 3), (4, 4)]),
    ));
    let circulants: [(usize, &[usize]); 5] =
        [(8, &[1]), (8, &[1, 2]), (9, &[1, 2, 3]), (12, &[1, 2, 3, 4]), (10, &[2, 5])];
    for (n, offsets) in circulants {
        graphs.push((format!("circulant({n},{offsets:?})"), generators::circulant(n, offsets)));
    }
    graphs.push(("circulant_pow2(8)".into(), generators::circulant_pow2(8)));
    graphs.push(("circulant_pow2(12)".into(), generators::circulant_pow2(12)));
    for (layers, width) in [(2usize, 3usize), (2, 4), (3, 3), (2, 6), (3, 4), (4, 3)] {
        graphs.push((
            format!("layered_expander({layers},{width})"),
            generators::layered_expander(layers, width),
        ));
    }
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        graphs.push((
            format!("random_digraph(8,0.3,{seed})"),
            generators::random_digraph(8, 0.3, &mut rng),
        ));
        graphs.push((
            format!("random_strongly_connected(10,0.25,{seed})"),
            generators::random_strongly_connected(10, 0.25, &mut rng),
        ));
        graphs.push((
            format!("random_undirected(9,0.4,{seed})"),
            generators::random_undirected(9, 0.4, &mut rng),
        ));
    }
    for (name, g) in &graphs {
        assert!(g.node_count() <= 12, "{name} exceeds the corpus size bound");
    }
    graphs
}

/// Every certificate a sufficient rule issues on the corpus must be
/// confirmed by the exact checker and accepted by the O(V+E) verifier —
/// zero disagreements across the full `(r, s)` grid.
#[test]
fn sufficient_rules_never_contradict_the_exact_checker() {
    let mut issued = 0usize;
    for (name, g) in corpus() {
        for r in 0..=3usize {
            for s in 0..=3usize {
                let Some(cert) = certify(&g, r, s) else { continue };
                issued += 1;
                verify_certificate(&g, &cert).unwrap_or_else(|e| {
                    panic!("{name} (r={r}, s={s}): issued certificate rejected: {e}")
                });
                assert!(
                    is_r_s_robust(&g, r, s),
                    "{name} (r={r}, s={s}): certified by {} but the exact checker disagrees",
                    cert.rule.name()
                );
            }
        }
    }
    // The corpus is rich enough that a silently inert rule set would show.
    assert!(issued > 200, "only {issued} certificates issued over the corpus");
}

/// Verbatim copy of the base-3 enumeration that shipped in
/// `dbac_baselines::iterative` through PR 9 — the frozen reference for the
/// rewritten exact checker.
fn reference_violation(g: &Digraph, r: usize, s: usize) -> Option<(NodeSet, NodeSet)> {
    let n = g.node_count();
    let nodes: Vec<NodeId> = g.nodes().collect();
    let reachable = |set: NodeSet| -> NodeSet {
        set.iter().filter(|&v| (g.in_neighbors(v) - set).len() >= r).collect()
    };
    let mut assignment = vec![0u8; n];
    loop {
        let mut s1 = NodeSet::EMPTY;
        let mut s2 = NodeSet::EMPTY;
        for (i, &v) in nodes.iter().enumerate() {
            match assignment[i] {
                1 => {
                    s1.insert(v);
                }
                2 => {
                    s2.insert(v);
                }
                _ => {}
            }
        }
        if !s1.is_empty() && !s2.is_empty() {
            let x1 = reachable(s1);
            let x2 = reachable(s2);
            if x1 != s1 && x2 != s2 && x1.len() + x2.len() < s {
                return Some((s1, s2));
            }
        }
        let mut i = 0;
        loop {
            if i == n {
                return None;
            }
            if assignment[i] == 2 {
                assignment[i] = 0;
                i += 1;
            } else {
                assignment[i] += 1;
                break;
            }
        }
    }
}

/// The pruned 2^n-mask rewrite must agree with the frozen base-3 reference
/// on every corpus graph small enough for the reference to enumerate.
#[test]
fn exact_rewrite_matches_the_frozen_reference() {
    for (name, g) in corpus() {
        if g.node_count() > 9 {
            continue; // 3^n makes the reference the bottleneck, not us
        }
        for r in 0..=3usize {
            for s in 0..=3usize {
                let expected = reference_violation(&g, r, s).is_none();
                let verdict = exact_verdict(&g, r, s);
                assert_eq!(
                    verdict.holds(),
                    expected,
                    "{name} (r={r}, s={s}): rewrite disagrees with the base-3 reference"
                );
                if let RobustnessVerdict::NotRobust(w) = &verdict {
                    // The rewrite's witness must itself be a genuine
                    // violation, not merely *some* pair.
                    assert!(!w.s1.is_empty() && !w.s2.is_empty() && w.s1.is_disjoint(w.s2));
                    assert!(w.x1.len() + w.x2.len() < s, "{name}: witness is not violating");
                }
            }
        }
    }
}

/// A deterministic corpus graph for the proptest cases: strongly connected
/// so certificates are plentiful, sized by the case index.
fn proptest_graph(seed: u64, n: usize) -> Digraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::random_strongly_connected(n, 0.45, &mut rng)
}

proptest! {
    /// The verifier accepts every certificate the rules issue.
    #[test]
    fn verifier_accepts_issued_certificates(
        seed in 0u64..64,
        n in 4usize..12,
        r in 1usize..4,
        s in 1usize..4,
    ) {
        let g = proptest_graph(seed, n);
        if let Some(cert) = certify(&g, r, s) {
            verify_certificate(&g, &cert).expect("issued certificate must verify");
        }
    }

    /// Tampering with the claimed parameters is rejected: inflating `r` to
    /// the node count breaks every rule's premise (for non-trivial certs),
    /// and shifting the node count is rejected outright.
    #[test]
    fn tampered_params_are_rejected(
        seed in 0u64..64,
        n in 4usize..12,
        r in 1usize..4,
        s in 1usize..4,
    ) {
        let g = proptest_graph(seed, n);
        if let Some(cert) = certify(&g, r, s) {
            let mut inflated = cert.clone();
            inflated.r = n;
            assert!(
                verify_certificate(&g, &inflated).is_err(),
                "rule {} accepted a forged r = n = {n}",
                cert.rule.name()
            );
            let mut shifted = cert;
            shifted.n += 1;
            assert!(verify_certificate(&g, &shifted).is_err(), "wrong node count accepted");
        }
    }

    /// Forged per-node evidence is rejected entry-by-entry, and padding an
    /// empty evidence vector is caught by the length check.
    #[test]
    fn forged_evidence_is_rejected(
        seed in 0u64..64,
        n in 4usize..12,
        r in 1usize..4,
        s in 1usize..4,
        victim in 0usize..12,
    ) {
        let g = proptest_graph(seed, n);
        if let Some(cert) = certify(&g, r, s) {
            let mut forged = cert.clone();
            if forged.evidence.is_empty() {
                forged.evidence.push(1);
                assert!(
                    verify_certificate(&g, &forged).is_err(),
                    "rule {} accepted padded evidence",
                    cert.rule.name()
                );
            } else {
                let i = victim % forged.evidence.len();
                forged.evidence[i] += 1;
                assert!(
                    verify_certificate(&g, &forged).is_err(),
                    "rule {} accepted forged evidence at {i}",
                    cert.rule.name()
                );
            }
        }
    }
}
