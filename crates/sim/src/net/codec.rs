//! Length-prefixed binary wire codec for the network runtime.
//!
//! Nothing in the workspace serializes through serde at runtime (the shim
//! is marker-only), so messages that cross a real byte stream use this
//! hand-rolled little-endian codec instead:
//!
//! ```text
//! frame    := len:u32le body:[u8; len]        (len ≤ MAX_FRAME)
//! body     := one encoded message (see each WireMessage impl)
//! ```
//!
//! The codec layer is **topology-agnostic and total**: any `u32` decodes
//! into a `PathId`-shaped field and any word run into a suspect set — the
//! protocol validation boundary (`validate_flood` / `validate_complete`)
//! is what rejects forged contents, exactly as it already does for
//! in-process adversaries. What the codec *does* enforce is structural
//! sanity: bounded frames, bounded node indices, known tags, and no
//! trailing bytes — every violation is a typed [`WireError`], never a
//! panic, so a Byzantine peer cannot wedge a reader loop.

use dbac_graph::{NodeId, NodeSet};
use std::io::{ErrorKind, Read, Write};

/// Protocol version byte exchanged in the connection handshake.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on a frame body, in bytes. An advertised length above this is
/// a framing error: the stream is unrecoverable and the connection closes.
pub const MAX_FRAME: usize = 1 << 20;

/// Typed decode / framing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before a fixed-size field (or a counted repetition)
    /// could be read.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Decoding succeeded but left unconsumed bytes in the frame.
    Trailing {
        /// Number of leftover bytes.
        extra: usize,
    },
    /// An enum tag byte outside the known range.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// A frame length prefix above [`MAX_FRAME`] (framing error — the
    /// stream is desynchronized and the connection must close).
    OversizeFrame {
        /// The advertised length.
        len: u64,
        /// The maximum allowed.
        max: u64,
    },
    /// A node index at or above the graph-layer `MAX_NODES` bound;
    /// constructing a [`NodeId`] from it would panic, so the decoder
    /// rejects it first.
    BadNodeId {
        /// The raw index from the wire.
        raw: u32,
    },
    /// Handshake magic bytes did not match.
    BadMagic {
        /// What arrived instead.
        got: [u8; 2],
    },
    /// Handshake version byte did not match [`WIRE_VERSION`].
    VersionMismatch {
        /// The peer's version.
        got: u8,
        /// Our version.
        want: u8,
    },
    /// The peer identified as a different node than the edge expects.
    PeerMismatch {
        /// The node id the peer claimed.
        got: u32,
        /// The node id the topology expects on this connection.
        want: u32,
    },
    /// An underlying transport I/O failure (kind only, to stay `Eq`).
    Io(ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated: needed {needed} bytes, had {available}")
            }
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            WireError::UnknownTag { tag } => write!(f, "unknown message tag {tag:#04x}"),
            WireError::OversizeFrame { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
            WireError::BadNodeId { raw } => write!(f, "node index {raw} out of range"),
            WireError::BadMagic { got } => write!(f, "bad handshake magic {got:02x?}"),
            WireError::VersionMismatch { got, want } => {
                write!(f, "wire version {got} (expected {want})")
            }
            WireError::PeerMismatch { got, want } => {
                write!(f, "peer identified as node {got} (expected {want})")
            }
            WireError::Io(kind) => write!(f, "transport i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

/// A bounds-checked cursor over one frame body.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a frame body.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { needed: n, available: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16 bytes")))
    }

    /// Reads an `f64` as its transparent bit pattern (NaN payloads and the
    /// `0.0`/`-0.0` distinction survive the wire bit-exactly).
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a node index and validates it against the graph-layer bound,
    /// so adversarial input can never reach the panicking `NodeId::new`.
    pub fn node_id(&mut self) -> Result<NodeId, WireError> {
        let raw = self.u32()?;
        if raw as usize >= dbac_graph::MAX_NODES {
            return Err(WireError::BadNodeId { raw });
        }
        Ok(NodeId::new(raw as usize))
    }

    /// Reads a [`NodeSet`] as its `NODE_WORDS` little-endian backing
    /// words (the width-honest form written by [`encode_node_set`]). The
    /// read is structural only — every bit pattern is a valid set.
    pub fn node_set(&mut self) -> Result<NodeSet, WireError> {
        let mut words = [0u64; dbac_graph::NODE_WORDS];
        for w in &mut words {
            *w = self.u64()?;
        }
        Ok(NodeSet::from_words(words))
    }

    /// Asserts the frame was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(WireError::Trailing { extra }),
        }
    }
}

/// A message with a canonical binary wire form.
///
/// `encode`/`decode` must round-trip **byte-identically**: re-encoding a
/// decoded message yields the original bytes (the differential tests rely
/// on this being true even for NaN float payloads, where structural
/// equality is unavailable).
pub trait WireMessage: Sized {
    /// Appends the canonical encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one message from the reader. Implementations must be total:
    /// any input yields `Ok` or a typed [`WireError`], never a panic.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// The canonical encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a complete frame body, rejecting trailing bytes.
    fn from_bytes(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(buf);
        let msg = Self::decode(&mut r)?;
        r.finish()?;
        Ok(msg)
    }
}

/// Bare `u64` payload — used by the runtime's own gossip tests.
impl WireMessage for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

/// Appends a [`NodeSet`]'s canonical wire form — its `NODE_WORDS`
/// little-endian backing words — to `out`. The fixed width keeps the
/// frame layout static per build; both endpoints share the binary, so
/// they always agree on it.
pub fn encode_node_set(set: NodeSet, out: &mut Vec<u8>) {
    for w in set.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Bytes a [`NodeSet`] occupies on the wire.
pub const NODE_SET_BYTES: usize = dbac_graph::NODE_WORDS * 8;

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// [`WireError::OversizeFrame`] if `body` exceeds [`MAX_FRAME`];
/// [`WireError::Io`] on transport failure.
pub fn write_frame(w: &mut dyn Write, body: &[u8]) -> Result<(), WireError> {
    if body.len() > MAX_FRAME {
        return Err(WireError::OversizeFrame { len: body.len() as u64, max: MAX_FRAME as u64 });
    }
    // One contiguous buffer → one write syscall per frame; at ~1M messages
    // per run the prefix+body split costs more in syscalls than the copy.
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Pulls length-prefixed frames off a byte stream whose reads may time out
/// (both transports hand the reader loop a short read timeout so it can
/// poll its stop flag instead of blocking forever).
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a readable half.
    pub fn new(inner: R) -> Self {
        FrameReader { inner }
    }

    /// Reads the next frame body.
    ///
    /// Returns `Ok(None)` on clean end-of-stream (EOF at a frame boundary)
    /// or when `stop` turns true mid-wait. EOF *inside* a frame is
    /// [`WireError::Truncated`]; an advertised length above [`MAX_FRAME`]
    /// is [`WireError::OversizeFrame`] — both leave the stream
    /// desynchronized, so callers must close the connection on `Err`.
    pub fn read_frame(&mut self, stop: &dyn Fn() -> bool) -> Result<Option<Vec<u8>>, WireError> {
        let mut prefix = [0u8; 4];
        if !self.fill(&mut prefix, true, stop)? {
            return Ok(None);
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME {
            return Err(WireError::OversizeFrame { len: len as u64, max: MAX_FRAME as u64 });
        }
        let mut body = vec![0u8; len];
        if !self.fill(&mut body, false, stop)? {
            return Ok(None);
        }
        Ok(Some(body))
    }

    /// Fills `buf`, retrying timeouts until `stop`. Returns `false` on a
    /// stop, or on EOF when `at_boundary` and nothing was read yet.
    fn fill(
        &mut self,
        buf: &mut [u8],
        at_boundary: bool,
        stop: &dyn Fn() -> bool,
    ) -> Result<bool, WireError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) => {
                    if at_boundary && filled == 0 {
                        return Ok(false);
                    }
                    return Err(WireError::Truncated { needed: buf.len(), available: filled });
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if stop() {
                        return Ok(false);
                    }
                }
                Err(e) => return Err(WireError::Io(e.kind())),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const NEVER: fn() -> bool = || false;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, body).unwrap();
        out
    }

    #[test]
    fn frame_round_trip() {
        let stream = [frame(b"alpha"), frame(b""), frame(b"bravo")].concat();
        let mut fr = FrameReader::new(Cursor::new(stream));
        assert_eq!(fr.read_frame(&NEVER).unwrap().unwrap(), b"alpha");
        assert_eq!(fr.read_frame(&NEVER).unwrap().unwrap(), b"");
        assert_eq!(fr.read_frame(&NEVER).unwrap().unwrap(), b"bravo");
        assert_eq!(fr.read_frame(&NEVER).unwrap(), None, "clean EOF at boundary");
    }

    #[test]
    fn truncated_prefix_is_an_error() {
        // Two bytes of a four-byte prefix, then EOF.
        let mut fr = FrameReader::new(Cursor::new(vec![9u8, 0]));
        assert_eq!(
            fr.read_frame(&NEVER).unwrap_err(),
            WireError::Truncated { needed: 4, available: 2 }
        );
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut bytes = frame(b"abcdef");
        bytes.truncate(bytes.len() - 2);
        let mut fr = FrameReader::new(Cursor::new(bytes));
        assert_eq!(
            fr.read_frame(&NEVER).unwrap_err(),
            WireError::Truncated { needed: 6, available: 4 }
        );
    }

    #[test]
    fn oversize_prefix_is_rejected_before_allocation() {
        let mut bytes = (u32::MAX - 7).to_le_bytes().to_vec();
        bytes.extend_from_slice(b"garbage");
        let mut fr = FrameReader::new(Cursor::new(bytes));
        match fr.read_frame(&NEVER).unwrap_err() {
            WireError::OversizeFrame { len, max } => {
                assert_eq!(len, u64::from(u32::MAX - 7));
                assert_eq!(max, MAX_FRAME as u64);
            }
            other => panic!("expected oversize, got {other:?}"),
        }
    }

    #[test]
    fn write_frame_refuses_oversize_bodies() {
        let body = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &body), Err(WireError::OversizeFrame { .. })));
        assert!(sink.is_empty(), "nothing written for a refused frame");
    }

    #[test]
    fn reader_primitives_and_trailing_check() {
        let mut body = Vec::new();
        body.push(7u8);
        body.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        body.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        let mut r = WireReader::new(&body);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.f64().unwrap(), 1.5);
        r.finish().unwrap();

        let mut r = WireReader::new(&body);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.finish().unwrap_err(), WireError::Trailing { extra: 12 });
    }

    #[test]
    fn node_id_bound_is_enforced() {
        let max = dbac_graph::MAX_NODES as u32;
        let bytes = max.to_le_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.node_id().unwrap_err(), WireError::BadNodeId { raw: max });
        let bytes = (max - 1).to_le_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.node_id().unwrap(), NodeId::new(max as usize - 1));
    }

    #[test]
    fn node_set_wire_round_trip() {
        let set: NodeSet =
            [0, 63, 64, 127, 128, dbac_graph::MAX_NODES - 1].into_iter().map(NodeId::new).collect();
        let mut bytes = Vec::new();
        encode_node_set(set, &mut bytes);
        assert_eq!(bytes.len(), NODE_SET_BYTES);
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.node_set().unwrap(), set);
        r.finish().unwrap();

        let mut r = WireReader::new(&bytes[..NODE_SET_BYTES - 1]);
        assert!(matches!(r.node_set().unwrap_err(), WireError::Truncated { .. }));
    }

    #[test]
    fn u64_wire_round_trip() {
        for v in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let bytes = v.to_bytes();
            assert_eq!(u64::from_bytes(&bytes).unwrap(), v);
        }
        assert_eq!(
            u64::from_bytes(&[1, 2, 3]).unwrap_err(),
            WireError::Truncated { needed: 8, available: 3 }
        );
        assert_eq!(u64::from_bytes(&[0; 9]).unwrap_err(), WireError::Trailing { extra: 1 });
    }
}
