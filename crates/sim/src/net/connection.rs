//! Framed duplex connections with a connect/accept handshake.
//!
//! One duplex byte stream per *unordered* node pair carries both directed
//! edges of that pair; each end is split into an owned writer half (held
//! by the node's event loop) and an owned reader half (pumped by a
//! dedicated reader thread). Two transports provide the bytes:
//!
//! * **loopback TCP** (`std::net`) — a fresh `127.0.0.1:0` listener per
//!   connection, connect then accept, `TCP_NODELAY` on;
//! * **in-process pipes** — a `Mutex<VecDeque<u8>>`/`Condvar` byte queue
//!   per direction, for sandboxes where binding a socket is not allowed.
//!
//! Both transports are **byte-real**: the codec layer sees an opaque
//! `Read`/`Write` stream either way, with the same short read timeout so
//! reader loops can poll their stop flag. [`TransportKind::Auto`] probes
//! for a bindable loopback socket once per run and falls back to pipes.
//!
//! The handshake exchanges `magic(2) ‖ version(1) ‖ node-id(4, u32le)` in
//! both directions before any frame flows, so a peer that speaks the wrong
//! protocol, the wrong version, or claims the wrong identity is rejected
//! with a typed [`WireError`] before it can inject traffic.

use super::codec::{WireError, WIRE_VERSION};
use dbac_graph::NodeId;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Handshake magic bytes ("dbac").
pub const HANDSHAKE_MAGIC: [u8; 2] = [0xDB, 0xAC];

/// Read timeout applied to every reader half, so pump loops can poll their
/// stop flag between blocking reads.
const READ_TIMEOUT: Duration = Duration::from_millis(10);

/// Wall-clock budget for a 7-byte handshake reply to arrive.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);

/// Which byte transport carries the frames.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Probe for loopback TCP once, fall back to in-process pipes.
    #[default]
    Auto,
    /// Loopback TCP via `std::net`.
    Tcp,
    /// In-process byte pipes (no sockets required).
    InProcess,
}

impl TransportKind {
    /// Resolves `Auto` by probing whether a loopback socket can be bound.
    #[must_use]
    pub fn resolve(self) -> TransportKind {
        match self {
            TransportKind::Auto => {
                if TcpListener::bind("127.0.0.1:0").is_ok() {
                    TransportKind::Tcp
                } else {
                    TransportKind::InProcess
                }
            }
            concrete => concrete,
        }
    }

    /// Short display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Auto => "auto",
            TransportKind::Tcp => "tcp",
            TransportKind::InProcess => "in-process",
        }
    }
}

/// One end of an established duplex connection, split into owned halves.
pub struct Duplex {
    /// The readable half (short read timeout pre-configured).
    pub reader: Box<dyn Read + Send>,
    /// The writable half.
    pub writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for Duplex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Duplex").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// In-process byte pipe
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Default)]
struct PipeShared {
    state: Mutex<PipeState>,
    cond: Condvar,
}

/// Read half of an in-process byte pipe. Blocks up to the shared read
/// timeout, then reports `WouldBlock` so callers can poll a stop flag —
/// the same contract a TCP stream with a read timeout provides.
pub struct PipeReader(Arc<PipeShared>);

/// Write half of an in-process byte pipe; dropping it closes the stream
/// (readers see EOF once the buffer drains).
pub struct PipeWriter(Arc<PipeShared>);

/// Creates a one-way in-process byte pipe.
#[must_use]
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(PipeShared::default());
    (PipeWriter(Arc::clone(&shared)), PipeReader(shared))
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.0.state.lock().expect("pipe poisoned");
        loop {
            if !state.buf.is_empty() {
                let n = buf.len().min(state.buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("len checked");
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            let (guard, wait) =
                self.0.cond.wait_timeout(state, READ_TIMEOUT).expect("pipe poisoned");
            state = guard;
            if wait.timed_out() && state.buf.is_empty() && !state.closed {
                return Err(std::io::Error::from(ErrorKind::WouldBlock));
            }
        }
    }
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut state = self.0.state.lock().expect("pipe poisoned");
        state.buf.extend(buf.iter().copied());
        self.0.cond.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().expect("pipe poisoned");
        state.closed = true;
        self.0.cond.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Connection establishment
// ---------------------------------------------------------------------------

fn tcp_pair() -> Result<(Duplex, Duplex), WireError> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    // Loopback connect completes through the kernel backlog without a
    // userspace accept, so connect-then-accept is safe sequentially.
    let connector = TcpStream::connect(addr)?;
    let (acceptor, _) = listener.accept()?;
    let mut ends = Vec::with_capacity(2);
    for stream in [connector, acceptor] {
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        reader.set_read_timeout(Some(READ_TIMEOUT))?;
        ends.push(Duplex { reader: Box::new(reader), writer: Box::new(stream) });
    }
    let acceptor = ends.pop().expect("two ends");
    let connector = ends.pop().expect("two ends");
    Ok((connector, acceptor))
}

fn pipe_pair() -> (Duplex, Duplex) {
    let (w_ab, r_ab) = pipe();
    let (w_ba, r_ba) = pipe();
    let a = Duplex { reader: Box::new(r_ba), writer: Box::new(w_ab) };
    let b = Duplex { reader: Box::new(r_ab), writer: Box::new(w_ba) };
    (a, b)
}

/// Creates a connected but not-yet-handshaken duplex pair over the
/// resolved transport.
///
/// # Errors
///
/// [`WireError::Io`] if the socket layer fails (TCP only).
pub fn duplex_pair(kind: TransportKind) -> Result<(Duplex, Duplex), WireError> {
    match kind.resolve() {
        TransportKind::Tcp => tcp_pair(),
        TransportKind::InProcess => Ok(pipe_pair()),
        TransportKind::Auto => unreachable!("resolve() never returns Auto"),
    }
}

/// Writes this end's 7-byte hello: magic, version, node id.
///
/// # Errors
///
/// [`WireError::Io`] on transport failure.
pub fn send_hello(w: &mut dyn Write, me: NodeId) -> Result<(), WireError> {
    let mut hello = [0u8; 7];
    hello[..2].copy_from_slice(&HANDSHAKE_MAGIC);
    hello[2] = WIRE_VERSION;
    hello[3..].copy_from_slice(&(me.index() as u32).to_le_bytes());
    w.write_all(&hello)?;
    w.flush()?;
    Ok(())
}

/// Reads and validates the peer's hello, returning the node it claims to
/// be. Tolerates read timeouts up to a fixed deadline (the peer's hello is
/// in flight during sequential setup).
///
/// # Errors
///
/// [`WireError::BadMagic`], [`WireError::VersionMismatch`] or
/// [`WireError::BadNodeId`] on a malformed hello; [`WireError::Truncated`]
/// on EOF mid-hello; [`WireError::Io`] on transport failure or deadline.
pub fn recv_hello(r: &mut dyn Read) -> Result<NodeId, WireError> {
    let mut hello = [0u8; 7];
    let deadline = Instant::now() + HANDSHAKE_DEADLINE;
    let mut filled = 0;
    while filled < hello.len() {
        match r.read(&mut hello[filled..]) {
            Ok(0) => return Err(WireError::Truncated { needed: 7, available: filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if Instant::now() >= deadline {
                    return Err(WireError::Io(ErrorKind::TimedOut));
                }
            }
            Err(e) => return Err(WireError::Io(e.kind())),
        }
    }
    if hello[..2] != HANDSHAKE_MAGIC {
        return Err(WireError::BadMagic { got: [hello[0], hello[1]] });
    }
    if hello[2] != WIRE_VERSION {
        return Err(WireError::VersionMismatch { got: hello[2], want: WIRE_VERSION });
    }
    let raw = u32::from_le_bytes(hello[3..].try_into().expect("4 bytes"));
    if raw as usize >= dbac_graph::MAX_NODES {
        return Err(WireError::BadNodeId { raw });
    }
    Ok(NodeId::new(raw as usize))
}

/// Establishes one handshaken duplex connection between nodes `u` (the
/// connector) and `v` (the acceptor): `u` sends its hello, `v` validates
/// it and replies, `u` validates the reply. Returns `(u_end, v_end)`.
///
/// # Errors
///
/// Any handshake [`WireError`], including [`WireError::PeerMismatch`] if
/// an end identifies as a node the edge does not expect.
pub fn establish(kind: TransportKind, u: NodeId, v: NodeId) -> Result<(Duplex, Duplex), WireError> {
    let (mut u_end, mut v_end) = duplex_pair(kind)?;
    send_hello(&mut *u_end.writer, u)?;
    let claimed = recv_hello(&mut *v_end.reader)?;
    if claimed != u {
        return Err(WireError::PeerMismatch {
            got: claimed.index() as u32,
            want: u.index() as u32,
        });
    }
    send_hello(&mut *v_end.writer, v)?;
    let claimed = recv_hello(&mut *u_end.reader)?;
    if claimed != v {
        return Err(WireError::PeerMismatch {
            got: claimed.index() as u32,
            want: v.index() as u32,
        });
    }
    Ok((u_end, v_end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn pipe_is_a_byte_stream_with_eof_on_writer_drop() {
        let (mut w, mut r) = pipe();
        w.write_all(b"abc").unwrap();
        let mut buf = [0u8; 2];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        drop(w);
        let mut rest = Vec::new();
        // Remaining buffered byte, then EOF.
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"c");
    }

    #[test]
    fn empty_pipe_read_times_out_as_would_block() {
        let (_w, mut r) = pipe();
        let err = r.read(&mut [0u8; 1]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock);
    }

    #[test]
    fn handshake_succeeds_on_both_transports() {
        for kind in [TransportKind::InProcess, TransportKind::Auto] {
            let (u_end, v_end) = establish(kind, id(2), id(5)).expect("handshake");
            drop((u_end, v_end));
        }
    }

    #[test]
    fn handshake_rejects_garbage() {
        // Bad magic.
        let mut bytes: &[u8] = &[0x00, 0x01, WIRE_VERSION, 0, 0, 0, 0];
        assert_eq!(recv_hello(&mut bytes).unwrap_err(), WireError::BadMagic { got: [0x00, 0x01] });
        // Wrong version.
        let mut bytes: &[u8] = &[0xDB, 0xAC, 99, 0, 0, 0, 0];
        assert_eq!(
            recv_hello(&mut bytes).unwrap_err(),
            WireError::VersionMismatch { got: 99, want: WIRE_VERSION }
        );
        // Node index out of range.
        let mut hello = vec![0xDB, 0xAC, WIRE_VERSION];
        hello.extend_from_slice(&4096u32.to_le_bytes());
        assert_eq!(
            recv_hello(&mut hello.as_slice()).unwrap_err(),
            WireError::BadNodeId { raw: 4096 }
        );
        // Truncated hello.
        let mut bytes: &[u8] = &[0xDB, 0xAC];
        assert_eq!(
            recv_hello(&mut bytes).unwrap_err(),
            WireError::Truncated { needed: 7, available: 2 }
        );
    }

    #[test]
    fn hello_round_trip_carries_the_node_id() {
        let mut buf = Vec::new();
        send_hello(&mut buf, id(42)).unwrap();
        assert_eq!(recv_hello(&mut buf.as_slice()).unwrap(), id(42));
    }
}
