//! Virtual time for the discrete-event simulator.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// A point in virtual time. Purely logical — the paper's asynchronous model
/// has no clocks; virtual time only orders event delivery and expresses
/// adversarial delays (e.g. the Appendix-B bound `T`).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// Time zero, when `on_start` handlers run.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// A time far beyond any realistic simulation horizon; used by
    /// adversarial schedulers to model "delayed past the decision point".
    pub const FAR_FUTURE: VirtualTime = VirtualTime(u64::MAX / 2);

    /// Creates a time from raw ticks.
    #[must_use]
    pub fn new(ticks: u64) -> Self {
        VirtualTime(ticks)
    }

    /// Raw tick count.
    #[must_use]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// This time advanced by `delay` ticks (saturating).
    #[must_use]
    pub fn after(self, delay: u64) -> Self {
        VirtualTime(self.0.saturating_add(delay))
    }
}

impl Add<u64> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: u64) -> VirtualTime {
        self.after(rhs)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let t = VirtualTime::new(5);
        assert!(VirtualTime::ZERO < t);
        assert_eq!(t.after(3), VirtualTime::new(8));
        assert_eq!(t + 3, VirtualTime::new(8));
        assert_eq!(t.ticks(), 5);
    }

    #[test]
    fn saturation() {
        assert_eq!(VirtualTime::new(u64::MAX).after(10).ticks(), u64::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(VirtualTime::new(42).to_string(), "t42");
    }
}
