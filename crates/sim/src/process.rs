//! Node behaviours: honest [`Process`] state machines and Byzantine
//! [`Adversary`] strategies, plus the [`Context`] through which both send.

use crate::stats::MsgClass;
use dbac_graph::{NodeId, NodeSet};

/// An event-driven honest node, matching the paper's model: nodes react to
/// message arrivals (and one initial activation) by updating local state
/// and sending messages over their outgoing edges.
pub trait Process {
    /// The wire message type.
    type Message: Clone + Send + 'static;

    /// Invoked once before any delivery (the paper's "flood your input at
    /// the start of the round").
    fn on_start(&mut self, ctx: &mut Context<Self::Message>);

    /// Invoked on each delivered message. `from` is the authenticated
    /// sender — the actual tail of the edge the message arrived on.
    fn on_message(&mut self, ctx: &mut Context<Self::Message>, from: NodeId, msg: Self::Message);

    /// Buckets a wire message for the live stats registry
    /// ([`crate::stats::StatsRegistry`]). Runtimes call this at each
    /// send/delivery so transport counters can be kept per message
    /// class. The default lumps everything into [`MsgClass::Other`];
    /// protocols override it to split their traffic.
    #[must_use]
    fn classify(_msg: &Self::Message) -> MsgClass {
        MsgClass::Other
    }
}

/// A Byzantine node. It sees exactly what an honest node would see, but may
/// send *any* well-typed messages over its own out-edges — including
/// fabricated protocol messages. It cannot forge the link a message arrives
/// on (links are authenticated) and cannot affect scheduling (delays belong
/// to the [`DeliveryPolicy`](crate::scheduler::DeliveryPolicy)).
pub trait Adversary<M> {
    /// Invoked once at start, like [`Process::on_start`].
    fn on_start(&mut self, ctx: &mut Context<M>);

    /// Invoked on each delivered message.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);
}

/// A crashed / completely silent node — the weakest Byzantine behaviour,
/// used both as a crash-fault model and in the Appendix-B construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Silent;

impl<M> Adversary<M> for Silent {
    fn on_start(&mut self, _ctx: &mut Context<M>) {}
    fn on_message(&mut self, _ctx: &mut Context<M>, _from: NodeId, _msg: M) {}
}

/// The sending surface handed to processes and adversaries.
///
/// Sends are restricted to the node's outgoing edges; attempting to send
/// elsewhere panics — it would violate the system model, so it is treated
/// as a programming error rather than a runtime condition.
#[derive(Debug)]
pub struct Context<M> {
    me: NodeId,
    out_neighbors: NodeSet,
    outbox: Vec<(NodeId, M)>,
}

impl<M> Context<M> {
    /// Creates a context for node `me` with the given out-neighborhood.
    /// Runtimes construct one per activation.
    #[must_use]
    pub fn new(me: NodeId, out_neighbors: NodeSet) -> Self {
        Context { me, out_neighbors, outbox: Vec::new() }
    }

    /// The node this context belongs to.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The node's outgoing neighborhood `N⁺`.
    #[must_use]
    pub fn out_neighbors(&self) -> NodeSet {
        self.out_neighbors
    }

    /// Queues `msg` for delivery to the out-neighbor `to`.
    ///
    /// # Panics
    ///
    /// Panics if `(me, to)` is not an edge of the network — the model only
    /// permits transmission along existing directed links.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.out_neighbors.contains(to),
            "{} attempted to send to non-neighbor {}",
            self.me,
            to
        );
        self.outbox.push((to, msg));
    }

    /// Sends a clone of `msg` to every out-neighbor (local broadcast).
    pub fn broadcast(&mut self, msg: &M)
    where
        M: Clone,
    {
        for w in self.out_neighbors.iter() {
            self.outbox.push((w, msg.clone()));
        }
    }

    /// Drains the queued sends (runtime-internal).
    pub fn take_outbox(&mut self) -> Vec<(NodeId, M)> {
        std::mem::take(&mut self.outbox)
    }

    /// Number of queued sends.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context<u32> {
        let neigh: NodeSet = [NodeId::new(1), NodeId::new(2)].into_iter().collect();
        Context::new(NodeId::new(0), neigh)
    }

    #[test]
    fn send_to_neighbor_queues() {
        let mut c = ctx();
        c.send(NodeId::new(1), 42);
        assert_eq!(c.pending(), 1);
        assert_eq!(c.take_outbox(), vec![(NodeId::new(1), 42)]);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_to_non_neighbor_panics() {
        let mut c = ctx();
        c.send(NodeId::new(3), 42);
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let mut c = ctx();
        c.broadcast(&7);
        let out = c.take_outbox();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&(NodeId::new(1), 7)));
        assert!(out.contains(&(NodeId::new(2), 7)));
    }

    #[test]
    fn silent_adversary_sends_nothing() {
        let mut s = Silent;
        let mut c = ctx();
        Adversary::<u32>::on_start(&mut s, &mut c);
        s.on_message(&mut c, NodeId::new(1), 3);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn accessors() {
        let c = ctx();
        assert_eq!(c.me(), NodeId::new(0));
        assert_eq!(c.out_neighbors().len(), 2);
    }
}
