//! The deterministic discrete-event simulator.

use crate::chaos::{EdgeCounters, LinkDecision, LinkFaultPlan};
use crate::error::SimError;
use crate::process::{Adversary, Context, Process};
use crate::scheduler::DeliveryPolicy;
use crate::stats::{StatsHandle, StatsRegistry};
use crate::time::VirtualTime;
use crate::trace::Trace;
use dbac_graph::{Digraph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Counters describing a finished (or aborted) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the delivery queue.
    pub messages_sent: u64,
    /// Messages delivered to a recipient's handler.
    pub messages_delivered: u64,
    /// Messages still queued past the horizon when the run stopped
    /// (non-zero only with adversarial far-future delays).
    pub messages_undelivered: u64,
    /// Messages destroyed by a link-fault plan (drop, partition, omit).
    pub messages_dropped: u64,
    /// Extra copies injected by a link-fault plan's duplication faults.
    pub messages_duplicated: u64,
    /// Messages damaged in flight by a link-fault plan and discarded on
    /// receipt (counted separately from clean drops).
    pub messages_corrupted: u64,
    /// Frames that arrived over a real byte stream but failed to decode
    /// and were discarded by the receiver ([`Runtime::Net`]-only — the
    /// in-process runtimes never serialize, so this stays zero there).
    ///
    /// [`Runtime::Net`]: https://docs.rs/dbac/latest/dbac/scenario/enum.Runtime.html
    pub messages_rejected: u64,
    /// Virtual time of the last delivery.
    pub final_time: VirtualTime,
}

enum Actor<P: Process> {
    Honest(P),
    Byzantine(Box<dyn Adversary<P::Message> + Send>),
}

/// A deterministic event-driven run of one protocol instance over a fixed
/// directed network.
///
/// Construction: [`Simulation::new`], then assign an actor to **every**
/// node with [`set_honest`](Simulation::set_honest) /
/// [`set_byzantine`](Simulation::set_byzantine), then [`run`](Simulation::run).
///
/// Determinism: events are ordered by `(delivery time, enqueue sequence)`;
/// with a deterministic [`DeliveryPolicy`] the entire execution — including
/// every adversarial interleaving decision — is a pure function of the
/// configuration.
pub struct Simulation<P: Process> {
    graph: Arc<Digraph>,
    actors: Vec<Option<Actor<P>>>,
    policy: Box<dyn DeliveryPolicy + Send>,
    queue: BinaryHeap<Reverse<QueuedEvent<P::Message>>>,
    now: VirtualTime,
    seq: u64,
    stats: SimStats,
    max_events: u64,
    horizon: VirtualTime,
    trace: Option<Trace<P::Message>>,
    chaos: Option<(LinkFaultPlan, EdgeCounters)>,
    registry: Option<(Arc<StatsRegistry>, StatsHandle)>,
}

struct QueuedEvent<M> {
    at: VirtualTime,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<P: Process> Simulation<P> {
    /// Creates a simulation over `graph` with the given delivery policy.
    #[must_use]
    pub fn new(graph: Arc<Digraph>, policy: Box<dyn DeliveryPolicy + Send>) -> Self {
        let n = graph.node_count();
        Simulation {
            graph,
            actors: (0..n).map(|_| None).collect(),
            policy,
            queue: BinaryHeap::new(),
            now: VirtualTime::ZERO,
            seq: 0,
            stats: SimStats::default(),
            max_events: 50_000_000,
            horizon: VirtualTime::FAR_FUTURE,
            trace: None,
            chaos: None,
            registry: None,
        }
    }

    /// Assigns an honest process to `v`.
    pub fn set_honest(&mut self, v: NodeId, process: P) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Honest(process));
        self
    }

    /// Assigns a Byzantine adversary to `v`.
    pub fn set_byzantine(
        &mut self,
        v: NodeId,
        adversary: Box<dyn Adversary<P::Message> + Send>,
    ) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Byzantine(adversary));
        self
    }

    /// Caps the number of deliveries before the run aborts with
    /// [`SimError::EventBudgetExhausted`] (default: 5·10⁷).
    pub fn set_max_events(&mut self, max_events: u64) -> &mut Self {
        self.max_events = max_events;
        self
    }

    /// Stops delivering events scheduled after `horizon`; remaining events
    /// are counted in [`SimStats::messages_undelivered`]. Models "delayed
    /// past the decision point" (Appendix B).
    pub fn set_horizon(&mut self, horizon: VirtualTime) -> &mut Self {
        self.horizon = horizon;
        self
    }

    /// Attaches a deterministic link-fault plan: every outgoing message is
    /// judged by [`LinkFaultPlan::decide`] under a per-edge message index
    /// before it reaches the delivery queue.
    pub fn set_link_faults(&mut self, plan: LinkFaultPlan) -> &mut Self {
        self.chaos = Some((plan, EdgeCounters::new()));
        self
    }

    /// Attaches a live stats registry. The single-threaded event loop
    /// registers one shard and mirrors every [`SimStats`] increment into
    /// it (bucketed per message class via [`Process::classify`]), so the
    /// registry's merged snapshot agrees with the returned `SimStats`
    /// totals message-for-message.
    pub fn set_stats(&mut self, registry: Arc<StatsRegistry>) -> &mut Self {
        registry.note_transport_observed();
        registry.note_nodes_observed();
        let handle = registry.register();
        self.registry = Some((registry, handle));
        self
    }

    /// Enables trace recording of every delivery.
    pub fn record_trace(&mut self) -> &mut Self {
        self.trace = Some(Trace::new());
        self
    }

    /// The recorded trace, if [`record_trace`](Simulation::record_trace)
    /// was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace<P::Message>> {
        self.trace.as_ref()
    }

    /// The network.
    #[must_use]
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// Shared handle to the network.
    #[must_use]
    pub fn graph_arc(&self) -> Arc<Digraph> {
        Arc::clone(&self.graph)
    }

    /// Immutable access to the honest process at `v` (e.g. to read its
    /// output after the run). Returns `None` for Byzantine nodes.
    #[must_use]
    pub fn honest(&self, v: NodeId) -> Option<&P> {
        match self.actors[v.index()] {
            Some(Actor::Honest(ref p)) => Some(p),
            _ => None,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Runs `on_start` everywhere, then delivers events in order until
    /// quiescence (or the horizon / event budget).
    ///
    /// # Errors
    ///
    /// [`SimError::UnassignedNode`] if a node has no actor;
    /// [`SimError::EventBudgetExhausted`] if the budget runs out.
    pub fn run(&mut self) -> Result<SimStats, SimError> {
        if let Some(missing) = self.actors.iter().position(Option::is_none) {
            return Err(SimError::UnassignedNode { node: missing });
        }
        // Start phase.
        for i in 0..self.actors.len() {
            let v = NodeId::new(i);
            let mut ctx = Context::new(v, self.graph.out_neighbors(v));
            match self.actors[i].as_mut().expect("checked above") {
                Actor::Honest(p) => p.on_start(&mut ctx),
                Actor::Byzantine(a) => a.on_start(&mut ctx),
            }
            self.dispatch(v, &mut ctx);
        }
        // Delivery loop.
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > self.horizon {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            if self.stats.messages_delivered >= self.max_events {
                return Err(SimError::EventBudgetExhausted {
                    delivered: self.stats.messages_delivered,
                });
            }
            self.now = ev.at;
            self.stats.messages_delivered += 1;
            self.stats.final_time = ev.at;
            if let Some((registry, handle)) = self.registry.as_ref() {
                handle.record_delivered(P::classify(&ev.msg));
                handle.record_consumed(ev.to.index());
                registry.record_virtual_time(ev.at.ticks());
            }
            if let Some(trace) = self.trace.as_mut() {
                trace.record(ev.at, ev.from, ev.to, ev.msg.clone());
            }
            let mut ctx = Context::new(ev.to, self.graph.out_neighbors(ev.to));
            match self.actors[ev.to.index()].as_mut().expect("checked above") {
                Actor::Honest(p) => p.on_message(&mut ctx, ev.from, ev.msg),
                Actor::Byzantine(a) => a.on_message(&mut ctx, ev.from, ev.msg),
            }
            let sender = ev.to;
            self.dispatch(sender, &mut ctx);
        }
        self.stats.messages_undelivered = self.queue.len() as u64;
        Ok(self.stats)
    }

    fn dispatch(&mut self, from: NodeId, ctx: &mut Context<P::Message>) {
        for (to, msg) in ctx.take_outbox() {
            self.stats.messages_sent += 1;
            let class = P::classify(&msg);
            if let Some((_, handle)) = self.registry.as_ref() {
                handle.record_sent(class);
            }
            let decision = match self.chaos.as_mut() {
                Some((plan, counters)) => {
                    let k = counters.next(from, to);
                    plan.decide(from, to, k)
                }
                None => LinkDecision::CLEAN,
            };
            if decision.copies == 0 {
                // Destroyed messages must not advance the delivery policy's
                // RNG stream — that keeps clean edges bit-identical whether
                // or not a plan is attached.
                if decision.corrupted {
                    self.stats.messages_corrupted += 1;
                } else {
                    self.stats.messages_dropped += 1;
                }
                if let Some((_, handle)) = self.registry.as_ref() {
                    if decision.corrupted {
                        handle.record_corrupted(class);
                    } else {
                        handle.record_dropped(class);
                    }
                }
                continue;
            }
            if let Some((_, handle)) = self.registry.as_ref() {
                for _ in 0..decision.copies {
                    handle.record_enqueued(to.index());
                }
                for _ in 1..decision.copies {
                    handle.record_duplicated(class);
                }
            }
            for _ in 1..decision.copies {
                self.stats.messages_duplicated += 1;
                let at = self.arrival(from, to, decision.extra_delay);
                self.seq += 1;
                self.queue.push(Reverse(QueuedEvent {
                    at,
                    seq: self.seq,
                    from,
                    to,
                    msg: msg.clone(),
                }));
            }
            let at = self.arrival(from, to, decision.extra_delay);
            self.seq += 1;
            self.queue.push(Reverse(QueuedEvent { at, seq: self.seq, from, to, msg }));
        }
    }

    /// One delivery-policy draw for a surviving copy, clamped to `now` and
    /// shifted by the plan's reorder delay.
    fn arrival(&mut self, from: NodeId, to: NodeId, extra: u64) -> VirtualTime {
        let mut at = self.policy.delivery_time(self.now, from, to);
        if at < self.now {
            at = self.now;
        }
        VirtualTime::new(at.ticks().saturating_add(extra))
    }
}

impl<P: Process> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("nodes", &self.graph.node_count())
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Silent;
    use crate::scheduler::{EdgeDelay, FixedDelay, RandomDelay};
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Floods a counter value; each node remembers everything it heard.
    struct Gossip {
        input: u64,
        heard: Vec<(NodeId, u64)>,
    }

    impl Process for Gossip {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(&self.input);
        }
        fn on_message(&mut self, _ctx: &mut Context<u64>, from: NodeId, msg: u64) {
            self.heard.push((from, msg));
        }
    }

    fn gossip_sim(n: usize, policy: Box<dyn DeliveryPolicy + Send>) -> Simulation<Gossip> {
        let g = Arc::new(generators::clique(n));
        let mut sim = Simulation::new(g, policy);
        for i in 0..n {
            sim.set_honest(id(i), Gossip { input: i as u64 * 10, heard: Vec::new() });
        }
        sim
    }

    #[test]
    fn delivers_every_broadcast() {
        let mut sim = gossip_sim(4, Box::new(FixedDelay::new(1)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.messages_sent, 12);
        assert_eq!(stats.messages_delivered, 12);
        assert_eq!(stats.messages_undelivered, 0);
        for i in 0..4 {
            let p = sim.honest(id(i)).unwrap();
            assert_eq!(p.heard.len(), 3);
        }
    }

    #[test]
    fn unassigned_node_is_an_error() {
        let g = Arc::new(generators::clique(2));
        let mut sim: Simulation<Gossip> = Simulation::new(g, Box::new(FixedDelay::new(1)));
        sim.set_honest(id(0), Gossip { input: 0, heard: Vec::new() });
        assert_eq!(sim.run().unwrap_err(), SimError::UnassignedNode { node: 1 });
    }

    #[test]
    fn deterministic_under_random_policy() {
        let run = |seed: u64| {
            let mut sim = gossip_sim(5, Box::new(RandomDelay::new(seed, 1, 9)));
            sim.record_trace();
            sim.run().unwrap();
            sim.trace().unwrap().clone()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds give different schedules");
    }

    #[test]
    fn horizon_holds_back_far_future_messages() {
        let g = Arc::new(generators::clique(2));
        let mut policy = EdgeDelay::new(Box::new(FixedDelay::new(1)));
        policy.delay_edge(id(0), id(1), VirtualTime::FAR_FUTURE.ticks());
        let mut sim = Simulation::new(g, Box::new(policy));
        sim.set_honest(id(0), Gossip { input: 1, heard: Vec::new() });
        sim.set_honest(id(1), Gossip { input: 2, heard: Vec::new() });
        sim.set_horizon(VirtualTime::new(1_000));
        let stats = sim.run().unwrap();
        assert_eq!(stats.messages_delivered, 1, "only 1 -> 0 arrives");
        assert_eq!(stats.messages_undelivered, 1);
        assert!(sim.honest(id(1)).unwrap().heard.is_empty());
    }

    #[test]
    fn byzantine_silent_node_sends_nothing() {
        let g = Arc::new(generators::clique(3));
        let mut sim: Simulation<Gossip> = Simulation::new(g, Box::new(FixedDelay::new(1)));
        sim.set_honest(id(0), Gossip { input: 0, heard: Vec::new() });
        sim.set_honest(id(1), Gossip { input: 1, heard: Vec::new() });
        sim.set_byzantine(id(2), Box::new(Silent));
        let stats = sim.run().unwrap();
        assert_eq!(stats.messages_sent, 4, "two honest broadcasts of two messages");
        assert_eq!(sim.honest(id(0)).unwrap().heard.len(), 1);
    }

    #[test]
    fn event_budget_enforced() {
        /// Two nodes ping-pong forever.
        struct PingPong;
        impl Process for PingPong {
            type Message = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(&0);
            }
            fn on_message(&mut self, ctx: &mut Context<u64>, _from: NodeId, msg: u64) {
                ctx.broadcast(&(msg + 1));
            }
        }
        let g = Arc::new(generators::clique(2));
        let mut sim = Simulation::new(g, Box::new(FixedDelay::new(1)));
        sim.set_honest(id(0), PingPong);
        sim.set_honest(id(1), PingPong);
        sim.set_max_events(100);
        assert!(matches!(sim.run().unwrap_err(), SimError::EventBudgetExhausted { .. }));
    }

    #[test]
    fn trace_records_deliveries_in_order() {
        let mut sim = gossip_sim(3, Box::new(FixedDelay::new(2)));
        sim.record_trace();
        sim.run().unwrap();
        let trace = sim.trace().unwrap();
        assert_eq!(trace.len(), 6);
        let times: Vec<u64> = trace.events().iter().map(|e| e.at.ticks()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn stats_final_time_matches_last_delivery() {
        let mut sim = gossip_sim(2, Box::new(FixedDelay::new(7)));
        let stats = sim.run().unwrap();
        assert_eq!(stats.final_time, VirtualTime::new(7));
        assert_eq!(sim.now(), VirtualTime::new(7));
    }

    #[test]
    fn omitted_edge_delivers_nothing() {
        use crate::chaos::{LinkFault, LinkFaultPlan};
        let mut sim = gossip_sim(3, Box::new(FixedDelay::new(1)));
        sim.set_link_faults(LinkFaultPlan::new(0).fault(id(0), id(1), LinkFault::Omit));
        let stats = sim.run().unwrap();
        assert_eq!(stats.messages_sent, 6);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 5);
        assert_eq!(sim.honest(id(1)).unwrap().heard.len(), 1, "only node 2's message arrives");
    }

    #[test]
    fn duplicated_edge_delivers_twice() {
        use crate::chaos::{LinkFault, LinkFaultPlan};
        let mut sim = gossip_sim(3, Box::new(FixedDelay::new(1)));
        sim.set_link_faults(LinkFaultPlan::new(0).fault(
            id(0),
            id(1),
            LinkFault::Duplicate { prob: 1.0 },
        ));
        let stats = sim.run().unwrap();
        assert_eq!(stats.messages_duplicated, 1);
        assert_eq!(stats.messages_delivered, 7);
        assert_eq!(sim.honest(id(1)).unwrap().heard.len(), 3);
    }

    #[test]
    fn corruption_is_counted_apart_from_drops() {
        use crate::chaos::{LinkFault, LinkFaultPlan};
        let mut sim = gossip_sim(3, Box::new(FixedDelay::new(1)));
        sim.set_link_faults(
            LinkFaultPlan::new(0).fault(id(0), id(1), LinkFault::Corrupt { prob: 1.0 }).fault(
                id(1),
                id(0),
                LinkFault::Drop { prob: 1.0 },
            ),
        );
        let stats = sim.run().unwrap();
        assert_eq!(stats.messages_corrupted, 1);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 4);
    }

    #[test]
    fn zero_probability_plan_is_bit_identical_to_no_plan() {
        use crate::chaos::{LinkFault, LinkFaultPlan};
        let run = |plan: Option<LinkFaultPlan>| {
            let mut sim = gossip_sim(4, Box::new(RandomDelay::new(11, 1, 9)));
            if let Some(plan) = plan {
                sim.set_link_faults(plan);
            }
            sim.record_trace();
            let stats = sim.run().unwrap();
            (stats, sim.trace().unwrap().clone())
        };
        let zero = LinkFaultPlan::new(99)
            .fault(id(0), id(1), LinkFault::Drop { prob: 0.0 })
            .fault(id(1), id(2), LinkFault::Duplicate { prob: 0.0 })
            .fault(id(2), id(3), LinkFault::Reorder { window: 0 });
        assert_eq!(run(None), run(Some(zero)));
    }

    #[test]
    fn reorder_shifts_arrival_times() {
        use crate::chaos::{LinkFault, LinkFaultPlan};
        let g = Arc::new(generators::clique(2));
        let mut sim = Simulation::new(g, Box::new(FixedDelay::new(1)));
        sim.set_honest(id(0), Gossip { input: 1, heard: Vec::new() });
        sim.set_honest(id(1), Gossip { input: 2, heard: Vec::new() });
        sim.set_link_faults(LinkFaultPlan::new(5).fault(
            id(0),
            id(1),
            LinkFault::Reorder { window: 40 },
        ));
        sim.record_trace();
        sim.run().unwrap();
        let late = sim
            .trace()
            .unwrap()
            .events()
            .iter()
            .any(|e| e.from == id(0) && e.to == id(1) && e.at > VirtualTime::new(1));
        assert!(late, "a 40-tick window should displace the 0 -> 1 delivery");
    }
}
