//! # dbac-sim
//!
//! Asynchronous message-passing runtimes for the `dbac` workspace.
//!
//! The paper's system model (Section 2): reliable directed links, unbounded
//! but finite message delays, event-driven nodes, up to `f` Byzantine
//! nodes. Three interchangeable runtimes realize the model:
//!
//! * [`sim::Simulation`] — a **deterministic discrete-event simulator**.
//!   Delivery times come from a pluggable [`scheduler::DeliveryPolicy`]
//!   (fixed, seeded-random, or adversarial per-edge delays — the latter is
//!   exactly what the Appendix-B impossibility construction needs). Runs
//!   are reproducible bit-for-bit from a seed, and can record a
//!   [`trace::Trace`] for the indistinguishability replay experiment.
//! * [`threaded`] — a **thread-per-node runtime** over crossbeam channels,
//!   demonstrating that the protocol really is event-driven and
//!   order-insensitive under true OS-level concurrency.
//! * [`net`] — a **network runtime**: every message serialized through the
//!   length-prefixed binary codec ([`net::codec`]) and moved over framed,
//!   handshaken duplex connections ([`net::connection`]) — loopback TCP
//!   when the sandbox allows sockets, byte-real in-process pipes otherwise.
//!
//! All three honor the same optional [`chaos::LinkFaultPlan`] — a
//! seeded, per-edge fault schedule (drop / duplicate / reorder / corrupt /
//! partition / omit) whose every decision is a pure function of the plan,
//! so the fate of the k-th message on an edge is runtime-independent.
//!
//! All three drive the same [`process::Process`] state machines; Byzantine nodes
//! implement [`process::Adversary`] and may send arbitrary well-typed
//! messages over their own out-edges (links are authenticated, so a faulty
//! node cannot impersonate another sender — receivers always learn the true
//! edge a message arrived on).
//!
//! # Example
//!
//! ```
//! use dbac_graph::{generators, NodeId};
//! use dbac_sim::process::{Context, Process};
//! use dbac_sim::scheduler::FixedDelay;
//! use dbac_sim::sim::Simulation;
//!
//! // A node that floods a token once and counts what it hears.
//! struct Echo { heard: usize }
//! impl Process for Echo {
//!     type Message = u64;
//!     fn on_start(&mut self, ctx: &mut Context<u64>) {
//!         for w in ctx.out_neighbors().iter() {
//!             ctx.send(w, 7);
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<u64>, _from: NodeId, _msg: u64) {
//!         self.heard += 1;
//!     }
//! }
//!
//! let g = generators::clique(3);
//! let mut sim = Simulation::new(g.into(), Box::new(FixedDelay::new(1)));
//! for v in 0..3 {
//!     sim.set_honest(NodeId::new(v), Echo { heard: 0 });
//! }
//! let stats = sim.run().expect("quiesces");
//! assert_eq!(stats.messages_delivered, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod net;
pub mod process;
pub mod scheduler;
pub mod sim;
pub mod stats;
pub mod threaded;
pub mod time;
pub mod trace;

pub use chaos::{EdgeCounters, LinkDecision, LinkFault, LinkFaultPlan};
pub use error::SimError;
pub use net::codec::{WireError, WireMessage};
pub use net::connection::TransportKind;
pub use net::{Net, NetConfig};
pub use process::{Adversary, Context, Process};
pub use scheduler::DeliveryPolicy;
pub use sim::{SimStats, Simulation};
pub use stats::{
    ClassCounters, Coverage, MsgClass, NodeCounters, ProtocolCounters, StatsHandle, StatsRegistry,
    StatsSnapshot, TransportSnapshot,
};
pub use threaded::{Incomplete, IncompleteReason, ThreadedReport};
pub use time::VirtualTime;
