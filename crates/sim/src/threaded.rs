//! Thread-per-node runtime over crossbeam channels.
//!
//! The discrete-event simulator is the primary, deterministic runtime;
//! this runtime runs the *same* [`Process`] state machines under genuine
//! OS-level concurrency, with reliable unbounded channels standing in for
//! the paper's reliable asynchronous links. It demonstrates that the
//! protocol logic is event-driven and insensitive to real interleavings,
//! and it backs the crate's stress tests.

use crate::error::SimError;
use crate::process::{Adversary, Context, Process};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dbac_graph::{Digraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a threaded run.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Wall-clock limit for the whole run.
    pub timeout: Duration,
    /// Upper bound (exclusive) on the random per-send delay, in
    /// microseconds; 0 disables injected jitter.
    pub jitter_micros: u64,
    /// Seed for the per-thread jitter generators.
    pub seed: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig { timeout: Duration::from_secs(30), jitter_micros: 50, seed: 0 }
    }
}

enum Actor<P: Process> {
    Honest(P),
    Byzantine(Box<dyn Adversary<P::Message> + Send>),
}

/// A thread-per-node execution. Assign an actor to every node, then
/// [`run`](Threaded::run).
pub struct Threaded<P: Process> {
    graph: Arc<Digraph>,
    actors: Vec<Option<Actor<P>>>,
}

impl<P> Threaded<P>
where
    P: Process + Send + 'static,
    P::Message: Send,
{
    /// Creates a threaded execution over `graph`.
    #[must_use]
    pub fn new(graph: Arc<Digraph>) -> Self {
        let n = graph.node_count();
        Threaded { graph, actors: (0..n).map(|_| None).collect() }
    }

    /// Assigns an honest process to `v`.
    pub fn set_honest(&mut self, v: NodeId, process: P) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Honest(process));
        self
    }

    /// Assigns a Byzantine adversary to `v`.
    pub fn set_byzantine(
        &mut self,
        v: NodeId,
        adversary: Box<dyn Adversary<P::Message> + Send>,
    ) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Byzantine(adversary));
        self
    }

    /// Runs every node on its own thread until each honest node satisfies
    /// `done` (nodes keep relaying after finishing, so slower nodes are
    /// never starved), then stops the network and hands back the final
    /// process states (`None` for Byzantine slots).
    ///
    /// # Errors
    ///
    /// [`SimError::UnassignedNode`] if a node has no actor,
    /// [`SimError::Timeout`] if the wall-clock limit expires first, and
    /// [`SimError::WorkerPanicked`] if a node thread panicked.
    pub fn run(
        mut self,
        done: impl Fn(&P) -> bool + Send + Sync + 'static,
        config: ThreadedConfig,
    ) -> Result<Vec<Option<P>>, SimError> {
        if let Some(missing) = self.actors.iter().position(Option::is_none) {
            return Err(SimError::UnassignedNode { node: missing });
        }
        let n = self.graph.node_count();
        let honest_total =
            self.actors.iter().filter(|a| matches!(a, Some(Actor::Honest(_)))).count();

        type Envelope<M> = (NodeId, M);
        let mut senders: Vec<Sender<Envelope<P::Message>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Envelope<P::Message>>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let stop = Arc::new(AtomicBool::new(false));
        let done_count = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(done);

        let mut handles = Vec::with_capacity(n);
        for (i, rx_slot) in receivers.iter_mut().enumerate() {
            let me = NodeId::new(i);
            let actor = self.actors[i].take().expect("checked above");
            let rx = rx_slot.take().expect("taken once");
            let graph = Arc::clone(&self.graph);
            let senders = senders.clone();
            let stop = Arc::clone(&stop);
            let done_count = Arc::clone(&done_count);
            let done = Arc::clone(&done);
            let jitter = config.jitter_micros;
            let mut rng = SmallRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));

            handles.push(std::thread::spawn(move || {
                let mut actor = actor;
                let mut reported_done = false;
                let out = graph.out_neighbors(me);
                let dispatch = |ctx: &mut Context<P::Message>, rng: &mut SmallRng| {
                    for (to, msg) in ctx.take_outbox() {
                        if jitter > 0 {
                            std::thread::sleep(Duration::from_micros(rng.gen_range(0..jitter)));
                        }
                        // Receiver may already have shut down; ignore.
                        let _ = senders[to.index()].send((me, msg));
                    }
                };
                let check_done = |actor: &Actor<P>, reported: &mut bool| {
                    if !*reported {
                        if let Actor::Honest(p) = actor {
                            if done(p) {
                                *reported = true;
                                done_count.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                };

                let mut ctx = Context::new(me, out);
                match &mut actor {
                    Actor::Honest(p) => p.on_start(&mut ctx),
                    Actor::Byzantine(a) => a.on_start(&mut ctx),
                }
                dispatch(&mut ctx, &mut rng);
                check_done(&actor, &mut reported_done);

                while !stop.load(Ordering::SeqCst) {
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok((from, msg)) => {
                            let mut ctx = Context::new(me, out);
                            match &mut actor {
                                Actor::Honest(p) => p.on_message(&mut ctx, from, msg),
                                Actor::Byzantine(a) => a.on_message(&mut ctx, from, msg),
                            }
                            dispatch(&mut ctx, &mut rng);
                            check_done(&actor, &mut reported_done);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                match actor {
                    Actor::Honest(p) => Some(p),
                    Actor::Byzantine(_) => None,
                }
            }));
        }

        // Wait for completion or timeout.
        let deadline = Instant::now() + config.timeout;
        let completed = loop {
            let completed = done_count.load(Ordering::SeqCst);
            if completed >= honest_total {
                break completed;
            }
            if Instant::now() >= deadline {
                break completed;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        stop.store(true, Ordering::SeqCst);
        drop(senders);

        let mut out = Vec::with_capacity(n);
        let mut panicked = false;
        for h in handles {
            match h.join() {
                Ok(p) => out.push(p),
                Err(_) => {
                    panicked = true;
                    out.push(None);
                }
            }
        }
        if panicked {
            return Err(SimError::WorkerPanicked);
        }
        if completed < honest_total {
            return Err(SimError::Timeout { completed, expected: honest_total });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Silent;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Collects one value from every in-neighbor, then is done.
    #[derive(Debug)]
    struct Collect {
        expected: usize,
        input: u64,
        heard: Vec<u64>,
    }

    impl Process for Collect {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(&self.input);
        }
        fn on_message(&mut self, _ctx: &mut Context<u64>, _from: NodeId, msg: u64) {
            self.heard.push(msg);
        }
    }

    #[test]
    fn threaded_clique_gossip_completes() {
        let g = Arc::new(generators::clique(4));
        let mut t = Threaded::new(g);
        for i in 0..4 {
            t.set_honest(id(i), Collect { expected: 3, input: i as u64, heard: Vec::new() });
        }
        let out = t
            .run(
                |p| p.heard.len() >= p.expected,
                ThreadedConfig { timeout: Duration::from_secs(10), jitter_micros: 20, seed: 1 },
            )
            .unwrap();
        for p in out.iter().flatten() {
            assert!(p.heard.len() >= 3);
        }
    }

    #[test]
    fn threaded_with_byzantine_silent() {
        let g = Arc::new(generators::clique(3));
        let mut t = Threaded::new(g);
        t.set_honest(id(0), Collect { expected: 1, input: 0, heard: Vec::new() });
        t.set_honest(id(1), Collect { expected: 1, input: 1, heard: Vec::new() });
        t.set_byzantine(id(2), Box::new(Silent));
        let out = t.run(|p| p.heard.len() >= p.expected, ThreadedConfig::default()).unwrap();
        assert!(out[0].is_some() && out[1].is_some());
        assert!(out[2].is_none(), "byzantine slot returns no process");
    }

    #[test]
    fn threaded_timeout_reports_progress() {
        let g = Arc::new(generators::clique(2));
        let mut t = Threaded::new(g);
        for i in 0..2 {
            t.set_honest(id(i), Collect { expected: 99, input: 0, heard: Vec::new() });
        }
        let err = t
            .run(
                |p| p.heard.len() >= p.expected,
                ThreadedConfig { timeout: Duration::from_millis(50), jitter_micros: 0, seed: 0 },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Timeout { completed: 0, expected: 2 }));
    }

    #[test]
    fn threaded_unassigned_node() {
        let g = Arc::new(generators::clique(2));
        let mut t: Threaded<Collect> = Threaded::new(g);
        t.set_honest(id(0), Collect { expected: 0, input: 0, heard: Vec::new() });
        let err = t.run(|_| true, ThreadedConfig::default()).unwrap_err();
        assert_eq!(err, SimError::UnassignedNode { node: 1 });
    }
}
