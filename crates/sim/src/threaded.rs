//! Thread-per-node runtime over crossbeam channels.
//!
//! The discrete-event simulator is the primary, deterministic runtime;
//! this runtime runs the *same* [`Process`] state machines under genuine
//! OS-level concurrency, with reliable unbounded channels standing in for
//! the paper's reliable asynchronous links. It demonstrates that the
//! protocol logic is event-driven and insensitive to real interleavings,
//! and it backs the crate's stress tests.
//!
//! Two production-shaped properties distinguish it from a toy harness:
//!
//! * **Graceful degradation.** A node that never completes — partitioned
//!   by a link-fault plan, starved, or panicked — does not abort the run.
//!   The watchdog deadline stops the network, every surviving node's final
//!   state is extracted, and the stragglers are reported per node in
//!   [`ThreadedReport::incomplete`] with a typed [`IncompleteReason`].
//! * **Chaos parity.** An optional [`LinkFaultPlan`] interposes on the
//!   crossbeam send path using the same stateless decision function as the
//!   simulator, so the fate of the k-th message on an edge is identical in
//!   both runtimes.

use crate::chaos::{EdgeCounters, LinkDecision, LinkFaultPlan};
use crate::error::SimError;
use crate::process::{Adversary, Context, Process};
use crate::sim::SimStats;
use crate::stats::StatsRegistry;
use crate::time::VirtualTime;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dbac_graph::{Digraph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a threaded run.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Wall-clock watchdog deadline: nodes still incomplete when it expires
    /// are reported in [`ThreadedReport::incomplete`], not errors.
    pub timeout: Duration,
    /// Upper bound (exclusive) on the random per-send delay, in
    /// microseconds; 0 disables injected jitter.
    pub jitter_micros: u64,
    /// Seed for the per-thread jitter generators.
    pub seed: u64,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig { timeout: Duration::from_secs(30), jitter_micros: 50, seed: 0 }
    }
}

/// Why a node failed to complete within its watchdog deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IncompleteReason {
    /// The node was still running (not yet `done`) when the deadline fired.
    Timeout,
    /// The node's thread panicked; its state is unrecoverable.
    Panicked,
    /// The node's inbox disconnected before the run was stopped, so it
    /// could no longer make progress.
    Starved,
}

impl IncompleteReason {
    /// Short display label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IncompleteReason::Timeout => "timeout",
            IncompleteReason::Panicked => "panicked",
            IncompleteReason::Starved => "starved",
        }
    }
}

/// One honest node that did not complete, with its reason.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Incomplete {
    /// The straggler.
    pub node: NodeId,
    /// Why it never finished.
    pub reason: IncompleteReason,
}

/// The outcome of a threaded run: per-node final states, per-node
/// stragglers, and transport counters.
#[derive(Debug)]
pub struct ThreadedReport<P> {
    /// Final process state per node: `None` for Byzantine slots and for
    /// honest nodes whose thread panicked. Honest nodes that merely timed
    /// out still surface their partial state here.
    pub nodes: Vec<Option<P>>,
    /// Honest nodes that failed to complete, in node order.
    pub incomplete: Vec<Incomplete>,
    /// Transport counters observed by the send-path interposer
    /// (`final_time` stays zero — wall-clock runs have no virtual clock).
    pub stats: SimStats,
}

/// Send-path counters shared by every node thread (and, in the network
/// runtime, by every connection reader thread).
#[derive(Default)]
pub(crate) struct Transport {
    pub(crate) sent: AtomicU64,
    pub(crate) delivered: AtomicU64,
    pub(crate) dropped: AtomicU64,
    pub(crate) duplicated: AtomicU64,
    pub(crate) corrupted: AtomicU64,
    /// Frames discarded by a receiver because they failed to decode
    /// (network runtime only; always zero for in-process channels).
    pub(crate) rejected: AtomicU64,
}

impl Transport {
    pub(crate) fn stats(&self) -> SimStats {
        let sent = self.sent.load(Ordering::Relaxed);
        let delivered = self.delivered.load(Ordering::Relaxed);
        let dropped = self.dropped.load(Ordering::Relaxed);
        let duplicated = self.duplicated.load(Ordering::Relaxed);
        let corrupted = self.corrupted.load(Ordering::Relaxed);
        let rejected = self.rejected.load(Ordering::Relaxed);
        let expected = sent
            .saturating_sub(dropped + corrupted)
            .saturating_add(duplicated)
            .saturating_sub(rejected);
        SimStats {
            messages_sent: sent,
            messages_delivered: delivered,
            messages_undelivered: expected.saturating_sub(delivered),
            messages_dropped: dropped,
            messages_duplicated: duplicated,
            messages_corrupted: corrupted,
            messages_rejected: rejected,
            final_time: VirtualTime::ZERO,
        }
    }
}

/// Blocks until every honest node has reported completion or the watchdog
/// deadline expires — the shared degradation clock of the threaded and
/// network runtimes.
pub(crate) fn await_completion(done_count: &AtomicUsize, honest_total: usize, deadline: Instant) {
    loop {
        if done_count.load(Ordering::SeqCst) >= honest_total {
            break;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Joins every node thread and classifies stragglers: a missing state is
/// [`IncompleteReason::Panicked`], an unfinished one is `Starved` or
/// `Timeout` depending on whether its inbox disconnected early. Shared by
/// the threaded and network runtimes so both degrade identically.
pub(crate) fn join_and_classify<P: Process>(
    handles: Vec<std::thread::JoinHandle<(Option<P>, bool)>>,
    honest_slots: &[bool],
    done: &dyn Fn(&P) -> bool,
) -> (Vec<Option<P>>, Vec<Incomplete>) {
    let mut nodes = Vec::with_capacity(handles.len());
    let mut incomplete = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        let node = NodeId::new(i);
        match h.join() {
            Ok((state, starved)) => {
                if honest_slots[i] {
                    let finished = state.as_ref().map(done).unwrap_or(false);
                    if !finished {
                        let reason = if starved {
                            IncompleteReason::Starved
                        } else {
                            IncompleteReason::Timeout
                        };
                        incomplete.push(Incomplete { node, reason });
                    }
                }
                nodes.push(state);
            }
            Err(_) => {
                if honest_slots[i] {
                    incomplete.push(Incomplete { node, reason: IncompleteReason::Panicked });
                }
                nodes.push(None);
            }
        }
    }
    (nodes, incomplete)
}

enum Actor<P: Process> {
    Honest(P),
    Byzantine(Box<dyn Adversary<P::Message> + Send>),
}

/// A thread-per-node execution. Assign an actor to every node, then
/// [`run`](Threaded::run).
pub struct Threaded<P: Process> {
    graph: Arc<Digraph>,
    actors: Vec<Option<Actor<P>>>,
    link_faults: Option<Arc<LinkFaultPlan>>,
    registry: Option<Arc<StatsRegistry>>,
}

impl<P> Threaded<P>
where
    P: Process + Send + 'static,
    P::Message: Send,
{
    /// Creates a threaded execution over `graph`.
    #[must_use]
    pub fn new(graph: Arc<Digraph>) -> Self {
        let n = graph.node_count();
        Threaded {
            graph,
            actors: (0..n).map(|_| None).collect(),
            link_faults: None,
            registry: None,
        }
    }

    /// Assigns an honest process to `v`.
    pub fn set_honest(&mut self, v: NodeId, process: P) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Honest(process));
        self
    }

    /// Assigns a Byzantine adversary to `v`.
    pub fn set_byzantine(
        &mut self,
        v: NodeId,
        adversary: Box<dyn Adversary<P::Message> + Send>,
    ) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Byzantine(adversary));
        self
    }

    /// Attaches a deterministic link-fault plan, interposed on every send.
    pub fn set_link_faults(&mut self, plan: LinkFaultPlan) -> &mut Self {
        self.link_faults = Some(Arc::new(plan));
        self
    }

    /// Attaches a live stats registry: every node thread registers its
    /// own shard and mirrors the send-interposer / delivery counters
    /// into it (per message class via [`Process::classify`]), plus the
    /// per-node queue and done gauges. Snapshots taken from other
    /// threads while the run is live are safe and monotone.
    pub fn set_stats(&mut self, registry: Arc<StatsRegistry>) -> &mut Self {
        registry.note_transport_observed();
        registry.note_nodes_observed();
        self.registry = Some(registry);
        self
    }

    /// Runs every node on its own thread until each honest node satisfies
    /// `done` (nodes keep relaying after finishing, so slower nodes are
    /// never starved) or the watchdog deadline expires, then stops the
    /// network and hands back a [`ThreadedReport`].
    ///
    /// Non-completion is data, not an error: a node that times out, is
    /// starved, or panics lands in [`ThreadedReport::incomplete`] while
    /// every other node's final state is still extracted.
    ///
    /// # Errors
    ///
    /// [`SimError::UnassignedNode`] if a node has no actor.
    pub fn run(
        mut self,
        done: impl Fn(&P) -> bool + Send + Sync + 'static,
        config: ThreadedConfig,
    ) -> Result<ThreadedReport<P>, SimError> {
        if let Some(missing) = self.actors.iter().position(Option::is_none) {
            return Err(SimError::UnassignedNode { node: missing });
        }
        let n = self.graph.node_count();
        let honest_slots: Vec<bool> =
            self.actors.iter().map(|a| matches!(a, Some(Actor::Honest(_)))).collect();
        let honest_total = honest_slots.iter().filter(|h| **h).count();

        type Envelope<M> = (NodeId, M);
        let mut senders: Vec<Sender<Envelope<P::Message>>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Envelope<P::Message>>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let stop = Arc::new(AtomicBool::new(false));
        let done_count = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(done);
        let transport = Arc::new(Transport::default());

        let mut handles = Vec::with_capacity(n);
        for (i, rx_slot) in receivers.iter_mut().enumerate() {
            let me = NodeId::new(i);
            let actor = self.actors[i].take().expect("checked above");
            let rx = rx_slot.take().expect("taken once");
            let graph = Arc::clone(&self.graph);
            let senders = senders.clone();
            let stop = Arc::clone(&stop);
            let done_count = Arc::clone(&done_count);
            let done = Arc::clone(&done);
            let transport = Arc::clone(&transport);
            let plan = self.link_faults.clone();
            let stats = self.registry.as_ref().map(|r| r.register());
            let jitter = config.jitter_micros;
            let mut rng = SmallRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));

            handles.push(std::thread::spawn(move || {
                let mut actor = actor;
                let mut reported_done = false;
                // Edge (u, v) has exactly one sender, so this thread-local
                // counter agrees with the simulator's global one.
                let mut edge_counters = EdgeCounters::new();
                let out = graph.out_neighbors(me);
                let mut dispatch = |ctx: &mut Context<P::Message>, rng: &mut SmallRng| {
                    for (to, msg) in ctx.take_outbox() {
                        transport.sent.fetch_add(1, Ordering::Relaxed);
                        let class = P::classify(&msg);
                        if let Some(h) = &stats {
                            h.record_sent(class);
                        }
                        let decision = match plan.as_deref() {
                            Some(p) => p.decide(me, to, edge_counters.next(me, to)),
                            None => LinkDecision::CLEAN,
                        };
                        if decision.copies == 0 {
                            let counter = if decision.corrupted {
                                &transport.corrupted
                            } else {
                                &transport.dropped
                            };
                            counter.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = &stats {
                                if decision.corrupted {
                                    h.record_corrupted(class);
                                } else {
                                    h.record_dropped(class);
                                }
                            }
                            continue;
                        }
                        let deliver = |msg: P::Message, rng: &mut SmallRng| {
                            if jitter > 0 {
                                std::thread::sleep(Duration::from_micros(rng.gen_range(0..jitter)));
                            }
                            if decision.extra_delay > 0 {
                                std::thread::sleep(Duration::from_micros(decision.extra_delay));
                            }
                            // Receiver may already have shut down; ignore.
                            let _ = senders[to.index()].send((me, msg));
                            if let Some(h) = &stats {
                                h.record_enqueued(to.index());
                            }
                        };
                        for _ in 1..decision.copies {
                            transport.duplicated.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = &stats {
                                h.record_duplicated(class);
                            }
                            deliver(msg.clone(), rng);
                        }
                        deliver(msg, rng);
                    }
                };
                let check_done = |actor: &Actor<P>, reported: &mut bool| {
                    if !*reported {
                        if let Actor::Honest(p) = actor {
                            if done(p) {
                                *reported = true;
                                done_count.fetch_add(1, Ordering::SeqCst);
                                if let Some(h) = &stats {
                                    h.mark_done(me.index());
                                }
                            }
                        }
                    }
                };

                let mut ctx = Context::new(me, out);
                match &mut actor {
                    Actor::Honest(p) => p.on_start(&mut ctx),
                    Actor::Byzantine(a) => a.on_start(&mut ctx),
                }
                dispatch(&mut ctx, &mut rng);
                check_done(&actor, &mut reported_done);

                let mut starved = false;
                while !stop.load(Ordering::SeqCst) {
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok((from, msg)) => {
                            transport.delivered.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = &stats {
                                h.record_delivered(P::classify(&msg));
                                h.record_consumed(me.index());
                            }
                            let mut ctx = Context::new(me, out);
                            match &mut actor {
                                Actor::Honest(p) => p.on_message(&mut ctx, from, msg),
                                Actor::Byzantine(a) => a.on_message(&mut ctx, from, msg),
                            }
                            dispatch(&mut ctx, &mut rng);
                            check_done(&actor, &mut reported_done);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            starved = !stop.load(Ordering::SeqCst);
                            break;
                        }
                    }
                }
                match actor {
                    Actor::Honest(p) => (Some(p), starved),
                    Actor::Byzantine(_) => (None, starved),
                }
            }));
        }

        // Watchdog: wait for completion or the deadline, then stop the
        // network — stragglers become per-node reports, never a run error.
        await_completion(&done_count, honest_total, Instant::now() + config.timeout);
        stop.store(true, Ordering::SeqCst);
        drop(senders);

        let (nodes, incomplete) = join_and_classify(handles, &honest_slots, &*done);
        Ok(ThreadedReport { nodes, incomplete, stats: transport.stats() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::LinkFault;
    use crate::process::Silent;
    use dbac_graph::generators;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Collects one value from every in-neighbor, then is done.
    #[derive(Debug)]
    struct Collect {
        expected: usize,
        input: u64,
        heard: Vec<u64>,
    }

    impl Process for Collect {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(&self.input);
        }
        fn on_message(&mut self, _ctx: &mut Context<u64>, _from: NodeId, msg: u64) {
            self.heard.push(msg);
        }
    }

    #[test]
    fn threaded_clique_gossip_completes() {
        let g = Arc::new(generators::clique(4));
        let mut t = Threaded::new(g);
        for i in 0..4 {
            t.set_honest(id(i), Collect { expected: 3, input: i as u64, heard: Vec::new() });
        }
        let report = t
            .run(
                |p| p.heard.len() >= p.expected,
                ThreadedConfig { timeout: Duration::from_secs(10), jitter_micros: 20, seed: 1 },
            )
            .unwrap();
        assert!(report.incomplete.is_empty());
        assert_eq!(report.stats.messages_sent, 12);
        assert!(report.stats.messages_delivered >= 12, "every broadcast reaches its target");
        for p in report.nodes.iter().flatten() {
            assert!(p.heard.len() >= 3);
        }
    }

    #[test]
    fn threaded_with_byzantine_silent() {
        let g = Arc::new(generators::clique(3));
        let mut t = Threaded::new(g);
        t.set_honest(id(0), Collect { expected: 1, input: 0, heard: Vec::new() });
        t.set_honest(id(1), Collect { expected: 1, input: 1, heard: Vec::new() });
        t.set_byzantine(id(2), Box::new(Silent));
        let report = t.run(|p| p.heard.len() >= p.expected, ThreadedConfig::default()).unwrap();
        assert!(report.incomplete.is_empty());
        assert!(report.nodes[0].is_some() && report.nodes[1].is_some());
        assert!(report.nodes[2].is_none(), "byzantine slot returns no process");
    }

    #[test]
    fn threaded_timeout_degrades_to_per_node_reports() {
        let g = Arc::new(generators::clique(2));
        let mut t = Threaded::new(g);
        for i in 0..2 {
            t.set_honest(id(i), Collect { expected: 99, input: 0, heard: Vec::new() });
        }
        let report = t
            .run(
                |p| p.heard.len() >= p.expected,
                ThreadedConfig { timeout: Duration::from_millis(50), jitter_micros: 0, seed: 0 },
            )
            .unwrap();
        assert_eq!(
            report.incomplete,
            vec![
                Incomplete { node: id(0), reason: IncompleteReason::Timeout },
                Incomplete { node: id(1), reason: IncompleteReason::Timeout },
            ]
        );
        for p in report.nodes.iter() {
            let p = p.as_ref().expect("partial state survives a timeout");
            assert_eq!(p.heard.len(), 1, "one exchange still happened");
        }
    }

    #[test]
    fn threaded_unassigned_node() {
        let g = Arc::new(generators::clique(2));
        let mut t: Threaded<Collect> = Threaded::new(g);
        t.set_honest(id(0), Collect { expected: 0, input: 0, heard: Vec::new() });
        let err = t.run(|_| true, ThreadedConfig::default()).unwrap_err();
        assert_eq!(err, SimError::UnassignedNode { node: 1 });
    }

    #[test]
    fn threaded_panicked_node_is_reported_not_fatal() {
        /// Panics as soon as it hears anything.
        struct Grenade;
        impl Process for Grenade {
            type Message = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(&1);
            }
            fn on_message(&mut self, _ctx: &mut Context<u64>, _from: NodeId, _msg: u64) {
                panic!("boom");
            }
        }
        let g = Arc::new(generators::clique(2));
        let mut t = Threaded::new(g);
        t.set_honest(id(0), Grenade);
        t.set_honest(id(1), Grenade);
        let report = t
            .run(
                |_| false,
                ThreadedConfig { timeout: Duration::from_millis(200), jitter_micros: 0, seed: 0 },
            )
            .unwrap();
        assert_eq!(report.incomplete.len(), 2);
        assert!(report.incomplete.iter().all(|inc| inc.reason == IncompleteReason::Panicked));
        assert!(report.nodes.iter().all(Option::is_none));
    }

    #[test]
    fn threaded_omit_starves_only_the_cut_edge() {
        let g = Arc::new(generators::clique(3));
        let mut t = Threaded::new(g);
        for i in 0..3 {
            t.set_honest(id(i), Collect { expected: 2, input: i as u64, heard: Vec::new() });
        }
        t.set_link_faults(LinkFaultPlan::new(0).fault(id(0), id(1), LinkFault::Omit));
        let report = t
            .run(
                |p| p.heard.len() >= p.expected,
                ThreadedConfig { timeout: Duration::from_millis(300), jitter_micros: 0, seed: 0 },
            )
            .unwrap();
        assert_eq!(
            report.incomplete,
            vec![Incomplete { node: id(1), reason: IncompleteReason::Timeout }],
            "only the node behind the cut edge misses its quota"
        );
        assert_eq!(report.stats.messages_dropped, 1);
        assert_eq!(report.stats.messages_sent, 6);
        let starved = report.nodes[1].as_ref().unwrap();
        assert_eq!(starved.heard.len(), 1, "node 2's message still arrives");
    }

    #[test]
    fn threaded_duplicate_doubles_the_edge() {
        let g = Arc::new(generators::clique(2));
        let mut t = Threaded::new(g);
        t.set_honest(id(0), Collect { expected: 1, input: 7, heard: Vec::new() });
        t.set_honest(id(1), Collect { expected: 2, input: 8, heard: Vec::new() });
        t.set_link_faults(LinkFaultPlan::new(0).fault(
            id(0),
            id(1),
            LinkFault::Duplicate { prob: 1.0 },
        ));
        let report = t
            .run(
                |p| p.heard.len() >= p.expected,
                ThreadedConfig { timeout: Duration::from_secs(5), jitter_micros: 0, seed: 0 },
            )
            .unwrap();
        assert!(report.incomplete.is_empty());
        assert_eq!(report.stats.messages_duplicated, 1);
        assert_eq!(report.nodes[1].as_ref().unwrap().heard, vec![7, 7]);
    }
}
