//! Deterministic link-level fault injection (the chaos layer).
//!
//! Node faults (crash, Byzantine) live in the protocol layer; this module
//! models faults on *edges* — the lossy/duplicating/reordering links of
//! Tseng–Vaidya's link-failure model (arXiv 1401.6615). A [`LinkFaultPlan`]
//! is a seeded, per-edge fault schedule whose every decision is a **pure
//! function** of `(plan seed, edge, per-edge message index)`. Both runtimes
//! consult the same function, so the fate of the k-th message on edge
//! `(u, v)` is identical under the discrete-event simulator and the
//! thread-per-node runtime — the cross-runtime differential extends to
//! chaos scenarios.
//!
//! Statelessness is what buys determinism: no RNG stream is advanced when a
//! decision is taken, so a plan whose probabilities are all zero perturbs
//! nothing and yields bit-identical executions to a run with no plan at all.

use dbac_graph::NodeId;
use std::collections::HashMap;

/// One fault behaviour on one directed edge.
///
/// Probabilities are per-message and must lie in `[0, 1]`; steps count
/// messages on that edge (0-based), not rounds or wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFault {
    /// Each message on the edge vanishes independently with probability
    /// `prob`.
    Drop {
        /// Per-message drop probability in `[0, 1]`.
        prob: f64,
    },
    /// Each message on the edge is delivered twice with probability `prob`.
    Duplicate {
        /// Per-message duplication probability in `[0, 1]`.
        prob: f64,
    },
    /// Each message on the edge is held back by a pseudo-random extra delay
    /// drawn uniformly from `0..=window` (virtual ticks under the
    /// simulator, microseconds under the threaded runtime).
    Reorder {
        /// Maximum extra delay; 0 disables the fault.
        window: u64,
    },
    /// Each message on the edge is damaged in flight with probability
    /// `prob`; receivers detect the damage (checksums) and discard the
    /// message, so a corruption is an attributable drop.
    Corrupt {
        /// Per-message corruption probability in `[0, 1]`.
        prob: f64,
    },
    /// The edge is cut for messages `from_step..to_step` (by per-edge
    /// message index): the k-th message on the edge is dropped iff
    /// `from_step <= k < to_step`.
    Partition {
        /// First message index affected.
        from_step: u64,
        /// First message index no longer affected.
        to_step: u64,
    },
    /// The edge never delivers anything — a permanent cut.
    Omit,
}

impl LinkFault {
    /// Short display label, for sweep axes and error messages.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            LinkFault::Drop { .. } => "drop",
            LinkFault::Duplicate { .. } => "duplicate",
            LinkFault::Reorder { .. } => "reorder",
            LinkFault::Corrupt { .. } => "corrupt",
            LinkFault::Partition { .. } => "partition",
            LinkFault::Omit => "omit",
        }
    }
}

/// What happens to one concrete message after the plan is consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDecision {
    /// How many copies to deliver: 0 = dropped, 1 = normal, 2+ = duplicated.
    pub copies: u32,
    /// True when a zero-copy decision came from [`LinkFault::Corrupt`]
    /// rather than a loss fault (the two are counted separately).
    pub corrupted: bool,
    /// Extra delivery delay from [`LinkFault::Reorder`] (ticks / µs).
    pub extra_delay: u64,
}

impl LinkDecision {
    /// The undisturbed decision: one copy, no damage, no extra delay.
    pub const CLEAN: LinkDecision = LinkDecision { copies: 1, corrupted: false, extra_delay: 0 };

    const DROPPED: LinkDecision = LinkDecision { copies: 0, corrupted: false, extra_delay: 0 };
    const CORRUPTED: LinkDecision = LinkDecision { copies: 0, corrupted: true, extra_delay: 0 };
}

/// A seeded, deterministic schedule of link faults.
///
/// Build one with [`LinkFaultPlan::new`] and chain [`fault`](Self::fault)
/// calls; attach it to a `Scenario` (or directly to a runtime) and every
/// message crossing a faulted edge is judged by [`decide`](Self::decide).
/// Faults on the same edge apply in declaration order; the first fault that
/// destroys the message wins and later faults are not consulted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkFaultPlan {
    seed: u64,
    budget: Option<usize>,
    faults: Vec<(NodeId, NodeId, LinkFault)>,
}

impl LinkFaultPlan {
    /// Creates an empty plan whose decisions derive from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        LinkFaultPlan { seed, budget: None, faults: Vec::new() }
    }

    /// Adds `fault` on the directed edge `from -> to` (chainable).
    #[must_use]
    pub fn fault(mut self, from: NodeId, to: NodeId, fault: LinkFault) -> Self {
        self.faults.push((from, to, fault));
        self
    }

    /// Caps the number of *distinct edges* the plan may touch; validation
    /// layers reject plans exceeding it (chainable).
    #[must_use]
    pub fn with_budget(mut self, edges: usize) -> Self {
        self.budget = Some(edges);
        self
    }

    /// The decision seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The declared edge budget, if any.
    #[must_use]
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// The declared faults, in declaration order.
    #[must_use]
    pub fn faults(&self) -> &[(NodeId, NodeId, LinkFault)] {
        &self.faults
    }

    /// True when no fault is declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of distinct edges named by the plan.
    #[must_use]
    pub fn distinct_edges(&self) -> usize {
        let mut edges: Vec<(usize, usize)> =
            self.faults.iter().map(|(u, v, _)| (u.index(), v.index())).collect();
        edges.sort_unstable();
        edges.dedup();
        edges.len()
    }

    /// Judges the `k`-th message on edge `from -> to`.
    ///
    /// Pure in `(self, from, to, k)`: no internal state advances, so both
    /// runtimes (and replays) reach identical verdicts.
    #[must_use]
    pub fn decide(&self, from: NodeId, to: NodeId, k: u64) -> LinkDecision {
        let mut copies: u32 = 1;
        let mut extra_delay: u64 = 0;
        for (idx, (u, v, fault)) in self.faults.iter().enumerate() {
            if *u != from || *v != to {
                continue;
            }
            // Each fault instance gets its own decision stream: the salt
            // folds in both the fault kind and its position in the plan.
            let salt = |kind: u64| (kind << 32) | idx as u64;
            match fault {
                LinkFault::Omit => return LinkDecision::DROPPED,
                LinkFault::Partition { from_step, to_step } => {
                    if (*from_step..*to_step).contains(&k) {
                        return LinkDecision::DROPPED;
                    }
                }
                LinkFault::Drop { prob } => {
                    if unit_f64(edge_word(self.seed, from, to, k, salt(SALT_DROP))) < *prob {
                        return LinkDecision::DROPPED;
                    }
                }
                LinkFault::Corrupt { prob } => {
                    if unit_f64(edge_word(self.seed, from, to, k, salt(SALT_CORRUPT))) < *prob {
                        return LinkDecision::CORRUPTED;
                    }
                }
                LinkFault::Duplicate { prob } => {
                    if unit_f64(edge_word(self.seed, from, to, k, salt(SALT_DUP))) < *prob {
                        copies = copies.saturating_add(1);
                    }
                }
                LinkFault::Reorder { window } => {
                    if *window > 0 {
                        let draw = edge_word(self.seed, from, to, k, salt(SALT_REORDER));
                        extra_delay = extra_delay.saturating_add(draw % (window + 1));
                    }
                }
            }
        }
        LinkDecision { copies, corrupted: false, extra_delay }
    }
}

const SALT_DROP: u64 = 1;
const SALT_DUP: u64 = 2;
const SALT_CORRUPT: u64 = 3;
const SALT_REORDER: u64 = 4;

/// splitmix64 finalizer — the same mixer the workspace's `SmallRng` uses.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The decision word for message `k` on `from -> to` under `salt`.
fn edge_word(seed: u64, from: NodeId, to: NodeId, k: u64, salt: u64) -> u64 {
    let edge = ((from.index() as u64) << 32) | (to.index() as u64 & 0xFFFF_FFFF);
    mix64(mix64(mix64(seed ^ edge) ^ k) ^ salt)
}

/// Maps a decision word onto `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-edge message counters: assigns each send on `(from, to)` its index
/// `k` in send order. Each runtime keeps its own instance(s); because an
/// edge has exactly one sender, per-sender counting in the threaded runtime
/// agrees with the simulator's global counting.
#[derive(Clone, Debug, Default)]
pub struct EdgeCounters {
    counts: HashMap<(usize, usize), u64>,
}

impl EdgeCounters {
    /// Creates an empty counter table.
    #[must_use]
    pub fn new() -> Self {
        EdgeCounters::default()
    }

    /// Returns the index of the next message on `from -> to` and advances
    /// the counter.
    pub fn next(&mut self, from: NodeId, to: NodeId) -> u64 {
        let slot = self.counts.entry((from.index(), to.index())).or_insert(0);
        let k = *slot;
        *slot += 1;
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let plan = LinkFaultPlan::new(7).fault(id(0), id(1), LinkFault::Drop { prob: 0.5 });
        let a: Vec<_> = (0..64).map(|k| plan.decide(id(0), id(1), k)).collect();
        let b: Vec<_> = (0..64).map(|k| plan.decide(id(0), id(1), k)).collect();
        assert_eq!(a, b, "same (plan, k) must decide identically");
        let other = LinkFaultPlan::new(8).fault(id(0), id(1), LinkFault::Drop { prob: 0.5 });
        let c: Vec<_> = (0..64).map(|k| other.decide(id(0), id(1), k)).collect();
        assert_ne!(a, c, "a different seed must give a different schedule");
    }

    #[test]
    fn untouched_edges_are_clean() {
        let plan = LinkFaultPlan::new(1).fault(id(0), id(1), LinkFault::Omit);
        assert_eq!(plan.decide(id(1), id(0), 0), LinkDecision::CLEAN);
        assert_eq!(plan.decide(id(2), id(3), 9), LinkDecision::CLEAN);
    }

    #[test]
    fn zero_probabilities_change_nothing() {
        let plan = LinkFaultPlan::new(3)
            .fault(id(0), id(1), LinkFault::Drop { prob: 0.0 })
            .fault(id(0), id(1), LinkFault::Duplicate { prob: 0.0 })
            .fault(id(0), id(1), LinkFault::Corrupt { prob: 0.0 })
            .fault(id(0), id(1), LinkFault::Reorder { window: 0 })
            .fault(id(0), id(1), LinkFault::Partition { from_step: 5, to_step: 5 });
        for k in 0..256 {
            assert_eq!(plan.decide(id(0), id(1), k), LinkDecision::CLEAN);
        }
    }

    #[test]
    fn certain_faults_always_fire() {
        let drop = LinkFaultPlan::new(1).fault(id(0), id(1), LinkFault::Drop { prob: 1.0 });
        let dup = LinkFaultPlan::new(1).fault(id(0), id(1), LinkFault::Duplicate { prob: 1.0 });
        let corrupt = LinkFaultPlan::new(1).fault(id(0), id(1), LinkFault::Corrupt { prob: 1.0 });
        for k in 0..64 {
            assert_eq!(drop.decide(id(0), id(1), k).copies, 0);
            assert_eq!(dup.decide(id(0), id(1), k).copies, 2);
            let c = corrupt.decide(id(0), id(1), k);
            assert!(c.copies == 0 && c.corrupted);
        }
    }

    #[test]
    fn partition_window_is_half_open() {
        let plan = LinkFaultPlan::new(1).fault(
            id(0),
            id(1),
            LinkFault::Partition { from_step: 2, to_step: 4 },
        );
        let fates: Vec<u32> = (0..6).map(|k| plan.decide(id(0), id(1), k).copies).collect();
        assert_eq!(fates, vec![1, 1, 0, 0, 1, 1]);
    }

    #[test]
    fn omit_kills_every_message() {
        let plan = LinkFaultPlan::new(1).fault(id(0), id(1), LinkFault::Omit);
        assert!((0..128).all(|k| plan.decide(id(0), id(1), k).copies == 0));
    }

    #[test]
    fn first_destroying_fault_wins() {
        let plan = LinkFaultPlan::new(1).fault(id(0), id(1), LinkFault::Drop { prob: 1.0 }).fault(
            id(0),
            id(1),
            LinkFault::Corrupt { prob: 1.0 },
        );
        let d = plan.decide(id(0), id(1), 0);
        assert!(d.copies == 0 && !d.corrupted, "the drop fired before the corruption");
    }

    #[test]
    fn reorder_draws_stay_in_window() {
        let plan = LinkFaultPlan::new(9).fault(id(0), id(1), LinkFault::Reorder { window: 5 });
        let delays: Vec<u64> = (0..256).map(|k| plan.decide(id(0), id(1), k).extra_delay).collect();
        assert!(delays.iter().all(|&d| d <= 5));
        assert!(delays.iter().any(|&d| d > 0), "a 256-draw run should hit the window");
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = LinkFaultPlan::new(42).fault(id(0), id(1), LinkFault::Drop { prob: 0.3 });
        let dropped =
            (0..10_000).filter(|&k| plan.decide(id(0), id(1), k).copies == 0).count() as f64;
        let rate = dropped / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "empirical drop rate {rate} far from 0.3");
    }

    #[test]
    fn distinct_edges_deduplicates() {
        let plan = LinkFaultPlan::new(1)
            .fault(id(0), id(1), LinkFault::Omit)
            .fault(id(0), id(1), LinkFault::Drop { prob: 0.5 })
            .fault(id(1), id(2), LinkFault::Omit);
        assert_eq!(plan.distinct_edges(), 2);
    }

    #[test]
    fn edge_counters_count_per_edge() {
        let mut counters = EdgeCounters::new();
        assert_eq!(counters.next(id(0), id(1)), 0);
        assert_eq!(counters.next(id(0), id(1)), 1);
        assert_eq!(counters.next(id(1), id(0)), 0, "the reverse edge counts separately");
        assert_eq!(counters.next(id(0), id(1)), 2);
    }
}
