//! Live, contention-free statistics registry shared by all three runtimes.
//!
//! Production systems expose counters while a run is in flight, not only
//! after it lands. This module provides that plane:
//!
//! * [`StatsRegistry`] — the per-run registry. Each writer thread calls
//!   [`StatsRegistry::register`] once and receives a [`StatsHandle`]
//!   owning a private *shard* of plain `u64` cells. The hot path does a
//!   single-writer load-then-store on its own cells — never a shared
//!   atomic read-modify-write, never a lock.
//! * [`StatsHandle`] — the write side. One handle per writer thread
//!   (the simulator's event loop, each `Threaded`/`Net` node thread,
//!   each `Net` reader thread).
//! * [`StatsSnapshot`] — the read side: [`StatsRegistry::snapshot`]
//!   merges every shard by summing cells. Snapshots may be taken at any
//!   time during a live run; repeated snapshots never regress (each cell
//!   is monotone and atomics give per-location coherence), so live
//!   pollers see totals that only grow.
//!
//! Counters a runtime genuinely cannot measure are reported as a typed
//! [`Coverage::NotObservable`] marker instead of a silent zero — e.g.
//! virtual time exists only under the discrete-event simulator, while
//! wall-clock elapsed exists everywhere.
//!
//! Message counters are kept **per message class** ([`MsgClass`]): the
//! runtimes ask the [`crate::process::Process`] impl to classify each
//! payload, so a BW run can report FLOOD and COMPLETE traffic separately
//! while baseline protocols land in their own buckets.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Coarse message classification used to bucket transport counters.
///
/// Classes are protocol-level, not runtime-level: each
/// [`crate::process::Process`] impl overrides
/// [`crate::process::Process::classify`] to map its wire messages here.
/// Payloads no impl claims (test processes, undecodable frames) land in
/// [`MsgClass::Other`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// BW `FLOOD` traffic (per-round value floods over simple paths).
    Flood,
    /// BW `COMPLETE` traffic (Maximal-Consistency witness broadcasts).
    Complete,
    /// Crash-consensus protocol traffic.
    Crash,
    /// Reliable-broadcast probe traffic.
    Rbc,
    /// AAD04 baseline traffic.
    Aad,
    /// Iterative W-MSR traffic (per-round trimmed-mean value exchange).
    Iter,
    /// Anything else: test harness payloads, undecodable frames.
    Other,
}

/// Number of [`MsgClass`] variants (the per-shard array width).
pub const MSG_CLASS_COUNT: usize = 7;

impl MsgClass {
    /// All classes, in array-index order.
    pub const ALL: [MsgClass; MSG_CLASS_COUNT] = [
        MsgClass::Flood,
        MsgClass::Complete,
        MsgClass::Crash,
        MsgClass::Rbc,
        MsgClass::Aad,
        MsgClass::Iter,
        MsgClass::Other,
    ];

    /// Dense index of this class (stable; used as the shard array offset).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            MsgClass::Flood => 0,
            MsgClass::Complete => 1,
            MsgClass::Crash => 2,
            MsgClass::Rbc => 3,
            MsgClass::Aad => 4,
            MsgClass::Iter => 5,
            MsgClass::Other => 6,
        }
    }

    /// Lower-case label (stable; used in the flat key/value export).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Flood => "flood",
            MsgClass::Complete => "complete",
            MsgClass::Crash => "crash",
            MsgClass::Rbc => "rbc",
            MsgClass::Aad => "aad",
            MsgClass::Iter => "iter",
            MsgClass::Other => "other",
        }
    }
}

/// Transport counter kinds tracked per message class.
const KIND_COUNT: usize = 6;
const KIND_SENT: usize = 0;
const KIND_DELIVERED: usize = 1;
const KIND_DROPPED: usize = 2;
const KIND_DUPLICATED: usize = 3;
const KIND_CORRUPTED: usize = 4;
const KIND_REJECTED: usize = 5;

/// Protocol counter slots (shard scalar cells).
const PROTO_COUNT: usize = 4;
const PROTO_ROUNDS: usize = 0;
const PROTO_WITNESS: usize = 1;
const PROTO_MC: usize = 2;
const PROTO_FRA: usize = 3;

/// One writer thread's private cell block. Only the owning
/// [`StatsHandle`] writes these cells; the registry reads them with
/// relaxed loads when merging a snapshot.
struct Shard {
    /// `msg[class * KIND_COUNT + kind]`.
    msg: [AtomicU64; MSG_CLASS_COUNT * KIND_COUNT],
    /// Protocol progress counters.
    proto: [AtomicU64; PROTO_COUNT],
    /// Physical copies this writer queued toward each destination node.
    enqueued: Vec<AtomicU64>,
    /// Messages this writer's node consumed from its inbound queue.
    consumed: Vec<AtomicU64>,
    /// 0/1 gauge: this writer's node reached its done predicate.
    done: Vec<AtomicU64>,
}

impl Shard {
    fn new(n: usize) -> Shard {
        Shard {
            msg: std::array::from_fn(|_| AtomicU64::new(0)),
            proto: std::array::from_fn(|_| AtomicU64::new(0)),
            enqueued: (0..n).map(|_| AtomicU64::new(0)).collect(),
            consumed: (0..n).map(|_| AtomicU64::new(0)).collect(),
            done: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Bumps `cell` by `by` with a plain load-then-store. The cell has a
/// single writer (the shard owner), so the read-modify-write needs no
/// atomicity — the atomic type only makes concurrent *reads* defined.
#[inline]
fn bump(cell: &AtomicU64, by: u64) {
    cell.store(cell.load(Ordering::Relaxed).wrapping_add(by), Ordering::Relaxed);
}

/// The write side of the registry: one per writer thread.
///
/// All increments touch only this handle's private shard. Handles are
/// `Send` (a thread takes its handle with it) but deliberately not
/// `Clone` — cloning would create two writers for one shard and break
/// the unsynchronized-increment contract.
pub struct StatsHandle {
    shard: Arc<Shard>,
}

impl std::fmt::Debug for StatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsHandle").finish_non_exhaustive()
    }
}

impl StatsHandle {
    /// A message of `class` was handed to the transport.
    #[inline]
    pub fn record_sent(&self, class: MsgClass) {
        bump(&self.shard.msg[class.index() * KIND_COUNT + KIND_SENT], 1);
    }

    /// A message of `class` was delivered to its destination process.
    #[inline]
    pub fn record_delivered(&self, class: MsgClass) {
        bump(&self.shard.msg[class.index() * KIND_COUNT + KIND_DELIVERED], 1);
    }

    /// Link chaos dropped a message of `class`.
    #[inline]
    pub fn record_dropped(&self, class: MsgClass) {
        bump(&self.shard.msg[class.index() * KIND_COUNT + KIND_DROPPED], 1);
    }

    /// Link chaos injected one extra copy of a message of `class`.
    #[inline]
    pub fn record_duplicated(&self, class: MsgClass) {
        bump(&self.shard.msg[class.index() * KIND_COUNT + KIND_DUPLICATED], 1);
    }

    /// Link chaos corrupted (and therefore consumed) a message of `class`.
    #[inline]
    pub fn record_corrupted(&self, class: MsgClass) {
        bump(&self.shard.msg[class.index() * KIND_COUNT + KIND_CORRUPTED], 1);
    }

    /// The transport discarded an arrival of `class` (e.g. an
    /// undecodable frame on the wire).
    #[inline]
    pub fn record_rejected(&self, class: MsgClass) {
        bump(&self.shard.msg[class.index() * KIND_COUNT + KIND_REJECTED], 1);
    }

    /// A physical copy was queued toward node `to`'s inbound queue.
    #[inline]
    pub fn record_enqueued(&self, to: usize) {
        if let Some(cell) = self.shard.enqueued.get(to) {
            bump(cell, 1);
        }
    }

    /// Node `node` consumed one message from its inbound queue.
    #[inline]
    pub fn record_consumed(&self, node: usize) {
        if let Some(cell) = self.shard.consumed.get(node) {
            bump(cell, 1);
        }
    }

    /// Node `node` reached its protocol done predicate.
    #[inline]
    pub fn mark_done(&self, node: usize) {
        if let Some(cell) = self.shard.done.get(node) {
            cell.store(1, Ordering::Relaxed);
        }
    }

    /// A node advanced a round (BW Filter-and-Average fired, or an
    /// iterative/baseline protocol completed one exchange round).
    #[inline]
    pub fn record_round_fired(&self) {
        bump(&self.shard.proto[PROTO_ROUNDS], 1);
    }

    /// Adds `by` round firings at once (synchronous protocols that know
    /// their round count up front).
    #[inline]
    pub fn add_rounds_fired(&self, by: u64) {
        bump(&self.shard.proto[PROTO_ROUNDS], by);
    }

    /// Adds `by` witness completions (FIFO-Receive-All witnesses done).
    #[inline]
    pub fn add_witness_completions(&self, by: u64) {
        bump(&self.shard.proto[PROTO_WITNESS], by);
    }

    /// A Maximal-Consistency thread fired (a `COMPLETE` broadcast).
    #[inline]
    pub fn record_mc_firing(&self) {
        bump(&self.shard.proto[PROTO_MC], 1);
    }

    /// Adds `by` FRA progress marks (fresh `(path, fingerprint)` bits).
    #[inline]
    pub fn add_fra_marks(&self, by: u64) {
        bump(&self.shard.proto[PROTO_FRA], by);
    }
}

/// Per-run statistics registry: the single source of truth for what a
/// run did, across all three runtimes.
///
/// Create one per run ([`StatsRegistry::new`]), hand a [`StatsHandle`]
/// to every writer thread ([`StatsRegistry::register`]), and read merged
/// totals at any time with [`StatsRegistry::snapshot`].
pub struct StatsRegistry {
    n: usize,
    created: Instant,
    shards: Mutex<Vec<Arc<Shard>>>,
    transport_observed: AtomicBool,
    nodes_observed: AtomicBool,
    virtual_time_observed: AtomicBool,
    virtual_time: AtomicU64,
    wall_finalized: AtomicBool,
    wall_nanos: AtomicU64,
}

impl std::fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsRegistry").field("n", &self.n).finish_non_exhaustive()
    }
}

impl StatsRegistry {
    /// Creates a registry for a run over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Arc<StatsRegistry> {
        Arc::new(StatsRegistry {
            n,
            created: Instant::now(),
            shards: Mutex::new(Vec::new()),
            transport_observed: AtomicBool::new(false),
            nodes_observed: AtomicBool::new(false),
            virtual_time_observed: AtomicBool::new(false),
            virtual_time: AtomicU64::new(0),
            wall_finalized: AtomicBool::new(false),
            wall_nanos: AtomicU64::new(0),
        })
    }

    /// Number of nodes the per-node gauges cover.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Registers a new writer thread and returns its private handle.
    /// Called off the hot path (thread start-up), so the lock is fine.
    #[must_use]
    pub fn register(&self) -> StatsHandle {
        let shard = Arc::new(Shard::new(self.n));
        self.shards.lock().expect("stats registry poisoned").push(Arc::clone(&shard));
        StatsHandle { shard }
    }

    /// Declares that a runtime is feeding transport counters, so the
    /// snapshot reports them as [`Coverage::Measured`].
    pub fn note_transport_observed(&self) {
        self.transport_observed.store(true, Ordering::Release);
    }

    /// Declares that per-node queue/done gauges are being fed.
    pub fn note_nodes_observed(&self) {
        self.nodes_observed.store(true, Ordering::Release);
    }

    /// Records the simulator's virtual clock (monotone gauge; only the
    /// discrete-event runtime can observe this).
    pub fn record_virtual_time(&self, ticks: u64) {
        self.virtual_time_observed.store(true, Ordering::Release);
        self.virtual_time.store(ticks, Ordering::Release);
    }

    /// Freezes the wall-clock elapsed gauge at "now". Idempotent: the
    /// first call wins, so snapshots taken after the run keep reporting
    /// the run's duration rather than the poller's.
    pub fn finalize_wall(&self) {
        if !self.wall_finalized.swap(true, Ordering::AcqRel) {
            let nanos = u64::try_from(self.created.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.wall_nanos.store(nanos, Ordering::Release);
        }
    }

    /// Merges every shard into one [`StatsSnapshot`]. Safe to call at
    /// any time, from any thread, concurrently with live writers; the
    /// sums it reports never regress between calls.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        let shards: Vec<Arc<Shard>> = self.shards.lock().expect("stats registry poisoned").clone();
        let mut transport = TransportSnapshot::default();
        let mut protocol = ProtocolCounters::default();
        let mut nodes = vec![NodeCounters::default(); self.n];
        for shard in &shards {
            for class in MsgClass::ALL {
                let base = class.index() * KIND_COUNT;
                let c = &mut transport.by_class[class.index()];
                c.sent += shard.msg[base + KIND_SENT].load(Ordering::Relaxed);
                c.delivered += shard.msg[base + KIND_DELIVERED].load(Ordering::Relaxed);
                c.dropped += shard.msg[base + KIND_DROPPED].load(Ordering::Relaxed);
                c.duplicated += shard.msg[base + KIND_DUPLICATED].load(Ordering::Relaxed);
                c.corrupted += shard.msg[base + KIND_CORRUPTED].load(Ordering::Relaxed);
                c.rejected += shard.msg[base + KIND_REJECTED].load(Ordering::Relaxed);
            }
            protocol.rounds_fired += shard.proto[PROTO_ROUNDS].load(Ordering::Relaxed);
            protocol.witness_completions += shard.proto[PROTO_WITNESS].load(Ordering::Relaxed);
            protocol.mc_firings += shard.proto[PROTO_MC].load(Ordering::Relaxed);
            protocol.fra_marks += shard.proto[PROTO_FRA].load(Ordering::Relaxed);
            for (v, node) in nodes.iter_mut().enumerate() {
                node.enqueued += shard.enqueued[v].load(Ordering::Relaxed);
                node.consumed += shard.consumed[v].load(Ordering::Relaxed);
                node.done |= shard.done[v].load(Ordering::Relaxed) != 0;
            }
        }
        let wall_nanos = if self.wall_finalized.load(Ordering::Acquire) {
            self.wall_nanos.load(Ordering::Acquire)
        } else {
            u64::try_from(self.created.elapsed().as_nanos()).unwrap_or(u64::MAX)
        };
        StatsSnapshot {
            transport: if self.transport_observed.load(Ordering::Acquire) {
                Coverage::Measured(transport)
            } else {
                Coverage::NotObservable("no runtime fed transport counters")
            },
            protocol,
            nodes: if self.nodes_observed.load(Ordering::Acquire) {
                Coverage::Measured(nodes)
            } else {
                Coverage::NotObservable("no runtime fed per-node gauges")
            },
            virtual_time: if self.virtual_time_observed.load(Ordering::Acquire) {
                Coverage::Measured(self.virtual_time.load(Ordering::Acquire))
            } else {
                Coverage::NotObservable("virtual time exists only under the simulator")
            },
            wall_nanos: Coverage::Measured(wall_nanos),
        }
    }
}

/// Whether a runtime measured a statistic, or genuinely could not.
///
/// This replaces the old "fields a runtime cannot fill stay silently
/// zero" convention: a zero now always means *measured zero*, and an
/// unmeasurable field carries a human-readable reason instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Coverage<T> {
    /// The runtime measured this value.
    Measured(T),
    /// The runtime cannot observe this quantity; the payload says why.
    NotObservable(&'static str),
}

impl<T> Coverage<T> {
    /// The measured value, if any.
    pub fn measured(&self) -> Option<&T> {
        match self {
            Coverage::Measured(v) => Some(v),
            Coverage::NotObservable(_) => None,
        }
    }

    /// Whether the value was measured.
    pub fn is_measured(&self) -> bool {
        matches!(self, Coverage::Measured(_))
    }
}

impl<T> Default for Coverage<T> {
    fn default() -> Self {
        Coverage::NotObservable("not recorded")
    }
}

/// Transport counters for one message class. All six counters have one
/// meaning on every runtime:
///
/// * `sent` — logical sends the protocol handed to the transport.
/// * `delivered` — arrivals handed to a destination process.
/// * `dropped` — copies link chaos removed.
/// * `duplicated` — *extra* copies link chaos injected.
/// * `corrupted` — copies link chaos corrupted (consumed, not delivered).
/// * `rejected` — arrivals the transport discarded (undecodable frames).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Logical sends handed to the transport.
    pub sent: u64,
    /// Arrivals handed to a destination process.
    pub delivered: u64,
    /// Copies removed by link chaos.
    pub dropped: u64,
    /// Extra copies injected by link chaos.
    pub duplicated: u64,
    /// Copies corrupted (and consumed) by link chaos.
    pub corrupted: u64,
    /// Arrivals discarded by the transport itself.
    pub rejected: u64,
}

impl ClassCounters {
    /// Copies still in flight: every physical copy
    /// (`sent + duplicated`) ends in exactly one terminal state
    /// (`delivered`, `dropped`, `corrupted`, `rejected`); the remainder
    /// is queued or on the wire. At quiescence this is the undelivered
    /// backlog; during a live run it is the in-flight count.
    #[must_use]
    pub fn undelivered(&self) -> u64 {
        (self.sent + self.duplicated)
            .saturating_sub(self.delivered + self.dropped + self.corrupted + self.rejected)
    }

    fn add(&mut self, other: &ClassCounters) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.corrupted += other.corrupted;
        self.rejected += other.rejected;
    }
}

/// Transport counters, bucketed by [`MsgClass`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportSnapshot {
    /// One counter block per class, indexed by [`MsgClass::index`].
    pub by_class: [ClassCounters; MSG_CLASS_COUNT],
}

impl TransportSnapshot {
    /// The counter block for one class.
    #[must_use]
    pub fn class(&self, class: MsgClass) -> &ClassCounters {
        &self.by_class[class.index()]
    }

    /// Sum over all classes.
    #[must_use]
    pub fn total(&self) -> ClassCounters {
        let mut t = ClassCounters::default();
        for c in &self.by_class {
            t.add(c);
        }
        t
    }
}

/// Protocol progress counters. These count once-per-state-element
/// events, so on fault-free runs they are schedule-independent and
/// identical across runtimes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Rounds advanced across all nodes (BW Filter-and-Average firings,
    /// or baseline round completions).
    pub rounds_fired: u64,
    /// FIFO-Receive-All witnesses completed across all nodes.
    pub witness_completions: u64,
    /// Maximal-Consistency firings (`COMPLETE` broadcasts) across all
    /// nodes.
    pub mc_firings: u64,
    /// Fresh FRA `(path, fingerprint)` progress marks across all nodes.
    pub fra_marks: u64,
}

/// Per-node gauges (sampled, not exact — `enqueued` is bumped by sender
/// threads, `consumed` by the receiver, so a live read can momentarily
/// disagree by messages in flight).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Physical copies queued toward this node.
    pub enqueued: u64,
    /// Messages this node consumed from its inbound queue.
    pub consumed: u64,
    /// Whether this node reached its protocol done predicate.
    pub done: bool,
}

impl NodeCounters {
    /// Sampled inbound queue depth (enqueued minus consumed).
    #[must_use]
    pub fn queue_depth(&self) -> u64 {
        self.enqueued.saturating_sub(self.consumed)
    }
}

/// A merged view of a [`StatsRegistry`]: one type describes every
/// runtime. Fields a runtime cannot measure carry a typed
/// [`Coverage::NotObservable`] marker instead of a silent zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Transport counters by message class. `NotObservable` only for
    /// synchronous protocols that never touch a transport.
    pub transport: Coverage<TransportSnapshot>,
    /// Protocol progress counters (always measured; zero when the
    /// protocol has no such notion).
    pub protocol: ProtocolCounters,
    /// Per-node queue/done gauges. `NotObservable` for synchronous
    /// protocols.
    pub nodes: Coverage<Vec<NodeCounters>>,
    /// The simulator's virtual clock at the last delivery. Only the
    /// discrete-event runtime can observe this; `Threaded`/`Net` report
    /// it as `NotObservable` (see [`StatsSnapshot::wall_nanos`] for
    /// their clock).
    pub virtual_time: Coverage<u64>,
    /// Wall-clock elapsed for the run, in nanoseconds. Measured on
    /// every runtime (this replaces the old `final_time`-stays-zero
    /// wart on the threaded runtime).
    pub wall_nanos: Coverage<u64>,
}

impl StatsSnapshot {
    fn total(&self) -> ClassCounters {
        self.transport.measured().map(TransportSnapshot::total).unwrap_or_default()
    }

    /// Total logical sends (0 when transport is not observable).
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.total().sent
    }

    /// Total deliveries (0 when transport is not observable).
    #[must_use]
    pub fn messages_delivered(&self) -> u64 {
        self.total().delivered
    }

    /// Total chaos drops (0 when transport is not observable).
    #[must_use]
    pub fn messages_dropped(&self) -> u64 {
        self.total().dropped
    }

    /// Total chaos-injected extra copies (0 when not observable).
    #[must_use]
    pub fn messages_duplicated(&self) -> u64 {
        self.total().duplicated
    }

    /// Total chaos corruptions (0 when transport is not observable).
    #[must_use]
    pub fn messages_corrupted(&self) -> u64 {
        self.total().corrupted
    }

    /// Total transport rejections (0 when transport is not observable).
    #[must_use]
    pub fn messages_rejected(&self) -> u64 {
        self.total().rejected
    }

    /// Copies still in flight / queued at snapshot time (0 when the
    /// transport is not observable). See [`ClassCounters::undelivered`].
    #[must_use]
    pub fn messages_undelivered(&self) -> u64 {
        self.total().undelivered()
    }

    /// Flattens the snapshot into stable `(key, value)` pairs — the
    /// shared schema for the daemon RPC, `stats.json`, and the
    /// bench-trend registry gate. Unmeasured coverage markers are
    /// omitted (never emitted as zeros); per-node gauges are summarized
    /// by their maximum sampled depth.
    #[must_use]
    pub fn to_kv(&self) -> Vec<(String, u64)> {
        let mut kv = Vec::new();
        if let Some(t) = self.transport.measured() {
            let total = t.total();
            kv.push(("sent".to_string(), total.sent));
            kv.push(("delivered".to_string(), total.delivered));
            kv.push(("dropped".to_string(), total.dropped));
            kv.push(("duplicated".to_string(), total.duplicated));
            kv.push(("corrupted".to_string(), total.corrupted));
            kv.push(("rejected".to_string(), total.rejected));
            kv.push(("undelivered".to_string(), total.undelivered()));
            for class in MsgClass::ALL {
                let c = t.class(class);
                if c == &ClassCounters::default() {
                    continue;
                }
                kv.push((format!("{}_sent", class.label()), c.sent));
                kv.push((format!("{}_delivered", class.label()), c.delivered));
                kv.push((format!("{}_dropped", class.label()), c.dropped));
                kv.push((format!("{}_duplicated", class.label()), c.duplicated));
                kv.push((format!("{}_corrupted", class.label()), c.corrupted));
                kv.push((format!("{}_rejected", class.label()), c.rejected));
            }
        }
        kv.push(("rounds_fired".to_string(), self.protocol.rounds_fired));
        kv.push(("witness_completions".to_string(), self.protocol.witness_completions));
        kv.push(("mc_firings".to_string(), self.protocol.mc_firings));
        kv.push(("fra_marks".to_string(), self.protocol.fra_marks));
        if let Some(nodes) = self.nodes.measured() {
            let done = nodes.iter().filter(|n| n.done).count() as u64;
            let max_depth = nodes.iter().map(NodeCounters::queue_depth).max().unwrap_or(0);
            kv.push(("nodes_done".to_string(), done));
            kv.push(("max_queue_depth".to_string(), max_depth));
        }
        if let Some(&vt) = self.virtual_time.measured() {
            kv.push(("virtual_time".to_string(), vt));
        }
        if let Some(&w) = self.wall_nanos.measured() {
            kv.push(("wall_nanos".to_string(), w));
        }
        kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn empty_registry_snapshot_is_unobserved() {
        let reg = StatsRegistry::new(3);
        let snap = reg.snapshot();
        assert!(!snap.transport.is_measured());
        assert!(!snap.nodes.is_measured());
        assert!(!snap.virtual_time.is_measured());
        assert!(snap.wall_nanos.is_measured(), "wall clock always exists");
        assert_eq!(snap.messages_sent(), 0);
        assert_eq!(snap.protocol, ProtocolCounters::default());
    }

    #[test]
    fn single_writer_counts_merge() {
        let reg = StatsRegistry::new(2);
        reg.note_transport_observed();
        reg.note_nodes_observed();
        let h = reg.register();
        h.record_sent(MsgClass::Flood);
        h.record_sent(MsgClass::Flood);
        h.record_sent(MsgClass::Complete);
        h.record_delivered(MsgClass::Flood);
        h.record_dropped(MsgClass::Complete);
        h.record_enqueued(1);
        h.record_consumed(1);
        h.record_enqueued(1);
        h.mark_done(0);
        h.record_round_fired();
        h.add_fra_marks(3);
        let snap = reg.snapshot();
        let t = snap.transport.measured().expect("observed");
        assert_eq!(t.class(MsgClass::Flood).sent, 2);
        assert_eq!(t.class(MsgClass::Complete).sent, 1);
        assert_eq!(snap.messages_sent(), 3);
        assert_eq!(snap.messages_delivered(), 1);
        assert_eq!(snap.messages_dropped(), 1);
        assert_eq!(snap.messages_undelivered(), 1);
        assert_eq!(snap.protocol.rounds_fired, 1);
        assert_eq!(snap.protocol.fra_marks, 3);
        let nodes = snap.nodes.measured().expect("observed");
        assert!(nodes[0].done && !nodes[1].done);
        assert_eq!(nodes[1].queue_depth(), 1);
    }

    #[test]
    fn shards_merge_across_threads_and_reads_never_regress() {
        let reg = StatsRegistry::new(1);
        reg.note_transport_observed();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let h = reg.register();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        h.record_sent(MsgClass::Other);
                    }
                })
            })
            .collect();
        let reader = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last = 0u64;
                let mut polls = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let now = reg.snapshot().messages_sent();
                    assert!(now >= last, "live totals regressed: {last} -> {now}");
                    last = now;
                    polls += 1;
                }
                polls
            })
        };
        for w in writers {
            w.join().expect("writer");
        }
        stop.store(true, Ordering::Release);
        assert!(reader.join().expect("reader") > 0);
        assert_eq!(reg.snapshot().messages_sent(), 40_000);
    }

    #[test]
    fn finalize_wall_freezes_elapsed() {
        let reg = StatsRegistry::new(1);
        reg.finalize_wall();
        let a = *reg.snapshot().wall_nanos.measured().expect("measured");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = *reg.snapshot().wall_nanos.measured().expect("measured");
        assert_eq!(a, b, "first finalize wins");
    }

    #[test]
    fn kv_schema_is_stable_and_skips_unmeasured() {
        let reg = StatsRegistry::new(2);
        let bare: Vec<String> = reg.snapshot().to_kv().into_iter().map(|(k, _)| k).collect();
        assert!(bare.contains(&"rounds_fired".to_string()));
        assert!(!bare.contains(&"sent".to_string()), "unmeasured transport omitted");
        assert!(!bare.contains(&"virtual_time".to_string()));
        reg.note_transport_observed();
        reg.note_nodes_observed();
        reg.record_virtual_time(7);
        let h = reg.register();
        h.record_sent(MsgClass::Flood);
        let keys: Vec<String> = reg.snapshot().to_kv().into_iter().map(|(k, _)| k).collect();
        for want in
            ["sent", "undelivered", "flood_sent", "nodes_done", "max_queue_depth", "virtual_time"]
        {
            assert!(keys.contains(&want.to_string()), "missing {want}");
        }
        assert!(!keys.contains(&"crash_sent".to_string()), "all-zero class omitted");
    }
}
