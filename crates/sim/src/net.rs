//! Network runtime: one event loop per node over framed byte streams.
//!
//! The third runtime of the workspace. Where [`crate::sim`] delivers
//! in-memory messages from a virtual-time queue and [`crate::threaded`]
//! clones them across crossbeam channels, this runtime **serializes every
//! message** through the length-prefixed binary codec
//! ([`codec::WireMessage`]) and moves the bytes over per-peer duplex
//! connections with a connect/accept handshake
//! ([`connection::establish`]) — loopback TCP when the sandbox allows
//! binding a socket, an in-process byte pipe otherwise. Either way the
//! codec and connection layers are byte-real: frames, size caps, decode
//! errors and handshake validation all actually run.
//!
//! Architecture per run:
//!
//! * one **duplex connection** per unordered node pair with at least one
//!   directed edge, established and handshaken sequentially before any
//!   node starts;
//! * one **reader thread** per connection end, pumping frames into the
//!   owning node's inbox; a frame that fails to decode is counted in
//!   [`SimStats::messages_rejected`](crate::sim::SimStats::messages_rejected)
//!   and skipped — a framing-level error
//!   (oversize prefix, truncation) closes that connection, and neither
//!   ever wedges the node's event loop;
//! * one **node thread** per node running the same
//!   [`Process`]/[`Adversary`] dispatch loop as the threaded runtime, with
//!   [`LinkFaultPlan`] decisions interposed on the send path through the
//!   same per-edge message-index function, so the fate of the k-th message
//!   on an edge is identical across all three runtimes;
//! * the **watchdog and straggler classification are shared** with the
//!   threaded runtime (`await_completion` / `join_and_classify`), so a
//!   partitioned or panicked node degrades into the same typed
//!   [`Incomplete`](crate::threaded::Incomplete) reports.

pub mod codec;
pub mod connection;

use crate::chaos::{EdgeCounters, LinkDecision, LinkFaultPlan};
use crate::error::SimError;
use crate::process::{Adversary, Context, Process};
use crate::stats::{MsgClass, StatsHandle, StatsRegistry};
use crate::threaded::{await_completion, join_and_classify, ThreadedReport, Transport};
use codec::{write_frame, FrameReader, WireMessage};
use connection::{establish, Duplex, TransportKind};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dbac_graph::{Digraph, NodeId};
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a network run.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Wall-clock watchdog deadline: nodes still incomplete when it
    /// expires are reported per node, not errors.
    pub timeout: Duration,
    /// Byte transport selection (default: probe TCP, fall back to pipes).
    pub transport: TransportKind,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { timeout: Duration::from_secs(30), transport: TransportKind::Auto }
    }
}

/// A node's frame inbox: decoded messages tagged with their sender.
type Inbox<M> = Sender<(NodeId, M)>;
/// The receiving half a node thread drains.
type InboxRx<M> = Receiver<(NodeId, M)>;

enum Actor<P: Process> {
    Honest(P),
    Byzantine(Box<dyn Adversary<P::Message> + Send>),
}

/// A network execution: every node on its own thread, every message
/// through the wire codec and a framed duplex connection. Assign an actor
/// to every node, then [`run`](Net::run). The report type is shared with
/// the threaded runtime — both degrade identically.
pub struct Net<P: Process> {
    graph: Arc<Digraph>,
    actors: Vec<Option<Actor<P>>>,
    link_faults: Option<Arc<LinkFaultPlan>>,
    registry: Option<Arc<StatsRegistry>>,
}

impl<P> Net<P>
where
    P: Process + Send + 'static,
    P::Message: WireMessage + Send,
{
    /// Creates a network execution over `graph`.
    #[must_use]
    pub fn new(graph: Arc<Digraph>) -> Self {
        let n = graph.node_count();
        Net { graph, actors: (0..n).map(|_| None).collect(), link_faults: None, registry: None }
    }

    /// Assigns an honest process to `v`.
    pub fn set_honest(&mut self, v: NodeId, process: P) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Honest(process));
        self
    }

    /// Assigns a Byzantine adversary to `v`.
    pub fn set_byzantine(
        &mut self,
        v: NodeId,
        adversary: Box<dyn Adversary<P::Message> + Send>,
    ) -> &mut Self {
        self.actors[v.index()] = Some(Actor::Byzantine(adversary));
        self
    }

    /// Attaches a deterministic link-fault plan, interposed on every send
    /// (before serialization, through the same per-edge message-index
    /// function as the other runtimes).
    pub fn set_link_faults(&mut self, plan: LinkFaultPlan) -> &mut Self {
        self.link_faults = Some(Arc::new(plan));
        self
    }

    /// Attaches a live stats registry: every node thread and every
    /// connection reader thread registers its own shard. Node threads
    /// mirror send/delivery counters (per message class via
    /// [`Process::classify`]) plus the per-node gauges; reader threads
    /// account undecodable frames as rejected.
    pub fn set_stats(&mut self, registry: Arc<StatsRegistry>) -> &mut Self {
        registry.note_transport_observed();
        registry.note_nodes_observed();
        self.registry = Some(registry);
        self
    }

    /// Runs every node on its own thread until each honest node satisfies
    /// `done` or the watchdog deadline expires, then stops the network and
    /// hands back the shared per-node report.
    ///
    /// # Errors
    ///
    /// [`SimError::UnassignedNode`] if a node has no actor;
    /// [`SimError::Transport`] if a connection cannot be established or
    /// handshaken.
    pub fn run(
        mut self,
        done: impl Fn(&P) -> bool + Send + Sync + 'static,
        config: NetConfig,
    ) -> Result<ThreadedReport<P>, SimError> {
        if let Some(missing) = self.actors.iter().position(Option::is_none) {
            return Err(SimError::UnassignedNode { node: missing });
        }
        let n = self.graph.node_count();
        let honest_slots: Vec<bool> =
            self.actors.iter().map(|a| matches!(a, Some(Actor::Honest(_)))).collect();
        let honest_total = honest_slots.iter().filter(|h| **h).count();
        let kind = config.transport.resolve();

        let mut inbox_tx: Vec<Option<Inbox<P::Message>>> = Vec::with_capacity(n);
        let mut inbox_rx: Vec<Option<InboxRx<P::Message>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            inbox_tx.push(Some(tx));
            inbox_rx.push(Some(rx));
        }

        // Establish one handshaken duplex connection per unordered pair
        // with at least one directed edge, sequentially in this thread.
        let mut writers: Vec<Vec<Option<Box<dyn std::io::Write + Send>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut reader_specs: Vec<(NodeId, NodeId, Box<dyn Read + Send>)> = Vec::new();
        #[allow(clippy::needless_range_loop)] // `u < v` pair walk, indexing two rows at once
        for u in 0..n {
            for v in (u + 1)..n {
                let (u_id, v_id) = (NodeId::new(u), NodeId::new(v));
                if !self.graph.has_edge(u_id, v_id) && !self.graph.has_edge(v_id, u_id) {
                    continue;
                }
                let (u_end, v_end) = establish(kind, u_id, v_id)
                    .map_err(|e| SimError::Transport { detail: format!("{u_id}<->{v_id}: {e}") })?;
                let Duplex { reader: u_reader, writer: u_writer } = u_end;
                let Duplex { reader: v_reader, writer: v_writer } = v_end;
                writers[u][v] = Some(u_writer);
                writers[v][u] = Some(v_writer);
                // Node u hears v on u's end of the pair, and vice versa.
                reader_specs.push((u_id, v_id, u_reader));
                reader_specs.push((v_id, u_id, v_reader));
            }
        }

        let stop = Arc::new(AtomicBool::new(false));
        let done_count = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(done);
        let transport = Arc::new(Transport::default());

        let mut reader_handles = Vec::with_capacity(reader_specs.len());
        for (owner, from, reader) in reader_specs {
            let inbox = inbox_tx[owner.index()].as_ref().expect("sender alive").clone();
            let stop = Arc::clone(&stop);
            let transport = Arc::clone(&transport);
            let stats = self.registry.as_ref().map(|r| r.register());
            reader_handles.push(std::thread::spawn(move || {
                pump_frames::<P::Message>(reader, from, &inbox, &stop, &transport, stats.as_ref());
            }));
        }
        // Reader threads hold the only inbox senders from here on, so a
        // node whose connections all die sees Disconnected — starvation.
        drop(inbox_tx);

        let mut handles = Vec::with_capacity(n);
        for (i, rx_slot) in inbox_rx.iter_mut().enumerate() {
            let me = NodeId::new(i);
            let actor = self.actors[i].take().expect("checked above");
            let rx = rx_slot.take().expect("taken once");
            let graph = Arc::clone(&self.graph);
            let mut writers = std::mem::take(&mut writers[i]);
            let stop = Arc::clone(&stop);
            let done_count = Arc::clone(&done_count);
            let done = Arc::clone(&done);
            let transport = Arc::clone(&transport);
            let plan = self.link_faults.clone();
            let stats = self.registry.as_ref().map(|r| r.register());

            handles.push(std::thread::spawn(move || {
                let mut actor = actor;
                let mut reported_done = false;
                // Edge (u, v) has exactly one sender, so this thread-local
                // counter agrees with the simulator's global one.
                let mut edge_counters = EdgeCounters::new();
                let out = graph.out_neighbors(me);
                let mut dispatch = |ctx: &mut Context<P::Message>| {
                    for (to, msg) in ctx.take_outbox() {
                        transport.sent.fetch_add(1, Ordering::Relaxed);
                        let class = P::classify(&msg);
                        if let Some(h) = &stats {
                            h.record_sent(class);
                        }
                        let decision = match plan.as_deref() {
                            Some(p) => p.decide(me, to, edge_counters.next(me, to)),
                            None => LinkDecision::CLEAN,
                        };
                        if decision.copies == 0 {
                            let counter = if decision.corrupted {
                                &transport.corrupted
                            } else {
                                &transport.dropped
                            };
                            counter.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = &stats {
                                if decision.corrupted {
                                    h.record_corrupted(class);
                                } else {
                                    h.record_dropped(class);
                                }
                            }
                            continue;
                        }
                        if decision.extra_delay > 0 {
                            std::thread::sleep(Duration::from_micros(decision.extra_delay));
                        }
                        let body = msg.to_bytes();
                        let writer = writers[to.index()].as_mut().expect("edge has a connection");
                        for _ in 1..decision.copies {
                            transport.duplicated.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = &stats {
                                h.record_duplicated(class);
                                h.record_enqueued(to.index());
                            }
                            // Peer may already have shut down; ignore.
                            let _ = write_frame(&mut **writer, &body);
                        }
                        if let Some(h) = &stats {
                            h.record_enqueued(to.index());
                        }
                        let _ = write_frame(&mut **writer, &body);
                    }
                };
                let check_done = |actor: &Actor<P>, reported: &mut bool| {
                    if !*reported {
                        if let Actor::Honest(p) = actor {
                            if done(p) {
                                *reported = true;
                                done_count.fetch_add(1, Ordering::SeqCst);
                                if let Some(h) = &stats {
                                    h.mark_done(me.index());
                                }
                            }
                        }
                    }
                };

                let mut ctx = Context::new(me, out);
                match &mut actor {
                    Actor::Honest(p) => p.on_start(&mut ctx),
                    Actor::Byzantine(a) => a.on_start(&mut ctx),
                }
                dispatch(&mut ctx);
                check_done(&actor, &mut reported_done);

                let mut starved = false;
                while !stop.load(Ordering::SeqCst) {
                    match rx.recv_timeout(Duration::from_millis(1)) {
                        Ok((from, msg)) => {
                            transport.delivered.fetch_add(1, Ordering::Relaxed);
                            if let Some(h) = &stats {
                                h.record_delivered(P::classify(&msg));
                                h.record_consumed(me.index());
                            }
                            let mut ctx = Context::new(me, out);
                            match &mut actor {
                                Actor::Honest(p) => p.on_message(&mut ctx, from, msg),
                                Actor::Byzantine(a) => a.on_message(&mut ctx, from, msg),
                            }
                            dispatch(&mut ctx);
                            check_done(&actor, &mut reported_done);
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            starved = !stop.load(Ordering::SeqCst);
                            break;
                        }
                    }
                }
                match actor {
                    Actor::Honest(p) => (Some(p), starved),
                    Actor::Byzantine(_) => (None, starved),
                }
            }));
        }

        await_completion(&done_count, honest_total, Instant::now() + config.timeout);
        stop.store(true, Ordering::SeqCst);

        let (nodes, incomplete) = join_and_classify(handles, &honest_slots, &*done);
        // Node threads have dropped their writer halves; readers unblock
        // via their read timeout, observe the stop flag or EOF, and exit.
        for h in reader_handles {
            let _ = h.join();
        }
        Ok(ThreadedReport { nodes, incomplete, stats: transport.stats() })
    }
}

/// The per-connection reader loop: pulls frames, decodes, forwards into
/// the owner's inbox. Total by construction — an undecodable frame is
/// counted in [`messages_rejected`](crate::sim::SimStats::messages_rejected)
/// and **skipped** (the loop
/// keeps pumping), while a framing-level error (oversize length prefix,
/// mid-frame truncation) also counts once and closes this connection. A
/// Byzantine byte stream can therefore never wedge the peer's event loop.
fn pump_frames<M: WireMessage>(
    reader: Box<dyn Read + Send>,
    from: NodeId,
    inbox: &Inbox<M>,
    stop: &AtomicBool,
    transport: &Transport,
    stats: Option<&StatsHandle>,
) {
    // Buffer socket reads so a burst of small frames costs one syscall,
    // not two per frame. `BufReader` passes the transport's `WouldBlock`
    // read timeouts straight through when its buffer is empty, so the
    // stop-flag polling in `read_frame` keeps working.
    let mut frames = FrameReader::new(std::io::BufReader::with_capacity(1 << 16, reader));
    let stopped = || stop.load(Ordering::SeqCst);
    loop {
        match frames.read_frame(&stopped) {
            Ok(Some(body)) => match M::from_bytes(&body) {
                // Owner may already have shut down; ignore.
                Ok(msg) => {
                    let _ = inbox.send((from, msg));
                }
                Err(_) => {
                    transport.rejected.fetch_add(1, Ordering::Relaxed);
                    // A frame that fails to decode has no classifiable
                    // payload; it lands in the `Other` bucket.
                    if let Some(h) = stats {
                        h.record_rejected(MsgClass::Other);
                    }
                }
            },
            Ok(None) => break,
            Err(_) => {
                transport.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(h) = stats {
                    h.record_rejected(MsgClass::Other);
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::LinkFault;
    use crate::process::Silent;
    use crate::threaded::{Incomplete, IncompleteReason};
    use codec::MAX_FRAME;
    use dbac_graph::generators;
    use std::io::Write;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn config(kind: TransportKind, timeout_ms: u64) -> NetConfig {
        NetConfig { timeout: Duration::from_millis(timeout_ms), transport: kind }
    }

    /// Collects one value from every in-neighbor, then is done.
    #[derive(Debug)]
    struct Collect {
        expected: usize,
        input: u64,
        heard: Vec<u64>,
    }

    impl Process for Collect {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(&self.input);
        }
        fn on_message(&mut self, _ctx: &mut Context<u64>, _from: NodeId, msg: u64) {
            self.heard.push(msg);
        }
    }

    fn gossip_on(kind: TransportKind) {
        let g = Arc::new(generators::clique(4));
        let mut net = Net::new(g);
        for i in 0..4 {
            net.set_honest(id(i), Collect { expected: 3, input: i as u64, heard: Vec::new() });
        }
        let report = net.run(|p| p.heard.len() >= p.expected, config(kind, 10_000)).unwrap();
        assert!(report.incomplete.is_empty(), "{:?}", report.incomplete);
        assert_eq!(report.stats.messages_sent, 12);
        assert!(report.stats.messages_delivered >= 12);
        assert_eq!(report.stats.messages_rejected, 0, "honest peers encode cleanly");
        for p in report.nodes.iter().flatten() {
            assert!(p.heard.len() >= 3);
        }
    }

    #[test]
    fn net_clique_gossip_completes_in_process() {
        gossip_on(TransportKind::InProcess);
    }

    #[test]
    fn net_clique_gossip_completes_auto() {
        gossip_on(TransportKind::Auto);
    }

    #[test]
    fn net_with_byzantine_silent() {
        let g = Arc::new(generators::clique(3));
        let mut net = Net::new(g);
        net.set_honest(id(0), Collect { expected: 1, input: 0, heard: Vec::new() });
        net.set_honest(id(1), Collect { expected: 1, input: 1, heard: Vec::new() });
        net.set_byzantine(id(2), Box::new(Silent));
        let report = net.run(|p| p.heard.len() >= p.expected, NetConfig::default()).unwrap();
        assert!(report.incomplete.is_empty());
        assert!(report.nodes[0].is_some() && report.nodes[1].is_some());
        assert!(report.nodes[2].is_none(), "byzantine slot returns no process");
    }

    #[test]
    fn net_timeout_degrades_to_per_node_reports() {
        let g = Arc::new(generators::clique(2));
        let mut net = Net::new(g);
        for i in 0..2 {
            net.set_honest(id(i), Collect { expected: 99, input: 0, heard: Vec::new() });
        }
        let report = net
            .run(|p| p.heard.len() >= p.expected, config(TransportKind::InProcess, 300))
            .unwrap();
        assert_eq!(
            report.incomplete,
            vec![
                Incomplete { node: id(0), reason: IncompleteReason::Timeout },
                Incomplete { node: id(1), reason: IncompleteReason::Timeout },
            ]
        );
        for p in report.nodes.iter() {
            let p = p.as_ref().expect("partial state survives a timeout");
            assert_eq!(p.heard.len(), 1, "one exchange still happened");
        }
    }

    #[test]
    fn net_unassigned_node() {
        let g = Arc::new(generators::clique(2));
        let mut net: Net<Collect> = Net::new(g);
        net.set_honest(id(0), Collect { expected: 0, input: 0, heard: Vec::new() });
        let err = net.run(|_| true, NetConfig::default()).unwrap_err();
        assert_eq!(err, SimError::UnassignedNode { node: 1 });
    }

    #[test]
    fn net_omit_starves_only_the_cut_edge() {
        let g = Arc::new(generators::clique(3));
        let mut net = Net::new(g);
        for i in 0..3 {
            net.set_honest(id(i), Collect { expected: 2, input: i as u64, heard: Vec::new() });
        }
        net.set_link_faults(LinkFaultPlan::new(0).fault(id(0), id(1), LinkFault::Omit));
        let report = net
            .run(|p| p.heard.len() >= p.expected, config(TransportKind::InProcess, 700))
            .unwrap();
        assert_eq!(
            report.incomplete,
            vec![Incomplete { node: id(1), reason: IncompleteReason::Timeout }],
            "only the node behind the cut edge misses its quota"
        );
        assert_eq!(report.stats.messages_dropped, 1);
        assert_eq!(report.stats.messages_sent, 6);
        let starved = report.nodes[1].as_ref().unwrap();
        assert_eq!(starved.heard.len(), 1, "node 2's message still arrives");
    }

    #[test]
    fn net_duplicate_doubles_the_edge() {
        let g = Arc::new(generators::clique(2));
        let mut net = Net::new(g);
        net.set_honest(id(0), Collect { expected: 1, input: 7, heard: Vec::new() });
        net.set_honest(id(1), Collect { expected: 2, input: 8, heard: Vec::new() });
        net.set_link_faults(LinkFaultPlan::new(0).fault(
            id(0),
            id(1),
            LinkFault::Duplicate { prob: 1.0 },
        ));
        let report = net
            .run(|p| p.heard.len() >= p.expected, config(TransportKind::InProcess, 5_000))
            .unwrap();
        assert!(report.incomplete.is_empty());
        assert_eq!(report.stats.messages_duplicated, 1);
        assert_eq!(report.nodes[1].as_ref().unwrap().heard, vec![7, 7]);
    }

    // -- adversarial byte streams never wedge the pump ---------------------

    #[test]
    fn pump_skips_undecodable_frames_and_keeps_going() {
        let (mut w, r) = connection::pipe();
        write_frame(&mut w, &7u64.to_le_bytes()).unwrap();
        write_frame(&mut w, b"garbage").unwrap(); // wrong length for u64
        write_frame(&mut w, &9u64.to_le_bytes()).unwrap();
        drop(w); // EOF ends the pump
        let (tx, rx) = unbounded();
        let stop = AtomicBool::new(false);
        let transport = Transport::default();
        pump_frames::<u64>(Box::new(r), id(3), &tx, &stop, &transport, None);
        let got: Vec<(NodeId, u64)> = rx.try_iter().collect();
        assert_eq!(got, vec![(id(3), 7), (id(3), 9)], "good frames flow past the bad one");
        assert_eq!(transport.rejected.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pump_closes_connection_on_framing_error() {
        let (mut w, r) = connection::pipe();
        write_frame(&mut w, &1u64.to_le_bytes()).unwrap();
        // A length prefix far beyond MAX_FRAME desynchronizes the stream.
        w.write_all(&(MAX_FRAME as u32 * 2).to_le_bytes()).unwrap();
        w.write_all(&2u64.to_le_bytes()).unwrap();
        let (tx, rx) = unbounded();
        let stop = AtomicBool::new(false);
        let transport = Transport::default();
        // The writer stays alive: the pump must exit via the framing
        // error, not EOF — that is exactly the no-wedge guarantee.
        pump_frames::<u64>(Box::new(r), id(0), &tx, &stop, &transport, None);
        let got: Vec<(NodeId, u64)> = rx.try_iter().collect();
        assert_eq!(got, vec![(id(0), 1)], "frames before the error were delivered");
        assert_eq!(transport.rejected.load(Ordering::Relaxed), 1);
        drop(w);
    }

    #[test]
    fn pump_survives_a_seeded_corrupt_prefix_corpus() {
        // Seeded corpus: random byte blobs framed as payloads plus raw
        // corrupt prefixes, in every case the pump terminates without
        // panicking and accounts each discarded frame.
        let mut state = 0x5EED_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..64 {
            let (mut w, r) = connection::pipe();
            let frames = (next() % 6) as usize;
            for _ in 0..frames {
                let len = (next() % 24) as usize;
                let body: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
                write_frame(&mut w, &body).unwrap();
            }
            // Tail: a corrupt raw prefix fragment, not a whole frame.
            let tail = (next() % 4) as usize;
            let junk: Vec<u8> = (0..tail).map(|_| (next() & 0xFF) as u8).collect();
            w.write_all(&junk).unwrap();
            drop(w);
            let (tx, rx) = unbounded();
            let stop = AtomicBool::new(false);
            let transport = Transport::default();
            pump_frames::<u64>(Box::new(r), id(1), &tx, &stop, &transport, None);
            let delivered = rx.try_iter().count() as u64;
            let rejected = transport.rejected.load(Ordering::Relaxed);
            assert!(
                delivered + rejected <= frames as u64 + 1,
                "every frame is either delivered or rejected (plus at most \
                 one rejection for the corrupt tail)"
            );
        }
    }
}
