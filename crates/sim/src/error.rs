//! Runtime errors.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulation runtimes.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A node index had no actor assigned before `run`.
    UnassignedNode {
        /// The node missing an actor.
        node: usize,
    },
    /// The event budget was exhausted before quiescence — either the
    /// protocol livelocked or the budget was too small for the instance.
    EventBudgetExhausted {
        /// Events delivered before giving up.
        delivered: u64,
    },
    /// The threaded runtime hit its wall-clock timeout before every honest
    /// node reported completion. Retained for downstream matches: since the
    /// runtime learned to degrade gracefully it reports stragglers per node
    /// (`ThreadedReport::incomplete`) instead of returning this.
    Timeout {
        /// Nodes that had completed when the timeout fired.
        completed: usize,
        /// Total honest nodes expected to complete.
        expected: usize,
    },
    /// A worker thread panicked. Retained for downstream matches: the
    /// threaded runtime now reports panics per node instead of returning
    /// this.
    WorkerPanicked,
    /// The network runtime could not establish or handshake a connection
    /// (socket failure, handshake rejection). Setup-time only: once the
    /// mesh is up, peer failures degrade per node instead.
    Transport {
        /// Human-readable failure description, including the edge.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnassignedNode { node } => {
                write!(f, "node {node} has no process or adversary assigned")
            }
            SimError::EventBudgetExhausted { delivered } => {
                write!(f, "event budget exhausted after {delivered} deliveries")
            }
            SimError::Timeout { completed, expected } => {
                write!(f, "timed out with {completed}/{expected} nodes complete")
            }
            SimError::WorkerPanicked => write!(f, "a worker thread panicked"),
            SimError::Transport { detail } => {
                write!(f, "network transport setup failed: {detail}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SimError::UnassignedNode { node: 3 }.to_string().contains('3'));
        assert!(SimError::EventBudgetExhausted { delivered: 9 }.to_string().contains('9'));
        assert!(SimError::Timeout { completed: 1, expected: 4 }.to_string().contains("1/4"));
    }

    #[test]
    fn is_error() {
        fn assert_error<E: Error>(_: E) {}
        assert_error(SimError::WorkerPanicked);
    }
}
