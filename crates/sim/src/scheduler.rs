//! Delivery policies: who decides *when* a sent message arrives.
//!
//! Asynchrony in the paper is adversarial: delays are finite but unbounded
//! and unknown. A [`DeliveryPolicy`] is the adversary's scheduling half —
//! Byzantine *content* lives in [`Adversary`](crate::process::Adversary)
//! implementations, Byzantine *timing* lives here.

use crate::time::VirtualTime;
use dbac_graph::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Assigns a delivery time to each sent message.
pub trait DeliveryPolicy {
    /// Returns the delivery time for a message sent at `now` along the
    /// edge `(from, to)`. Must be `≥ now`; the simulator clamps otherwise.
    fn delivery_time(&mut self, now: VirtualTime, from: NodeId, to: NodeId) -> VirtualTime;
}

/// Every message takes exactly `delay` ticks — the synchronous-looking
/// special case (useful for debugging and as a baseline schedule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedDelay {
    delay: u64,
}

impl FixedDelay {
    /// Creates a policy with constant per-message delay.
    #[must_use]
    pub fn new(delay: u64) -> Self {
        FixedDelay { delay }
    }
}

impl DeliveryPolicy for FixedDelay {
    fn delivery_time(&mut self, now: VirtualTime, _from: NodeId, _to: NodeId) -> VirtualTime {
        now.after(self.delay)
    }
}

/// Seeded uniform-random delays in `[min, max]` — the default model of an
/// asynchronous network; reproducible from the seed. Messages on the same
/// edge may be reordered, which the paper's model permits (FIFO ordering is
/// reconstructed at the protocol level, Appendix F).
#[derive(Clone, Debug)]
pub struct RandomDelay {
    rng: SmallRng,
    min: u64,
    max: u64,
}

impl RandomDelay {
    /// Creates a seeded random-delay policy with delays in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn new(seed: u64, min: u64, max: u64) -> Self {
        assert!(min <= max, "empty delay range");
        RandomDelay { rng: SmallRng::seed_from_u64(seed), min, max }
    }
}

impl DeliveryPolicy for RandomDelay {
    fn delivery_time(&mut self, now: VirtualTime, _from: NodeId, _to: NodeId) -> VirtualTime {
        now.after(self.rng.gen_range(self.min..=self.max))
    }
}

/// Adversarial per-edge delays on top of a base policy: selected edges get
/// a fixed (possibly enormous) extra delay. This is exactly the Appendix-B
/// construction: "the delivery delay of the latter messages is lower
/// bounded by an arbitrary number `T`".
pub struct EdgeDelay {
    base: Box<dyn DeliveryPolicy + Send>,
    overrides: HashMap<(NodeId, NodeId), u64>,
}

impl std::fmt::Debug for EdgeDelay {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeDelay").field("overrides", &self.overrides.len()).finish()
    }
}

impl EdgeDelay {
    /// Wraps `base`, with no overrides yet.
    #[must_use]
    pub fn new(base: Box<dyn DeliveryPolicy + Send>) -> Self {
        EdgeDelay { base, overrides: HashMap::new() }
    }

    /// Delays every message on edge `(from, to)` by at least `delay` ticks
    /// (replacing the base policy's choice for that edge).
    pub fn delay_edge(&mut self, from: NodeId, to: NodeId, delay: u64) -> &mut Self {
        self.overrides.insert((from, to), delay);
        self
    }

    /// Applies [`EdgeDelay::delay_edge`] to every pair in `edges`.
    pub fn delay_edges(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>, delay: u64) {
        for (u, v) in edges {
            self.delay_edge(u, v, delay);
        }
    }
}

impl DeliveryPolicy for EdgeDelay {
    fn delivery_time(&mut self, now: VirtualTime, from: NodeId, to: NodeId) -> VirtualTime {
        match self.overrides.get(&(from, to)) {
            Some(&d) => now.after(d),
            None => self.base.delivery_time(now, from, to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn fixed_delay() {
        let mut p = FixedDelay::new(5);
        assert_eq!(p.delivery_time(VirtualTime::new(10), id(0), id(1)), VirtualTime::new(15));
    }

    #[test]
    fn random_delay_in_range_and_deterministic() {
        let mut a = RandomDelay::new(9, 1, 4);
        let mut b = RandomDelay::new(9, 1, 4);
        for _ in 0..50 {
            let ta = a.delivery_time(VirtualTime::ZERO, id(0), id(1));
            let tb = b.delivery_time(VirtualTime::ZERO, id(0), id(1));
            assert_eq!(ta, tb, "same seed, same schedule");
            assert!((1..=4).contains(&ta.ticks()));
        }
    }

    #[test]
    fn edge_delay_overrides_selected_edges() {
        let mut p = EdgeDelay::new(Box::new(FixedDelay::new(1)));
        p.delay_edge(id(0), id(1), 1_000);
        assert_eq!(p.delivery_time(VirtualTime::ZERO, id(0), id(1)).ticks(), 1_000);
        assert_eq!(p.delivery_time(VirtualTime::ZERO, id(1), id(0)).ticks(), 1);
        p.delay_edges([(id(1), id(0))], 77);
        assert_eq!(p.delivery_time(VirtualTime::ZERO, id(1), id(0)).ticks(), 77);
    }

    #[test]
    #[should_panic(expected = "empty delay range")]
    fn random_delay_rejects_bad_range() {
        let _ = RandomDelay::new(0, 5, 2);
    }
}
