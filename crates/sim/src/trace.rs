//! Execution traces.
//!
//! The impossibility experiment (Appendix B) splices two recorded
//! executions into a third: node `v`'s neighbourhood replays execution `e1`
//! while node `u`'s replays `e2`, and the two outputs disagree. Recording
//! the exact global delivery order makes that splice reproducible.

use crate::time::VirtualTime;
use dbac_graph::NodeId;

/// One delivered message: who sent it, who received it, when, and what.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent<M> {
    /// Virtual delivery time.
    pub at: VirtualTime,
    /// Authenticated sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// The payload.
    pub msg: M,
}

/// An ordered record of every delivery in a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace<M> {
    events: Vec<TraceEvent<M>>,
}

impl<M> Trace<M> {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Appends a delivery (runtime-internal).
    pub fn record(&mut self, at: VirtualTime, from: NodeId, to: NodeId, msg: M) {
        self.events.push(TraceEvent { at, from, to, msg });
    }

    /// All recorded deliveries in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent<M>] {
        &self.events
    }

    /// Number of recorded deliveries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sub-trace of deliveries whose *receiver* satisfies `keep`,
    /// preserving order — the restriction of an execution to one side of
    /// the Appendix-B splice.
    #[must_use]
    pub fn restrict_receivers(&self, keep: impl Fn(NodeId) -> bool) -> Trace<M>
    where
        M: Clone,
    {
        Trace { events: self.events.iter().filter(|e| keep(e.to)).cloned().collect() }
    }
}

impl<M> IntoIterator for Trace<M> {
    type Item = TraceEvent<M>;
    type IntoIter = std::vec::IntoIter<TraceEvent<M>>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn record_and_read_back() {
        let mut t: Trace<u32> = Trace::new();
        assert!(t.is_empty());
        t.record(VirtualTime::new(1), id(0), id(1), 10);
        t.record(VirtualTime::new(2), id(1), id(2), 20);
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].msg, 10);
        assert_eq!(t.events()[1].to, id(2));
    }

    #[test]
    fn restriction_preserves_order() {
        let mut t: Trace<u32> = Trace::new();
        t.record(VirtualTime::new(1), id(0), id(1), 1);
        t.record(VirtualTime::new(2), id(0), id(2), 2);
        t.record(VirtualTime::new(3), id(2), id(1), 3);
        let r = t.restrict_receivers(|v| v == id(1));
        assert_eq!(r.len(), 2);
        assert_eq!(r.events()[0].msg, 1);
        assert_eq!(r.events()[1].msg, 3);
    }

    #[test]
    fn into_iterator() {
        let mut t: Trace<u32> = Trace::new();
        t.record(VirtualTime::ZERO, id(0), id(1), 5);
        let collected: Vec<u32> = t.into_iter().map(|e| e.msg).collect();
        assert_eq!(collected, vec![5]);
    }
}
