//! End-to-end: a fully-dimensional sweep — ε × scheduler family × runtime
//! × seeds — runs green, and its reduced (seed-aggregated) JSON report
//! round-trips through the `bench_trend` gate parser and comparison, the
//! exact pipeline CI's `sweep.json` artifact rides.

use dbac_bench::trend;
use dbac_core::scenario::sweep::{ExperimentPlan, SchedulerFamily};
use dbac_core::scenario::{ByzantineWitness, Runtime};
use dbac_graph::generators;
use std::time::Duration;

#[test]
fn full_dimensional_sweep_round_trips_through_the_gate() {
    let sweep = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graph("K4", generators::clique(4))
        .fault_bound(0)
        .epsilons([1.0, 0.5])
        .scheduler("fix1", SchedulerFamily::fixed(1))
        .scheduler("rand", SchedulerFamily::random(1, 10))
        .runtime(Runtime::Sim)
        .runtime(Runtime::threaded(Duration::from_secs(60)))
        .seeds([1, 2])
        .build()
        .expect("plan expands");
    // ε × scheduler × runtime × seeds.
    assert_eq!(sweep.cell_count(), 2 * 2 * 2 * 2);

    let report = sweep.run();
    assert!(report.failures().is_empty(), "failures: {:?}", report.failures());

    let reduced = report.reduce();
    assert_eq!(reduced.cells.len(), 8, "16 cells aggregate over the 2-seed batch");
    for cell in &reduced.cells {
        assert_eq!((cell.runs, cell.errors), (2, 0), "{}", cell.group);
        assert_eq!(cell.converged, 2, "{}", cell.group);
        assert_eq!(cell.valid, 2, "{}", cell.group);
        assert!(cell.wall_ns.mean > 0.0, "{}", cell.group);
        assert!(cell.wall_ns.min <= cell.wall_ns.max, "{}", cell.group);
    }
    // Both runtimes and both schedule families appear as groups.
    assert!(reduced.get("bw/K4/f0/none/eps1/fix1/sim").is_some());
    assert!(reduced.get("bw/K4/f0/none/eps0.5/rand/threaded").is_some());

    // The reduced JSON round-trips through the gate's parser…
    let json = reduced.to_bench_json();
    let parsed = trend::parse_report(&json).expect("gate parser accepts the reduced report");
    assert_eq!(parsed.len(), 8);
    assert!(parsed.values().all(|&ns| ns > 0.0));
    for cell in &reduced.cells {
        assert_eq!(parsed[&cell.group], (cell.wall_ns.mean * 10.0).round() / 10.0);
    }
    // …and the gate comparison accepts it as its own baseline.
    assert!(trend::compare(&parsed, &parsed, 2.0).is_empty());
}

#[test]
fn raw_per_cell_report_also_parses() {
    let report = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graph("K4", generators::clique(4))
        .fault_bound(0)
        .seeds([3, 4])
        .build()
        .expect("plan expands")
        .run();
    let parsed = trend::parse_report(&report.to_bench_json()).expect("raw report parses");
    assert_eq!(parsed.len(), 2);
    assert!(parsed.contains_key("bw/K4/f0/none/s3"));
}
