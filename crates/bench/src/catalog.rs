//! Named graph instances used across the experiments.

use dbac_graph::{generators, Digraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A named test network with its intended fault bound.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Display name.
    pub name: String,
    /// The network.
    pub graph: Digraph,
    /// Intended fault bound `f`.
    pub f: usize,
}

impl Instance {
    fn new(name: &str, graph: Digraph, f: usize) -> Self {
        Instance { name: name.into(), graph, f }
    }
}

/// Small instances on which the full BW protocol is tractable, all
/// satisfying 3-reach for their `f`.
#[must_use]
pub fn feasible_instances() -> Vec<Instance> {
    vec![
        Instance::new("K4 (f=1)", generators::clique(4), 1),
        Instance::new("K5 (f=1)", generators::clique(5), 1),
        Instance::new("figure-1a (f=1)", generators::figure_1a(), 1),
        Instance::new("two-K4-bridged (f=1)", generators::figure_1b_small(), 1),
    ]
}

/// Instances violating 3-reach for their `f` (infeasibility side).
#[must_use]
pub fn infeasible_instances() -> Vec<Instance> {
    vec![
        Instance::new("K3 (f=1)", generators::clique(3), 1),
        Instance::new("directed-cycle-5 (f=1)", generators::directed_cycle(5), 1),
        Instance::new("directed-path-4 (f=1)", generators::directed_path(4), 1),
    ]
}

/// A deterministic batch of random digraphs for sweeps.
#[must_use]
pub fn random_digraphs(n: usize, p: f64, count: usize, seed: u64) -> Vec<Digraph> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| generators::random_digraph(n, p, &mut rng)).collect()
}

/// A deterministic batch of random undirected (bidirectional) networks.
#[must_use]
pub fn random_undirected(n: usize, p: f64, count: usize, seed: u64) -> Vec<Digraph> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count).map(|_| generators::random_undirected(n, p, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_conditions::kreach::three_reach;

    #[test]
    fn feasible_instances_satisfy_three_reach() {
        for inst in feasible_instances() {
            assert!(
                three_reach(&inst.graph, inst.f).holds(),
                "{} should satisfy 3-reach",
                inst.name
            );
        }
    }

    #[test]
    fn infeasible_instances_violate_three_reach() {
        for inst in infeasible_instances() {
            assert!(
                !three_reach(&inst.graph, inst.f).holds(),
                "{} should violate 3-reach",
                inst.name
            );
        }
    }

    #[test]
    fn random_batches_are_deterministic() {
        assert_eq!(random_digraphs(6, 0.4, 3, 9), random_digraphs(6, 0.4, 3, 9));
        assert_eq!(random_undirected(6, 0.4, 2, 9), random_undirected(6, 0.4, 2, 9));
    }
}
