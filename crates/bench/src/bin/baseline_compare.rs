//! Experiments **E9 / E10 — baselines**.
//!
//! * E9: on cliques (the setting of Abraham–Amit–Dolev 2004), BW and AAD04
//!   both converge with optimal resilience; BW pays exponential messages
//!   for generality, AAD04 pays reliable-broadcast rounds. The comparison
//!   is a single [`ExperimentPlan`] — {BW, AAD04} × {K4, K5} × {crash,
//!   liar} × a three-seed batch — reduced into per-group statistics (the
//!   table shows the mean message cost with its min/max envelope).
//! * E10: on `figure_1b_small` — which satisfies 3-reach but is **not**
//!   `(2,2)`-robust — the purely local iterative algorithm stalls at full
//!   spread *even with zero actual faults* (its `f`-filtering discards the
//!   scarce cross-clique edges), while BW converges with a live adversary.
//!   Three individually-configured contrast runs, not a sweep.
//!
//! Run: `cargo run --release -p dbac-bench --bin baseline_compare`
//! (`-- --json <path>` additionally writes the E9 sweep's *reduced*
//! seed-aggregated report as `bench_trend`-compatible JSON, uploaded as a
//! CI artifact).

use dbac_baselines::{Aad04, IterativeTrimmedMean};
use dbac_bench::table::{num, yes_no, Table};
use dbac_conditions::kreach::three_reach;
use dbac_conditions::robustness::is_r_s_robust;
use dbac_core::scenario::sweep::{ExperimentPlan, ReducedReport};
use dbac_core::scenario::{ByzantineWitness, FaultKind, Scenario};
use dbac_graph::{generators, Digraph, NodeId};

fn main() {
    let report = e9_aad_comparison();
    e10_iterative_contrast();
    if let Some(path) = json_path() {
        report.write_json(std::path::Path::new(&path)).expect("sweep JSON written");
        println!("reduced sweep report written to {path}");
    }
}

fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(args.next().expect("--json requires a path"));
        }
    }
    None
}

fn last(g: &Digraph) -> NodeId {
    NodeId::new(g.node_count() - 1)
}

fn e9_aad_comparison() -> ReducedReport {
    println!("E9 — BW (this paper) vs AAD04 on complete networks\n");
    // Both algorithms run under the plan's single unified schedule family
    // (Random [1, 20] per seed) — the controlled comparison — and each
    // grid group aggregates a three-seed batch, so the message-cost gap is
    // reported as a distribution rather than a single draw.
    let sweep = ExperimentPlan::new()
        .protocol("BW", ByzantineWitness::default())
        .protocol("AAD04", Aad04)
        .graph("K4", generators::clique(4))
        .graph("K5", generators::clique(5))
        .fault_bound(1)
        .placement("crash", |g, _| vec![(last(g), FaultKind::Crash)])
        .placement("liar", |g, _| vec![(last(g), FaultKind::ConstantLiar { value: 1e6 })])
        .epsilon(0.5)
        .seeds([4, 5, 6])
        .build()
        .expect("E9 plan expands");
    let reduced = sweep.run().reduce();
    println!("plan: {} cells in {} seed-batch groups\n", sweep.cell_count(), reduced.cells.len());

    let mut t = Table::new(vec![
        "algorithm",
        "graph",
        "adversary",
        "converged",
        "valid",
        "honest messages (mean [min, max])",
    ]);
    for cell in &reduced.cells {
        assert_eq!(cell.errors, 0, "{}: cells failed", cell.group);
        assert!(
            cell.converged == cell.runs && cell.valid == cell.runs,
            "{} failed ({}/{} converged)",
            cell.group,
            cell.converged,
            cell.runs
        );
        t.row(vec![
            cell.coord("protocol").expect("protocol axis").into(),
            cell.coord("graph").expect("graph axis").into(),
            cell.coord("placement").expect("placement axis").into(),
            format!("{}/{}", cell.converged, cell.runs),
            format!("{}/{}", cell.valid, cell.runs),
            format!(
                "{:.0} [{:.0}, {:.0}]",
                cell.messages.mean, cell.messages.min, cell.messages.max
            ),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Both achieve optimal resilience on cliques; BW's generality to directed,\n\
         incomplete networks costs redundant-path flooding (message counts above).\n"
    );
    reduced
}

fn e10_iterative_contrast() {
    println!("E10 — BW vs the iterative (W-MSR) algorithm off the robustness regime\n");
    let g = generators::figure_1b_small();
    let f = 1usize;
    println!(
        "figure_1b_small: 3-reach(f=1)={}  (2,2)-robust={}",
        yes_no(three_reach(&g, f).holds()),
        yes_no(is_r_s_robust(&g, 2, 2)),
    );
    assert!(three_reach(&g, f).holds());
    assert!(!is_r_s_robust(&g, 2, 2));

    // Iterative, zero actual faults, clique-polarized inputs: stalls.
    let inputs = vec![0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0];
    let it = Scenario::builder(g.clone(), f)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .protocol(IterativeTrimmedMean::with_rounds(60))
        .run()
        .unwrap();
    println!("iterative (no faults, f=1 filtering): spread after 60 rounds = {}", num(it.spread()));
    assert!(it.spread() > 9.0, "expected a stall at full spread");

    // BW on the same graph, same inputs, WITH a Byzantine node: converges.
    let out = Scenario::builder(g.clone(), f)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .fault(NodeId::new(3), FaultKind::ConstantLiar { value: 1e5 })
        .seed(8)
        .protocol(ByzantineWitness::default())
        .run()
        .unwrap();
    println!(
        "BW (liar at v4): converged={} valid={} spread={} messages={}",
        yes_no(out.converged()),
        yes_no(out.valid()),
        num(out.spread()),
        out.sim_stats.messages_delivered(),
    );
    assert!(out.converged() && out.valid());

    // On a robust clique the iterative algorithm is fine — the conditions
    // genuinely differ, matching the paper's related-work positioning.
    let k5 = generators::clique(5);
    assert!(is_r_s_robust(&k5, 2, 2));
    let run = Scenario::builder(k5, 1)
        .inputs(vec![0.0, 1.0, 2.0, 3.0, 0.0])
        .epsilon(1e-6)
        .fault(NodeId::new(4), FaultKind::ConstantLiar { value: 999.0 })
        .range((0.0, 999.0))
        .protocol(IterativeTrimmedMean::with_rounds(60))
        .run()
        .unwrap();
    println!(
        "iterative on K5 (malicious constant): spread after 60 rounds = {} valid={}",
        num(run.spread()),
        yes_no(run.valid()),
    );
    assert!(run.spread() < 1e-6 && run.valid());
    println!(
        "\nRESULT: local filtering needs robustness; BW's global witnesses need only 3-reach —\n\
         figure_1b_small separates the two exactly as the paper's related-work section claims."
    );
}
