//! Experiments **E9 / E10 — baselines**.
//!
//! * E9: on cliques (the setting of Abraham–Amit–Dolev 2004), BW and AAD04
//!   both converge with optimal resilience; BW pays exponential messages
//!   for generality, AAD04 pays reliable-broadcast rounds.
//! * E10: on `figure_1b_small` — which satisfies 3-reach but is **not**
//!   `(2,2)`-robust — the purely local iterative algorithm stalls at full
//!   spread *even with zero actual faults* (its `f`-filtering discards the
//!   scarce cross-clique edges), while BW converges with a live adversary.
//!
//! Run: `cargo run --release -p dbac-bench --bin baseline_compare`

use dbac_baselines::aad04::{run_aad04, AadAdversary};
use dbac_baselines::iterative::{is_r_s_robust, run_iterative, IterStrategy};
use dbac_bench::table::{num, yes_no, Table};
use dbac_conditions::kreach::three_reach;
use dbac_core::adversary::AdversaryKind;
use dbac_core::run::{run_byzantine_consensus, RunConfig};
use dbac_graph::{generators, NodeId};

fn main() {
    e9_aad_comparison();
    e10_iterative_contrast();
}

fn e9_aad_comparison() {
    println!("E9 — BW (this paper) vs AAD04 on complete networks\n");
    let mut t = Table::new(vec![
        "n",
        "f",
        "adversary",
        "algorithm",
        "converged",
        "valid",
        "honest messages",
    ]);
    for (n, f) in [(4usize, 1usize), (5, 1)] {
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let byz = NodeId::new(n - 1);
        for (label, bw_kind, aad_kind) in [
            ("crash", AdversaryKind::Crash, AadAdversary::Crash),
            (
                "liar",
                AdversaryKind::ConstantLiar { value: 1e6 },
                AadAdversary::ConstantLiar { value: 1e6 },
            ),
        ] {
            let cfg = RunConfig::builder(generators::clique(n), f)
                .inputs(inputs.clone())
                .epsilon(0.5)
                .byzantine(byz, bw_kind)
                .seed(4)
                .build()
                .unwrap();
            let bw = run_byzantine_consensus(&cfg).unwrap();
            assert!(bw.converged() && bw.valid(), "BW n={n} {label}");
            t.row(vec![
                n.to_string(),
                f.to_string(),
                label.into(),
                "BW".into(),
                yes_no(bw.converged()),
                yes_no(bw.valid()),
                bw.sim_stats.messages_sent.to_string(),
            ]);
            let aad = run_aad04(n, f, &inputs, 0.5, &[(byz, aad_kind)], 4).unwrap();
            assert!(aad.converged() && aad.valid(), "AAD n={n} {label}");
            t.row(vec![
                n.to_string(),
                f.to_string(),
                label.into(),
                "AAD04".into(),
                yes_no(aad.converged()),
                yes_no(aad.valid()),
                aad.honest_messages.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "Both achieve optimal resilience on cliques; BW's generality to directed,\n\
         incomplete networks costs redundant-path flooding (message counts above).\n"
    );
}

fn e10_iterative_contrast() {
    println!("E10 — BW vs the iterative (W-MSR) algorithm off the robustness regime\n");
    let g = generators::figure_1b_small();
    let f = 1usize;
    println!(
        "figure_1b_small: 3-reach(f=1)={}  (2,2)-robust={}",
        yes_no(three_reach(&g, f).holds()),
        yes_no(is_r_s_robust(&g, 2, 2)),
    );
    assert!(three_reach(&g, f).holds());
    assert!(!is_r_s_robust(&g, 2, 2));

    // Iterative, zero actual faults, clique-polarized inputs: stalls.
    let inputs = vec![0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0];
    let run = run_iterative(&g, f, &inputs, &[], 60);
    println!(
        "iterative (no faults, f=1 filtering): spread after 60 rounds = {}",
        num(run.final_spread())
    );
    assert!(run.final_spread() > 9.0, "expected a stall at full spread");

    // BW on the same graph, same inputs, WITH a Byzantine node: converges.
    let cfg = RunConfig::builder(g.clone(), f)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .byzantine(NodeId::new(3), AdversaryKind::ConstantLiar { value: 1e5 })
        .seed(8)
        .build()
        .unwrap();
    let out = run_byzantine_consensus(&cfg).unwrap();
    println!(
        "BW (liar at v4): converged={} valid={} spread={} messages={}",
        yes_no(out.converged()),
        yes_no(out.valid()),
        num(out.spread()),
        out.sim_stats.messages_delivered,
    );
    assert!(out.converged() && out.valid());

    // On a robust clique the iterative algorithm is fine — the conditions
    // genuinely differ, matching the paper's related-work positioning.
    let k5 = generators::clique(5);
    assert!(is_r_s_robust(&k5, 2, 2));
    let run = run_iterative(
        &k5,
        1,
        &[0.0, 1.0, 2.0, 3.0, 0.0],
        &[(NodeId::new(4), IterStrategy::Constant(999.0))],
        60,
    );
    println!(
        "iterative on K5 (malicious constant): spread after 60 rounds = {} valid={}",
        num(run.final_spread()),
        yes_no(run.valid()),
    );
    assert!(run.final_spread() < 1e-6 && run.valid());
    println!(
        "\nRESULT: local filtering needs robustness; BW's global witnesses need only 3-reach —\n\
         figure_1b_small separates the two exactly as the paper's related-work section claims."
    );
}
