//! Experiments **E9 / E10 — baselines**, as one scenario sweep.
//!
//! * E9: on cliques (the setting of Abraham–Amit–Dolev 2004), BW and AAD04
//!   both converge with optimal resilience; BW pays exponential messages
//!   for generality, AAD04 pays reliable-broadcast rounds. The comparison
//!   is a single [`Grid`]: {BW, AAD04} × {K4, K5} × {crash, liar}.
//! * E10: on `figure_1b_small` — which satisfies 3-reach but is **not**
//!   `(2,2)`-robust — the purely local iterative algorithm stalls at full
//!   spread *even with zero actual faults* (its `f`-filtering discards the
//!   scarce cross-clique edges), while BW converges with a live adversary.
//!
//! Run: `cargo run --release -p dbac-bench --bin baseline_compare`
//! (`-- --json <path>` additionally writes the E9 sweep as a
//! `bench_trend`-compatible JSON report, uploaded as a CI artifact).

use dbac_baselines::iterative::is_r_s_robust;
use dbac_baselines::{Aad04, IterativeTrimmedMean};
use dbac_bench::table::{num, yes_no, Table};
use dbac_conditions::kreach::three_reach;
use dbac_core::scenario::sweep::{Grid, SweepReport};
use dbac_core::scenario::{ByzantineWitness, FaultKind, Scenario};
use dbac_graph::{generators, Digraph, NodeId};

fn main() {
    let report = e9_aad_comparison();
    e10_iterative_contrast();
    if let Some(path) = json_path() {
        report.write_json(std::path::Path::new(&path)).expect("sweep JSON written");
        println!("sweep report written to {path}");
    }
}

fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(args.next().expect("--json requires a path"));
        }
    }
    None
}

fn crash_at_last(g: &Digraph, _f: usize) -> Vec<(NodeId, FaultKind)> {
    vec![(NodeId::new(g.node_count() - 1), FaultKind::Crash)]
}

fn liar_at_last(g: &Digraph, _f: usize) -> Vec<(NodeId, FaultKind)> {
    vec![(NodeId::new(g.node_count() - 1), FaultKind::ConstantLiar { value: 1e6 })]
}

fn e9_aad_comparison() -> SweepReport {
    println!("E9 — BW (this paper) vs AAD04 on complete networks\n");
    // Both algorithms run under the grid's single unified schedule
    // (Random [1, 20] per seed). The pre-sweep version of this binary
    // incidentally used [1, 15] for AAD04 and [1, 20] for BW; a uniform
    // schedule is the controlled comparison, so absolute AAD04 message
    // counts shifted slightly relative to older recorded output.
    let sweep = Grid::new()
        .protocol("BW", ByzantineWitness::default())
        .protocol("AAD04", Aad04)
        .graph("K4", generators::clique(4))
        .graph("K5", generators::clique(5))
        .fault_bound(1)
        .placement("crash", crash_at_last)
        .placement("liar", liar_at_last)
        .seed(4)
        .epsilon(0.5)
        .build()
        .expect("E9 grid builds");
    let report = sweep.run();

    let mut t = Table::new(vec![
        "n",
        "f",
        "adversary",
        "algorithm",
        "converged",
        "valid",
        "honest messages",
    ]);
    for (point, row) in sweep.points().iter().zip(&report.rows) {
        let summary = row.summary.as_ref().unwrap_or_else(|e| panic!("{}: {e}", row.label));
        assert!(summary.converged && summary.valid, "{} failed", row.label);
        let algo = point.scenario.protocol().name();
        let adversary = point.scenario.faults().first().map_or("none", |(_, k)| k.label());
        t.row(vec![
            point.scenario.graph().node_count().to_string(),
            point.scenario.f().to_string(),
            adversary.into(),
            algo.into(),
            yes_no(summary.converged),
            yes_no(summary.valid),
            summary.honest_messages.unwrap_or(summary.messages_sent).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Both achieve optimal resilience on cliques; BW's generality to directed,\n\
         incomplete networks costs redundant-path flooding (message counts above).\n"
    );
    report
}

fn e10_iterative_contrast() {
    println!("E10 — BW vs the iterative (W-MSR) algorithm off the robustness regime\n");
    let g = generators::figure_1b_small();
    let f = 1usize;
    println!(
        "figure_1b_small: 3-reach(f=1)={}  (2,2)-robust={}",
        yes_no(three_reach(&g, f).holds()),
        yes_no(is_r_s_robust(&g, 2, 2)),
    );
    assert!(three_reach(&g, f).holds());
    assert!(!is_r_s_robust(&g, 2, 2));

    // Iterative, zero actual faults, clique-polarized inputs: stalls.
    let inputs = vec![0.0, 0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 10.0];
    let it = Scenario::builder(g.clone(), f)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .protocol(IterativeTrimmedMean::with_rounds(60))
        .run()
        .unwrap();
    println!("iterative (no faults, f=1 filtering): spread after 60 rounds = {}", num(it.spread()));
    assert!(it.spread() > 9.0, "expected a stall at full spread");

    // BW on the same graph, same inputs, WITH a Byzantine node: converges.
    let out = Scenario::builder(g.clone(), f)
        .inputs(inputs.clone())
        .epsilon(0.5)
        .fault(NodeId::new(3), FaultKind::ConstantLiar { value: 1e5 })
        .seed(8)
        .protocol(ByzantineWitness::default())
        .run()
        .unwrap();
    println!(
        "BW (liar at v4): converged={} valid={} spread={} messages={}",
        yes_no(out.converged()),
        yes_no(out.valid()),
        num(out.spread()),
        out.sim_stats.messages_delivered,
    );
    assert!(out.converged() && out.valid());

    // On a robust clique the iterative algorithm is fine — the conditions
    // genuinely differ, matching the paper's related-work positioning.
    let k5 = generators::clique(5);
    assert!(is_r_s_robust(&k5, 2, 2));
    let run = Scenario::builder(k5, 1)
        .inputs(vec![0.0, 1.0, 2.0, 3.0, 0.0])
        .epsilon(1e-6)
        .fault(NodeId::new(4), FaultKind::ConstantLiar { value: 999.0 })
        .range((0.0, 999.0))
        .protocol(IterativeTrimmedMean::with_rounds(60))
        .run()
        .unwrap();
    println!(
        "iterative on K5 (malicious constant): spread after 60 rounds = {} valid={}",
        num(run.spread()),
        yes_no(run.valid()),
    );
    assert!(run.spread() < 1e-6 && run.valid());
    println!(
        "\nRESULT: local filtering needs robustness; BW's global witnesses need only 3-reach —\n\
         figure_1b_small separates the two exactly as the paper's related-work section claims."
    );
}
