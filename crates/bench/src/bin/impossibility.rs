//! Experiment **E8 — Theorem 18 (necessity of 3-reach)**: the Appendix-B
//! three-execution indistinguishability construction, executed.
//!
//! Run: `cargo run --release -p dbac-bench --bin impossibility`

use dbac_bench::impossibility::run_construction;
use dbac_bench::table::{num, Table};
use dbac_conditions::kreach::{three_reach, two_reach};
use dbac_graph::{generators, Digraph};

fn main() {
    println!("E8 / Theorem 18 — executing the Appendix-B construction\n");
    let cases: Vec<(String, Digraph, usize)> = vec![
        ("K3 (f=1)".into(), generators::clique(3), 1),
        ("K6 (f=2)".into(), generators::clique(6), 2),
        (
            "two-K3 single bridges (f=1)".into(),
            generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]),
            1,
        ),
    ];
    let mut t = Table::new(vec![
        "graph",
        "2-reach",
        "3-reach",
        "v output (e3)",
        "u output (e3)",
        "disagreement",
        "live-verified",
        "synthesized",
    ]);
    let k = 10.0;
    let epsilon = 1.0;
    for (name, g, f) in cases {
        let feasible_substrate = two_reach(&g, f).holds();
        assert!(!three_reach(&g, f).holds(), "{name}: construction needs a 3-reach violation");
        if !feasible_substrate {
            println!(
                "{name}: violates 2-reach as well; the stand-in algorithm cannot run — skipped."
            );
            continue;
        }
        let report = run_construction(&g, f, k, epsilon).expect("construction runs");
        assert!(report.convergence_violated(), "{name}: convergence not violated?");
        t.row(vec![
            name,
            "yes".into(),
            "no".into(),
            num(report.v_output),
            num(report.u_output),
            num(report.disagreement()),
            report.live_matches.to_string(),
            report.synthesized.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Interpretation: in the spliced execution e3, every delivery to v's side was verified\n\
         identical to execution e1 (inputs all 0, F_v crashed) and every delivery to u's side\n\
         to e2 (inputs all {k}, F_u crashed). Validity forces v to output 0 and u to output {k}:\n\
         no algorithm can satisfy convergence on these graphs — 3-reach is necessary."
    );
}
