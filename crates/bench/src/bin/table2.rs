//! Experiment **E2 — Table 2**: the directed-graph condition matrix.
//!
//! * sync crash exact     — 1-reach (≡ CCS, checked)
//! * async crash approx   — 2-reach (≡ CCA): the crash protocol *runs*
//! * sync Byz exact       — 3-reach (≡ BCS, checked)
//! * async Byz approx     — 3-reach (**this paper**): BW *runs*; the
//!   necessity side is executed by the `impossibility` binary.
//!
//! Run: `cargo run --release -p dbac-bench --bin table2`

use dbac_bench::catalog;
use dbac_bench::table::{yes_no, Table};
use dbac_conditions::kreach::{one_reach, three_reach, two_reach};
use dbac_conditions::partition::{bcs, cca, ccs};
use dbac_core::scenario::{ByzantineWitness, CrashTwoReach, FaultKind, Scenario, SchedulerSpec};
use dbac_graph::NodeId;

fn main() {
    println!("E2 / Table 2 — directed tight conditions\n");

    // Condition equivalences (Theorem 17) across a deterministic batch.
    let mut t = Table::new(vec!["graph", "f", "1r=CCS", "2r=CCA", "3r=BCS"]);
    let mut all_equal = true;
    for (i, g) in catalog::random_digraphs(5, 0.5, 12, 7).into_iter().enumerate() {
        for f in 0..=1usize {
            let e1 = one_reach(&g, f).holds() == ccs(&g, f).holds();
            let e2 = two_reach(&g, f).holds() == cca(&g, f).holds();
            let e3 = three_reach(&g, f).holds() == bcs(&g, f).holds();
            all_equal &= e1 && e2 && e3;
            t.row(vec![format!("random-5-{i}"), f.to_string(), yes_no(e1), yes_no(e2), yes_no(e3)]);
        }
    }
    println!("Theorem 17 equivalences:\n{}", t.render());
    assert!(all_equal, "equivalence mismatch");

    // Async crash approx — the 2-reach cell, executed.
    let mut t = Table::new(vec!["graph", "2-reach", "crash run converged", "valid"]);
    for inst in catalog::feasible_instances() {
        let n = inst.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let holds = two_reach(&inst.graph, inst.f).holds();
        let out = Scenario::builder(inst.graph.clone(), inst.f)
            .inputs(inputs)
            .epsilon(0.5)
            // The a-priori range covers the crashed node's input too: it is
            // honest until it crashes.
            .range((0.0, (n - 1) as f64))
            .fault(NodeId::new(n - 1), FaultKind::CrashAfter { sends: 2 })
            .scheduler(SchedulerSpec::legacy_random(5))
            .protocol(CrashTwoReach::default())
            .run()
            .unwrap();
        t.row(vec![inst.name.clone(), yes_no(holds), yes_no(out.converged()), yes_no(out.valid())]);
        assert!(holds && out.converged() && out.valid(), "{} failed", inst.name);
    }
    println!("Async crash approximate consensus (2-reach row):\n{}", t.render());

    // Async Byzantine approx — the paper's cell, executed with a real fault.
    let mut t =
        Table::new(vec!["graph", "3-reach", "adversary", "BW converged", "valid", "messages"]);
    for inst in catalog::feasible_instances() {
        let n = inst.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let byz = NodeId::new(n - 1);
        for (label, kind) in
            [("crash", FaultKind::Crash), ("liar", FaultKind::ConstantLiar { value: 1e6 })]
        {
            let out = Scenario::builder(inst.graph.clone(), inst.f)
                .inputs(inputs.clone())
                .epsilon(0.5)
                .fault(byz, kind)
                .seed(13)
                .protocol(ByzantineWitness::default())
                .run()
                .unwrap();
            t.row(vec![
                inst.name.clone(),
                yes_no(three_reach(&inst.graph, inst.f).holds()),
                label.into(),
                yes_no(out.converged()),
                yes_no(out.valid()),
                out.sim_stats.messages_delivered.to_string(),
            ]);
            assert!(out.converged() && out.valid(), "{} ({label}) failed", inst.name);
        }
    }
    println!("Async Byzantine approximate consensus (3-reach row, this paper):\n{}", t.render());

    // Infeasible side: BW stalls honestly on 3-reach violations.
    let mut t = Table::new(vec!["graph", "3-reach", "all honest decided"]);
    for inst in catalog::infeasible_instances() {
        let n = inst.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let out = Scenario::builder(inst.graph.clone(), inst.f)
            .inputs(inputs)
            .epsilon(0.5)
            .seed(3)
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap();
        t.row(vec![
            inst.name.clone(),
            yes_no(three_reach(&inst.graph, inst.f).holds()),
            yes_no(out.all_decided()),
        ]);
    }
    println!(
        "Violating instances (all-honest runs; progress is not guaranteed without 3-reach —\n\
         see the `impossibility` binary for the Appendix-B disagreement construction):\n{}",
        t.render()
    );
    println!("RESULT: Table 2 matrix reproduced (sync rows via condition equivalences).");
}
