//! Experiment **E2 — Table 2**: the directed-graph condition matrix.
//!
//! * sync crash exact     — 1-reach (≡ CCS, checked)
//! * async crash approx   — 2-reach (≡ CCA): the crash protocol *runs*
//! * sync Byz exact       — 3-reach (≡ BCS, checked)
//! * async Byz approx     — 3-reach (**this paper**): BW *runs*; the
//!   necessity side is executed by the `impossibility` binary.
//!
//! Every executed row is an [`ExperimentPlan`] over the graph catalog —
//! the graph axis comes straight from [`catalog::feasible_instances`] /
//! [`catalog::infeasible_instances`], and the renderer reads conditions
//! off each cell's scenario.
//!
//! Run: `cargo run --release -p dbac-bench --bin table2`

use dbac_bench::catalog;
use dbac_bench::table::{yes_no, Table};
use dbac_conditions::kreach::{one_reach, three_reach, two_reach};
use dbac_conditions::partition::{bcs, cca, ccs};
use dbac_core::scenario::sweep::{Axis, ExperimentPlan, InputSpec, SchedulerFamily};
use dbac_core::scenario::{ByzantineWitness, CrashTwoReach, FaultKind};
use dbac_graph::{Digraph, NodeId};

fn last(g: &Digraph) -> NodeId {
    NodeId::new(g.node_count() - 1)
}

fn catalog_axis(instances: Vec<catalog::Instance>) -> Axis<Digraph> {
    // Every catalog instance targets f = 1, so the graph axis can cross a
    // single fault-bound point.
    assert!(instances.iter().all(|i| i.f == 1), "catalog instances all use f = 1");
    Axis::from_points(instances.into_iter().map(|i| (i.name, i.graph)))
}

fn main() {
    println!("E2 / Table 2 — directed tight conditions\n");

    // Condition equivalences (Theorem 17) across a deterministic batch.
    let mut t = Table::new(vec!["graph", "f", "1r=CCS", "2r=CCA", "3r=BCS"]);
    let mut all_equal = true;
    for (i, g) in catalog::random_digraphs(5, 0.5, 12, 7).into_iter().enumerate() {
        for f in 0..=1usize {
            let e1 = one_reach(&g, f).holds() == ccs(&g, f).holds();
            let e2 = two_reach(&g, f).holds() == cca(&g, f).holds();
            let e3 = three_reach(&g, f).holds() == bcs(&g, f).holds();
            all_equal &= e1 && e2 && e3;
            t.row(vec![format!("random-5-{i}"), f.to_string(), yes_no(e1), yes_no(e2), yes_no(e3)]);
        }
    }
    println!("Theorem 17 equivalences:\n{}", t.render());
    assert!(all_equal, "equivalence mismatch");

    // Async crash approx — the 2-reach cell, executed. The a-priori range
    // covers the crashed node's input too: it is honest until it crashes.
    let sweep = ExperimentPlan::new()
        .protocol("crash", CrashTwoReach::default())
        .graphs_axis(catalog_axis(catalog::feasible_instances()))
        .fault_bound(1)
        .placement("crash-after", |g, _| vec![(last(g), FaultKind::CrashAfter { sends: 2 })])
        .inputs(
            "indexed",
            InputSpec::indexed().with_range_fn(|g| (0.0, (g.node_count() - 1) as f64)),
        )
        .epsilon(0.5)
        .scheduler("legacy", SchedulerFamily::legacy_random())
        .seed(5)
        .build()
        .expect("crash-row plan expands");
    let report = sweep.run();
    let mut t = Table::new(vec!["graph", "2-reach", "crash run converged", "valid"]);
    for (cell, row) in sweep.cells().iter().zip(&report.rows) {
        let scn = cell.scenario().expect("catalog cell builds");
        let holds = two_reach(scn.graph(), scn.f()).holds();
        let s = row.summary.as_ref().unwrap_or_else(|e| panic!("{}: {e}", row.label));
        let name = cell.coord("graph").expect("graph axis");
        t.row(vec![name.into(), yes_no(holds), yes_no(s.converged), yes_no(s.valid)]);
        assert!(holds && s.converged && s.valid, "{name} failed");
    }
    println!("Async crash approximate consensus (2-reach row):\n{}", t.render());

    // Async Byzantine approx — the paper's cell, executed with a real fault
    // (the adversary is a second axis crossed with the catalog).
    let sweep = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graphs_axis(catalog_axis(catalog::feasible_instances()))
        .fault_bound(1)
        .placement("crash", |g, _| vec![(last(g), FaultKind::Crash)])
        .placement("liar", |g, _| vec![(last(g), FaultKind::ConstantLiar { value: 1e6 })])
        .epsilon(0.5)
        .seed(13)
        .build()
        .expect("BW-row plan expands");
    let report = sweep.run();
    let mut t =
        Table::new(vec!["graph", "3-reach", "adversary", "BW converged", "valid", "messages"]);
    for (cell, row) in sweep.cells().iter().zip(&report.rows) {
        let scn = cell.scenario().expect("catalog cell builds");
        let s = row.summary.as_ref().unwrap_or_else(|e| panic!("{}: {e}", row.label));
        let name = cell.coord("graph").expect("graph axis");
        let adversary = cell.coord("placement").expect("placement axis");
        t.row(vec![
            name.into(),
            yes_no(three_reach(scn.graph(), scn.f()).holds()),
            adversary.into(),
            yes_no(s.converged),
            yes_no(s.valid),
            s.messages_delivered.to_string(),
        ]);
        assert!(s.converged && s.valid, "{name} ({adversary}) failed");
    }
    println!("Async Byzantine approximate consensus (3-reach row, this paper):\n{}", t.render());

    // Infeasible side: BW stalls honestly on 3-reach violations.
    let sweep = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graphs_axis(catalog_axis(catalog::infeasible_instances()))
        .fault_bound(1)
        .epsilon(0.5)
        .seed(3)
        .build()
        .expect("infeasible-row plan expands");
    let report = sweep.run();
    let mut t = Table::new(vec!["graph", "3-reach", "all honest decided"]);
    for (cell, row) in sweep.cells().iter().zip(&report.rows) {
        let scn = cell.scenario().expect("catalog cell builds");
        let s = row.summary.as_ref().unwrap_or_else(|e| panic!("{}: {e}", row.label));
        t.row(vec![
            cell.coord("graph").expect("graph axis").into(),
            yes_no(three_reach(scn.graph(), scn.f()).holds()),
            yes_no(s.all_decided),
        ]);
    }
    println!(
        "Violating instances (all-honest runs; progress is not guaranteed without 3-reach —\n\
         see the `impossibility` binary for the Appendix-B disagreement construction):\n{}",
        t.render()
    );
    println!("RESULT: Table 2 matrix reproduced (sync rows via condition equivalences).");
}
