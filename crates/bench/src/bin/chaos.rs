//! Experiment **E13 — chaos smoke sweep**.
//!
//! Drives the link-fault axis through a small [`ExperimentPlan`]: BW on K4
//! with clean links, two drop probabilities, and an early partition of the
//! last node's in-edges, each over a three-seed batch. The point is not a
//! performance number but an invariant surface: clean cells must converge,
//! lossy cells must count their losses, and *no* cell may fail with an
//! untyped error — chaos turns into per-cell data, never into a crash.
//!
//! Run: `cargo run --release -p dbac-bench --bin chaos`
//! (`-- --json <path>` additionally writes the *reduced* seed-aggregated
//! report as `bench_trend`-compatible JSON, uploaded as a CI artifact next
//! to `sweep.json`).

use dbac_bench::table::Table;
use dbac_core::scenario::sweep::ExperimentPlan;
use dbac_core::scenario::{ByzantineWitness, LinkFault, LinkFaultPlan};
use dbac_graph::{generators, Digraph, NodeId};

fn main() {
    println!("E13 — link-fault (chaos) smoke sweep: BW on K4, three-seed batches\n");
    let drop_all = |prob: f64| {
        move |g: &Digraph, seed: u64| {
            let mut plan = LinkFaultPlan::new(seed);
            for (from, to) in g.edges() {
                plan = plan.fault(from, to, LinkFault::Drop { prob });
            }
            Some(plan)
        }
    };
    let sweep = ExperimentPlan::new()
        .protocol("BW", ByzantineWitness::default())
        .graph("K4", generators::clique(4))
        .fault_bound(0)
        .link_faults("clean", |_, _| None)
        .link_faults("drop5", drop_all(0.05))
        .link_faults("drop20", drop_all(0.20))
        .link_faults("cut-last", |g: &Digraph, seed| {
            // The last node's in-edges go dark for their first 25 messages
            // each — an early partition that may or may not heal in time.
            let last = NodeId::new(g.node_count() - 1);
            let mut plan = LinkFaultPlan::new(seed);
            for (from, to) in g.edges() {
                if to == last {
                    plan = plan.fault(from, to, LinkFault::Partition { from_step: 0, to_step: 25 });
                }
            }
            Some(plan)
        })
        .seeds([1, 2, 3])
        .build()
        .expect("chaos plan expands");
    let report = sweep.run();
    assert!(
        report.failures().is_empty(),
        "chaos cells must degrade, not error: {:?}",
        report.failures().iter().map(|r| &r.label).collect::<Vec<_>>()
    );
    let reduced = report.reduce();
    println!("plan: {} cells in {} seed-batch groups\n", sweep.cell_count(), reduced.cells.len());

    let mut t = Table::new(vec![
        "links",
        "converged",
        "valid",
        "dropped (mean [min, max])",
        "delivered (mean)",
    ]);
    for cell in &reduced.cells {
        let links = cell.coord("links").expect("links axis");
        assert_eq!(cell.valid, cell.runs, "{}: safety violated under chaos", cell.group);
        if links == "clean" {
            assert_eq!(cell.converged, cell.runs, "{}: clean links must converge", cell.group);
            assert_eq!(cell.dropped.max, 0.0, "{}: clean links must not drop", cell.group);
        } else {
            assert!(cell.dropped.min > 0.0, "{}: lossy links must count losses", cell.group);
        }
        t.row(vec![
            links.into(),
            format!("{}/{}", cell.converged, cell.runs),
            format!("{}/{}", cell.valid, cell.runs),
            format!("{:.0} [{:.0}, {:.0}]", cell.dropped.mean, cell.dropped.min, cell.dropped.max),
            format!("{:.0}", cell.messages.mean),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Validity holds in every cell; drops cost only liveness (convergence\n\
         column), and each loss is accounted in the dropped counters.\n"
    );

    if let Some(path) = json_path() {
        reduced.write_json(std::path::Path::new(&path)).expect("chaos JSON written");
        println!("reduced chaos report written to {path}");
    }
}

fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(args.next().expect("--json requires a path"));
        }
    }
    None
}
