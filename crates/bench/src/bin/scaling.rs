//! Experiment **E11a — scaling**: the price of the paper's generality.
//! Redundant-path pools, message counts and wall time as `n` and `f` grow
//! — the algorithm is a feasibility construction, and this experiment
//! quantifies its exponential footprint.
//!
//! Run: `cargo run --release -p dbac-bench --bin scaling`

use dbac_bench::table::{yes_no, Table};
use dbac_core::config::FloodMode;
use dbac_core::precompute::Topology;
use dbac_core::scenario::{ByzantineWitness, FaultKind, Scenario};
use dbac_graph::{generators, Digraph, NodeId, PathBudget};
use std::time::Instant;

fn main() {
    path_pool_growth();
    end_to_end_scaling();
}

fn path_pool_growth() {
    println!("E11a — redundant-path pool size per terminal\n");
    let mut t = Table::new(vec![
        "graph",
        "n",
        "edges",
        "simple paths -> v0",
        "redundant paths -> v0",
        "precompute (ms)",
    ]);
    let cases: Vec<(String, Digraph)> = vec![
        ("K3".into(), generators::clique(3)),
        ("K4".into(), generators::clique(4)),
        ("K5".into(), generators::clique(5)),
        ("K6".into(), generators::clique(6)),
        ("two-K3 bridged".into(), generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)])),
        ("two-K4 bridged".into(), generators::figure_1b_small()),
        ("cycle-8".into(), generators::directed_cycle(8)),
    ];
    for (name, g) in cases {
        let start = Instant::now();
        let topo = Topology::new(g.clone(), 1, FloodMode::Redundant, PathBudget::new(5_000_000))
            .expect("within budget");
        let elapsed = start.elapsed().as_millis();
        t.row(vec![
            name,
            g.node_count().to_string(),
            g.edge_count().to_string(),
            topo.simple_paths_to(NodeId::new(0)).len().to_string(),
            topo.required_paths_to(NodeId::new(0)).len().to_string(),
            elapsed.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn end_to_end_scaling() {
    println!("E11a — full protocol runs (one liar, ε = 1.0)\n");
    let mut t = Table::new(vec![
        "graph",
        "f",
        "messages sent",
        "messages delivered",
        "wall (ms)",
        "converged",
    ]);
    let cases: Vec<(String, Digraph, usize)> = vec![
        ("K4".into(), generators::clique(4), 1),
        ("K5".into(), generators::clique(5), 1),
        ("two-K3 bridged".into(), generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]), 0),
        ("two-K4 bridged".into(), generators::figure_1b_small(), 1),
        ("figure-1a".into(), generators::figure_1a(), 1),
    ];
    for (name, g, f) in cases {
        let n = g.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 2.0).collect();
        let mut builder = Scenario::builder(g.clone(), f)
            .inputs(inputs)
            .epsilon(1.0)
            .seed(6)
            .max_events(100_000_000)
            .protocol(ByzantineWitness::default());
        if f > 0 {
            builder = builder.fault(NodeId::new(n - 1), FaultKind::ConstantLiar { value: 1e4 });
        }
        let scenario = builder.build().unwrap();
        let start = Instant::now();
        let out = scenario.run().unwrap();
        let elapsed = start.elapsed().as_millis();
        t.row(vec![
            name.clone(),
            f.to_string(),
            out.sim_stats.messages_sent().to_string(),
            out.sim_stats.messages_delivered().to_string(),
            elapsed.to_string(),
            yes_no(out.converged()),
        ]);
        assert!(out.converged(), "{name} failed to converge");
    }
    println!("{}", t.render());
    println!(
        "RESULT: message volume tracks the redundant-path census — the exponential cost\n\
         of tolerating Byzantine faults in incomplete directed networks, as the paper's\n\
         feasibility-oriented construction predicts."
    );
}
