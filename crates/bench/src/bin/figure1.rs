//! Experiments **E3 / E4 — Figure 1**: the paper's two example networks.
//!
//! * Figure 1(a): 5-node undirected, minimally 3-connected — synchronous
//!   exact Byzantine consensus feasible for `f = 1`; removing any edge
//!   breaks it. We verify κ, minimality, 3-reach, and run BW on it.
//! * Figure 1(b): two 7-cliques + 8 directed bridges — 3-reach holds for
//!   `f = 2` although `v1`/`w1` have only `2f = 4` disjoint paths (all-pair
//!   reliable message transmission infeasible). We verify all of that, and
//!   run the full protocol on the structurally identical 8-node scale-down.
//!
//! Run: `cargo run --release -p dbac-bench --bin figure1`

use dbac_bench::table::{num, yes_no, Table};
use dbac_conditions::kreach::three_reach;
use dbac_conditions::partition::bcs;
use dbac_core::scenario::sweep::{ExperimentPlan, InputSpec};
use dbac_core::scenario::{ByzantineWitness, FaultKind, Scenario};
use dbac_graph::connectivity::vertex_connectivity;
use dbac_graph::maxflow::max_vertex_disjoint_paths;
use dbac_graph::{dot, generators, NodeId, NodeSet};

fn main() {
    figure_1a();
    figure_1b();
}

fn figure_1a() {
    println!("E3 / Figure 1(a) — 5-node undirected example (f = 1)\n");
    let g = generators::figure_1a();
    let kappa = vertex_connectivity(&g);
    let mut t = Table::new(vec!["property", "paper", "measured"]);
    t.row(vec!["n".into(), "5".into(), g.node_count().to_string()]);
    t.row(vec!["κ(G) > 2f".into(), "yes (κ=3)".into(), format!("κ={kappa}")]);
    t.row(vec!["3-reach (f=1)".into(), "yes".to_string(), yes_no(three_reach(&g, 1).holds())]);
    t.row(vec!["BCS (f=1)".into(), "yes".to_string(), yes_no(bcs(&g, 1).holds())]);
    // Minimality: removing any undirected edge reduces κ.
    let mut minimal = true;
    for (u, v) in g.edges().collect::<Vec<_>>() {
        if u < v {
            let mut h = g.clone();
            h.remove_edge(u, v);
            h.remove_edge(v, u);
            minimal &= vertex_connectivity(&h) < 3;
        }
    }
    t.row(vec!["minimally 3-connected".into(), "yes".to_string(), yes_no(minimal)]);
    println!("{}", t.render());
    assert!(kappa == 3 && minimal && three_reach(&g, 1).holds());

    // Run the asynchronous Byzantine protocol on it.
    let out = Scenario::builder(g.clone(), 1)
        .inputs(vec![0.0, 10.0, 5.0, 2.0, 7.0])
        .epsilon(0.5)
        .fault(NodeId::new(4), FaultKind::Equivocator { low: -1e3, high: 1e3 })
        .seed(21)
        .protocol(ByzantineWitness::default())
        .run()
        .unwrap();
    println!(
        "BW on Figure 1(a) with an equivocator at v5: converged={} valid={} spread={}\n",
        yes_no(out.converged()),
        yes_no(out.valid()),
        num(out.spread()),
    );
    assert!(out.converged() && out.valid());
    println!("DOT:\n{}", dot::to_dot(&g, "figure_1a", NodeSet::EMPTY));
}

fn figure_1b() {
    println!("E4 / Figure 1(b) — two 7-cliques + 8 bridges (f = 2)\n");
    let g = generators::figure_1b();
    let v1 = NodeId::new(0);
    let w1 = NodeId::new(7);
    let mut t = Table::new(vec!["property", "paper", "measured"]);
    t.row(vec!["n".into(), "14".into(), g.node_count().to_string()]);
    t.row(vec![
        "disjoint paths v1→w1".into(),
        "2f = 4".into(),
        max_vertex_disjoint_paths(&g, v1, w1).to_string(),
    ]);
    t.row(vec![
        "disjoint paths w1→v1".into(),
        "2f = 4".into(),
        max_vertex_disjoint_paths(&g, w1, v1).to_string(),
    ]);
    t.row(vec![
        "all-pair RMT (needs 2f+1 = 5)".into(),
        "infeasible".into(),
        yes_no(max_vertex_disjoint_paths(&g, v1, w1) >= 5),
    ]);
    let three = three_reach(&g, 2);
    t.row(vec!["3-reach (f=2)".into(), "yes".to_string(), yes_no(three.holds())]);
    println!("{}", t.render());
    assert_eq!(max_vertex_disjoint_paths(&g, v1, w1), 4);
    assert!(three.holds(), "figure 1(b) must satisfy 3-reach: {three}");

    // The scale-down preserves the structure and runs the full protocol.
    let small = generators::figure_1b_small();
    let mut t = Table::new(vec!["property", "expected", "measured"]);
    t.row(vec!["3-reach (f=1)".into(), "yes".to_string(), yes_no(three_reach(&small, 1).holds())]);
    t.row(vec![
        "disjoint v1→w1 (= 2f)".into(),
        "2".into(),
        max_vertex_disjoint_paths(&small, NodeId::new(0), NodeId::new(4)).to_string(),
    ]);
    println!("8-node scale-down:\n{}", t.render());

    // The two adversarial runs are one plan: the fault placement is the
    // only populated axis.
    let report = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graph("scale-down", small)
        .faults("crash in K1", vec![(NodeId::new(2), FaultKind::Crash)])
        .faults("liar in K2", vec![(NodeId::new(6), FaultKind::ConstantLiar { value: -1e5 })])
        .inputs("fig1b", InputSpec::fixed(vec![0.0, 2.0, 4.0, 6.0, 10.0, 8.0, 7.0, 1.0]))
        .epsilon(1.0)
        .seed(9)
        .build()
        .expect("figure 1(b) plan expands")
        .run();
    for row in &report.rows {
        let label = row.coord("placement").expect("placement axis");
        let s = row.summary.as_ref().unwrap_or_else(|e| panic!("{}: {e}", row.label));
        println!(
            "BW on scale-down with {label}: converged={} valid={} spread={} messages={}",
            yes_no(s.converged),
            yes_no(s.valid),
            num(s.spread),
            s.messages_delivered,
        );
        assert!(s.converged && s.valid, "{label} failed");
    }
    println!("\nRESULT: Figure 1 properties reproduced; consensus without all-pair RMT confirmed.");
}
