//! Experiment **E12 — iterative scaling**: the W-MSR engine past the
//! 128-node wall. The BW protocol is a feasibility construction whose
//! footprint explodes with `n` (E11a); the iterative engine is the
//! scalability counterpoint — constant-degree circulant topologies, flat
//! columnar round buffers, and runs that reach 10⁴ nodes in one simulated
//! scenario.
//!
//! Every scale point now reports how its topology's correctness condition
//! (`(f+1, f+1)`-robustness) was established: the certificate rule that
//! proved it, re-checked by the O(V+E) verifier, or an explicit
//! `UNCERTIFIED` marker. The exact checker is exponential and useless at
//! these sizes — a 10⁴-node run used to ship on silent faith.
//!
//! Scale points above the compiled `MAX_NODES` are skipped with a hint
//! (the default 4-word NodeSet caps at 256 nodes); build with
//! `--features huge-graphs` for the full sweep:
//!
//! ```text
//! cargo run --release -p dbac-bench --features huge-graphs --bin scaling_iterative [-- --json]
//! ```

use dbac_baselines::IterativeTrimmedMean;
use dbac_bench::table::Table;
use dbac_conditions::robustness::{verify_certificate, CertificationStatus};
use dbac_core::scenario::Scenario;
use dbac_graph::generators;
use std::time::Instant;

struct Point {
    n: usize,
    rounds: u32,
    spread: f64,
    converged: bool,
    messages: u64,
    wall_ms: f64,
    /// Certificate rule name, or "UNCERTIFIED".
    cert: String,
    /// Wall time of the O(V+E) certificate re-verification.
    verify_ms: f64,
}

fn run_point(n: usize, rounds: u32, epsilon: f64) -> Point {
    let g = generators::circulant_pow2(n);
    // Deterministic inputs in [0, 1] with honest extremes at both ends.
    let inputs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.754_877_666).fract()).collect();
    let start = Instant::now();
    let out = Scenario::builder(g, 0)
        .inputs(inputs)
        .epsilon(epsilon)
        .rounds(rounds)
        .protocol(IterativeTrimmedMean::default())
        .run()
        .expect("iterative scaling run");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(out.all_decided(), "every node must finish its rounds at f = 0");

    // No more silent faith: surface the topology's certification status
    // and re-check the certificate with the linear-time verifier.
    let status = out.certification.as_ref().expect("iterative protocol attaches certification");
    let mut verify_ms = 0.0;
    if let CertificationStatus::Certified(cert) = status {
        let g = generators::circulant_pow2(n);
        let t = Instant::now();
        verify_certificate(&g, cert).expect("issued certificate must verify");
        verify_ms = t.elapsed().as_secs_f64() * 1e3;
    }
    Point {
        n,
        rounds,
        spread: out.spread(),
        converged: out.converged(),
        messages: out.honest_messages.unwrap_or(0),
        wall_ms,
        cert: status.rule_label().to_string(),
        verify_ms,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let epsilon = 1e-6;
    let rounds = 120;
    let mut points = Vec::new();
    let mut skipped = Vec::new();
    for n in [64usize, 256, 1024, 4096, 10_000] {
        if n > dbac_graph::MAX_NODES {
            skipped.push(n);
            continue;
        }
        points.push(run_point(n, rounds, epsilon));
    }

    if json {
        let rows: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"n\": {}, \"rounds\": {}, \"spread\": {:e}, \"converged\": {}, \
                     \"messages\": {}, \"wall_ms\": {:.1}, \"cert\": \"{}\", \
                     \"verify_ms\": {:.3}}}",
                    p.n,
                    p.rounds,
                    p.spread,
                    p.converged,
                    p.messages,
                    p.wall_ms,
                    p.cert,
                    p.verify_ms
                )
            })
            .collect();
        println!(
            "{{\n  \"experiment\": \"scaling-iterative\",\n  \"max_nodes\": {},\n  \
             \"epsilon\": {:e},\n  \"points\": [\n{}\n  ]\n}}",
            dbac_graph::MAX_NODES,
            epsilon,
            rows.join(",\n")
        );
    } else {
        println!("E12 — iterative W-MSR scaling (circulant-pow2, f = 0, ε = {epsilon:e})\n");
        let mut t = Table::new(vec![
            "n",
            "rounds",
            "spread",
            "converged",
            "messages",
            "wall (ms)",
            "cert",
            "verify (ms)",
        ]);
        for p in &points {
            t.row(vec![
                p.n.to_string(),
                p.rounds.to_string(),
                format!("{:.2e}", p.spread),
                p.converged.to_string(),
                p.messages.to_string(),
                format!("{:.1}", p.wall_ms),
                p.cert.clone(),
                format!("{:.3}", p.verify_ms),
            ]);
        }
        println!("{}", t.render());
        for n in &skipped {
            println!(
                "skipped n = {n}: exceeds MAX_NODES = {} (rebuild with --features huge-graphs)",
                dbac_graph::MAX_NODES
            );
        }
    }

    // The experiment's claim: every point that ran reached ε-agreement,
    // and — new since the robustness subsystem — every topology carries a
    // machine-checked certificate for (1, 1)-robustness (f = 0), each
    // verified in well under a second even at 10⁴ nodes.
    assert!(points.iter().all(|p| p.converged), "a scale point failed to converge");
    assert!(
        points.iter().all(|p| p.cert != "UNCERTIFIED"),
        "a scale topology ran without a robustness certificate"
    );
    assert!(
        points.iter().all(|p| p.verify_ms < 1000.0),
        "certificate verification must stay well under a second"
    );
}
