//! Experiment **E7 — Theorem 17 and the structural theorems**, verified
//! exhaustively on all small digraphs and on random batches.
//!
//! Run: `cargo run --release -p dbac-bench --bin equivalences`

use dbac_bench::catalog;
use dbac_bench::table::{yes_no, Table};
use dbac_conditions::kreach::{k_reach, one_reach, three_reach, two_reach};
use dbac_conditions::partition::{bcs, cca, ccs};
use dbac_conditions::theorems::{theorem12_sweep, theorem5_sweep};
use dbac_graph::{generators, Digraph, NodeId};

fn main() {
    exhaustive_small();
    random_batch();
    clique_bounds();
    structural_theorems();
}

/// Every digraph on 4 nodes (2^12 of them), f ∈ {0, 1}: the three
/// equivalences of Theorem 17 hold with zero exceptions.
fn exhaustive_small() {
    println!("E7 — Theorem 17, exhaustively on all 4-node digraphs\n");
    let n = 4usize;
    let pairs: Vec<(usize, usize)> =
        (0..n).flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v))).collect();
    let total = 1u32 << pairs.len();
    let mut checked = 0u64;
    for mask in 0..total {
        let mut g = Digraph::new(n).unwrap();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                g.add_edge(NodeId::new(u), NodeId::new(v)).unwrap();
            }
        }
        for f in 0..=1usize {
            assert_eq!(one_reach(&g, f).holds(), ccs(&g, f).holds(), "CCS mask={mask} f={f}");
            assert_eq!(two_reach(&g, f).holds(), cca(&g, f).holds(), "CCA mask={mask} f={f}");
            assert_eq!(three_reach(&g, f).holds(), bcs(&g, f).holds(), "BCS mask={mask} f={f}");
            checked += 3;
        }
    }
    println!("checked {checked} equivalence instances over {total} digraphs: all agree.\n");
}

fn random_batch() {
    println!("E7 — Theorem 17 on random 6-node digraphs (f up to 2)\n");
    let mut t = Table::new(vec!["density", "graphs", "f", "agreements", "disagreements"]);
    for p in [0.3, 0.5, 0.7] {
        let graphs = catalog::random_digraphs(6, p, 8, (p * 1000.0) as u64);
        for f in 0..=2usize {
            let mut agree = 0;
            let mut disagree = 0;
            for g in &graphs {
                let pairs = [
                    one_reach(g, f).holds() == ccs(g, f).holds(),
                    two_reach(g, f).holds() == cca(g, f).holds(),
                    three_reach(g, f).holds() == bcs(g, f).holds(),
                ];
                for ok in pairs {
                    if ok {
                        agree += 1;
                    } else {
                        disagree += 1;
                    }
                }
            }
            t.row(vec![
                format!("{p}"),
                graphs.len().to_string(),
                f.to_string(),
                agree.to_string(),
                disagree.to_string(),
            ]);
            assert_eq!(disagree, 0);
        }
    }
    println!("{}", t.render());
}

/// Appendix A: in a clique, k-reach ⇔ n > k·f (for k ≥ 2; 1-reach is
/// unconditional in cliques — see DESIGN.md §3).
fn clique_bounds() {
    println!("E7 — clique specialization: k-reach ⇔ n > k·f\n");
    let mut t = Table::new(vec!["n", "f", "k", "k-reach", "n > k·f", "match"]);
    let mut all = true;
    for n in 3..=7usize {
        for f in 1..=2usize {
            for k in 2..=3usize {
                let holds = k_reach(&generators::clique(n), k, f).holds();
                let bound = n > k * f;
                all &= holds == bound;
                t.row(vec![
                    n.to_string(),
                    f.to_string(),
                    k.to_string(),
                    yes_no(holds),
                    yes_no(bound),
                    yes_no(holds == bound),
                ]);
            }
        }
    }
    println!("{}", t.render());
    assert!(all);
}

/// Theorems 5 and 12 hold on every 3-reach instance we can sweep.
fn structural_theorems() {
    println!("E7 — Theorems 5 and 12 on 3-reach instances\n");
    let mut t = Table::new(vec!["graph", "f", "Theorem 5", "Theorem 12"]);
    for inst in catalog::feasible_instances() {
        let t5 = theorem5_sweep(&inst.graph, inst.f).is_none();
        let t12 = theorem12_sweep(&inst.graph, inst.f).is_none();
        t.row(vec![inst.name.clone(), inst.f.to_string(), yes_no(t5), yes_no(t12)]);
        assert!(t5 && t12, "{} broke a structural theorem", inst.name);
    }
    println!("{}", t.render());
    println!("RESULT: all equivalences and structural theorems verified.");
}
