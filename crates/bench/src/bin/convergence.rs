//! Experiments **E5 / E6 — convergence**: Lemma 15's per-round halving and
//! Section 4.6's termination bound, each a declarative [`ExperimentPlan`]
//! plus a table renderer — the adversary (E5) and ε (E6) are axes, not
//! hand-rolled loops.
//!
//! Run: `cargo run --release -p dbac-bench --bin convergence`

use dbac_bench::table::{num, yes_no, Table};
use dbac_core::config::num_rounds;
use dbac_core::scenario::sweep::{CellRow, ExperimentPlan, InputSpec};
use dbac_core::scenario::{ByzantineWitness, FaultKind};
use dbac_graph::{generators, NodeId};

fn main() {
    halving();
    termination_bound();
}

fn summary(row: &CellRow) -> &dbac_core::scenario::sweep::CellSummary {
    row.summary.as_ref().unwrap_or_else(|e| panic!("{}: {e}", row.label))
}

/// E5: measured spread per round vs the `K/2^r` bound — one plan with the
/// adversary as the only populated axis.
fn halving() {
    println!("E5 / Lemma 15 — spread halves every round\n");
    let k = 16.0;
    let v3 = NodeId::new(3);
    let report = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graph("K4", generators::clique(4))
        .faults("all honest", Vec::new())
        .faults("crash", vec![(v3, FaultKind::Crash)])
        .faults("liar 1e6", vec![(v3, FaultKind::ConstantLiar { value: 1e6 })])
        .faults("equivocator", vec![(v3, FaultKind::Equivocator { low: -1e3, high: 1e3 })])
        .faults("chaotic", vec![(v3, FaultKind::Chaotic { seed: 5 })])
        .inputs("spread16", InputSpec::fixed(vec![0.0, 16.0, 4.0, 12.0]).with_range(0.0, k))
        .epsilon(0.05)
        .rounds(6)
        .seed(31)
        .build()
        .expect("E5 plan expands")
        .run();
    for row in &report.rows {
        let adversary = row.coord("placement").expect("placement axis");
        let s = summary(row);
        assert!(s.all_decided, "{adversary}: some node undecided");
        let mut t = Table::new(vec!["round", "spread U[r]-mu[r]", "bound K/2^r", "within bound"]);
        let mut ok = true;
        for (r, &spread) in s.spread_by_round.iter().enumerate() {
            let bound = k / 2f64.powi(r as i32);
            ok &= spread <= bound + 1e-9;
            t.row(vec![r.to_string(), num(spread), num(bound), yes_no(spread <= bound + 1e-9)]);
        }
        println!("adversary: {adversary}\n{}", t.render());
        assert!(ok, "{adversary}: halving bound violated");
        assert!(s.valid, "{adversary}: validity violated");
    }
}

/// E6: rounds needed for ε-agreement vs the a-priori bound `⌈log₂(K/ε)⌉` —
/// ε is the swept axis.
fn termination_bound() {
    println!("E6 / Section 4.6 — termination bound sweep\n");
    let k = 8.0;
    let report = ExperimentPlan::new()
        .protocol("bw", ByzantineWitness::default())
        .graph("K4", generators::clique(4))
        .faults("liar", vec![(NodeId::new(3), FaultKind::ConstantLiar { value: -1e4 })])
        .inputs("spread8", InputSpec::fixed(vec![0.0, 8.0, 2.0, 6.0]).with_range(0.0, k))
        .epsilons([4.0, 2.0, 1.0, 0.5, 0.25])
        .seed(77)
        .build()
        .expect("E6 plan expands")
        .run();
    let mut t = Table::new(vec![
        "epsilon",
        "rounds bound",
        "final spread",
        "spread < eps",
        "earliest conforming round",
    ]);
    for row in &report.rows {
        let s = summary(row);
        let epsilon = s.epsilon;
        let bound = num_rounds(k, epsilon);
        let final_spread = *s.spread_by_round.last().expect("history recorded");
        let earliest = s
            .rounds_to_epsilon
            .map_or_else(|| s.spread_by_round.len().to_string(), |r| r.to_string());
        t.row(vec![
            num(epsilon),
            bound.to_string(),
            num(final_spread),
            yes_no(final_spread < epsilon),
            earliest,
        ]);
        assert!(final_spread < epsilon, "ε={epsilon}: bound insufficient");
    }
    println!("{}", t.render());
    println!(
        "RESULT: running exactly ⌈log2(K/ε)⌉⁺ rounds suffices, often with slack —\n\
         the paper's bound is a worst-case guarantee."
    );
}
