//! Experiments **E5 / E6 — convergence**: Lemma 15's per-round halving and
//! Section 4.6's termination bound, measured.
//!
//! Run: `cargo run --release -p dbac-bench --bin convergence`

use dbac_bench::table::{num, yes_no, Table};
use dbac_core::config::num_rounds;
use dbac_core::scenario::{ByzantineWitness, FaultKind, Scenario};
use dbac_graph::{generators, NodeId};

fn main() {
    halving();
    termination_bound();
}

/// E5: measured spread per round vs the `K/2^r` bound, across adversaries.
fn halving() {
    println!("E5 / Lemma 15 — spread halves every round\n");
    let g = generators::clique(4);
    let inputs = vec![0.0, 16.0, 4.0, 12.0];
    let k = 16.0;
    let cases: Vec<(&str, Option<(NodeId, FaultKind)>)> = vec![
        ("all honest", None),
        ("crash", Some((NodeId::new(3), FaultKind::Crash))),
        ("liar 1e6", Some((NodeId::new(3), FaultKind::ConstantLiar { value: 1e6 }))),
        ("equivocator", Some((NodeId::new(3), FaultKind::Equivocator { low: -1e3, high: 1e3 }))),
        ("chaotic", Some((NodeId::new(3), FaultKind::Chaotic { seed: 5 }))),
    ];
    for (label, byz) in cases {
        let mut builder = Scenario::builder(g.clone(), 1)
            .inputs(inputs.clone())
            .epsilon(0.05)
            .range((0.0, 16.0))
            .rounds(6)
            .seed(31)
            .protocol(ByzantineWitness::default());
        if let Some((v, kind)) = byz.clone() {
            builder = builder.fault(v, kind);
        }
        let out = builder.run().unwrap();
        assert!(out.all_decided(), "{label}: some node undecided");
        let spreads = out.spread_by_round();
        let mut t = Table::new(vec!["round", "spread U[r]-mu[r]", "bound K/2^r", "within bound"]);
        let mut ok = true;
        for (r, &s) in spreads.iter().enumerate() {
            let bound = k / 2f64.powi(r as i32);
            ok &= s <= bound + 1e-9;
            t.row(vec![r.to_string(), num(s), num(bound), yes_no(s <= bound + 1e-9)]);
        }
        println!("adversary: {label}\n{}", t.render());
        assert!(ok, "{label}: halving bound violated");
        assert!(out.valid(), "{label}: validity violated");
    }
}

/// E6: rounds needed for ε-agreement vs the a-priori bound `⌈log₂(K/ε)⌉`.
fn termination_bound() {
    println!("E6 / Section 4.6 — termination bound sweep\n");
    let g = generators::clique(4);
    let inputs = vec![0.0, 8.0, 2.0, 6.0];
    let k = 8.0;
    let mut t = Table::new(vec![
        "epsilon",
        "rounds bound",
        "final spread",
        "spread < eps",
        "earliest conforming round",
    ]);
    for epsilon in [4.0, 2.0, 1.0, 0.5, 0.25] {
        let bound = num_rounds(k, epsilon);
        let out = Scenario::builder(g.clone(), 1)
            .inputs(inputs.clone())
            .epsilon(epsilon)
            .range((0.0, k))
            .fault(NodeId::new(3), FaultKind::ConstantLiar { value: -1e4 })
            .seed(77)
            .protocol(ByzantineWitness::default())
            .run()
            .unwrap();
        let spreads = out.spread_by_round();
        let final_spread = *spreads.last().unwrap();
        let earliest = spreads.iter().position(|&s| s < epsilon).unwrap_or(spreads.len());
        t.row(vec![
            num(epsilon),
            bound.to_string(),
            num(final_spread),
            yes_no(final_spread < epsilon),
            earliest.to_string(),
        ]);
        assert!(final_spread < epsilon, "ε={epsilon}: bound insufficient");
    }
    println!("{}", t.render());
    println!(
        "RESULT: running exactly ⌈log2(K/ε)⌉⁺ rounds suffices, often with slack —\n\
         the paper's bound is a worst-case guarantee."
    );
}
