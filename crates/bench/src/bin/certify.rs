//! Experiment **E13 — topology certification**: sweep the generator
//! families against an `(r, s)` grid and report, for each combination,
//! which polynomial sufficient rule certifies robustness (if any), the
//! issuing time, and the O(V+E) re-verification time. The headline row is
//! the 10⁴-node `circulant_pow2` topology of the E12 scaling run: the
//! exact checker is hopeless there, yet the certificate verifies in well
//! under a second.
//!
//! ```text
//! cargo run --release -p dbac-bench --features huge-graphs --bin certify [-- --json]
//! ```
//!
//! With `--json` the output is `{"experiment": "certify",
//! "certificates": [...]}` where each entry embeds the full serialized
//! [`RobustnessCertificate`](dbac_conditions::robustness::RobustnessCertificate)
//! — the artifact CI uploads next to
//! `net.json`/`stats.json`.

use dbac_bench::table::Table;
use dbac_conditions::robustness::{certification, verify_certificate, CertificationStatus};
use dbac_graph::{generators, Digraph};
use std::time::Instant;

struct Row {
    family: String,
    n: usize,
    r: usize,
    s: usize,
    /// Rule name or "UNCERTIFIED".
    rule: String,
    /// Certificate JSON, when one was issued.
    cert_json: Option<String>,
    issue_ms: f64,
    verify_ms: f64,
}

fn sweep(family: &str, g: &Digraph, grid: &[(usize, usize)], rows: &mut Vec<Row>) {
    for &(r, s) in grid {
        let t = Instant::now();
        let status = certification(g, r, s);
        let issue_ms = t.elapsed().as_secs_f64() * 1e3;
        let (rule, cert_json, verify_ms) = match &status {
            CertificationStatus::Certified(cert) => {
                let t = Instant::now();
                verify_certificate(g, cert).expect("issued certificate must verify");
                (
                    cert.rule.name().to_string(),
                    Some(cert.to_json()),
                    t.elapsed().as_secs_f64() * 1e3,
                )
            }
            CertificationStatus::Uncertified { .. } => (status.rule_label().to_string(), None, 0.0),
        };
        rows.push(Row {
            family: family.into(),
            n: g.node_count(),
            r,
            s,
            rule,
            cert_json,
            issue_ms,
            verify_ms,
        });
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let grid = [(1usize, 1usize), (2, 2), (3, 3)];
    let mut rows = Vec::new();

    for n in [8usize, 16, 32] {
        sweep(&format!("clique({n})"), &generators::clique(n), &grid, &mut rows);
    }
    for (n, k) in [(16usize, 1usize), (16, 3), (16, 5), (32, 5)] {
        let offsets: Vec<usize> = (1..=k).collect();
        sweep(
            &format!("circulant({n},1..={k})"),
            &generators::circulant(n, &offsets),
            &grid,
            &mut rows,
        );
    }
    sweep("bidirectional_cycle(12)", &generators::bidirectional_cycle(12), &grid, &mut rows);
    for (layers, width) in [(3usize, 4usize), (4, 8)] {
        sweep(
            &format!("layered_expander({layers},{width})"),
            &generators::layered_expander(layers, width),
            &grid,
            &mut rows,
        );
    }
    sweep("figure_1a", &generators::figure_1a(), &grid, &mut rows);

    // The scaling-run family. 10⁴ nodes needs the huge-graphs NodeSet.
    for n in [256usize, 10_000] {
        if n > dbac_graph::MAX_NODES {
            eprintln!(
                "skipped circulant_pow2({n}): exceeds MAX_NODES = {} \
                 (rebuild with --features huge-graphs)",
                dbac_graph::MAX_NODES
            );
            continue;
        }
        let g = generators::circulant_pow2(n);
        sweep(&format!("circulant_pow2({n})"), &g, &grid, &mut rows);
        // The E12 acceptance bar: the exact topology the 10⁴-node scaling
        // run uses must certify at its (f+1, f+1) = (1, 1) and re-verify
        // well under a second.
        let headline = rows
            .iter()
            .find(|row| {
                row.n == n && row.r == 1 && row.s == 1 && row.family.starts_with("circulant_pow2")
            })
            .expect("grid contains (1, 1)");
        assert!(headline.cert_json.is_some(), "scaling topology must certify at (1, 1)");
        assert!(headline.verify_ms < 1000.0, "verification must stay well under a second");
    }

    if json {
        let entries: Vec<String> = rows
            .iter()
            .map(|row| {
                let cert = row.cert_json.as_deref().unwrap_or("null");
                format!(
                    "    {{\"family\": \"{}\", \"n\": {}, \"r\": {}, \"s\": {}, \
                     \"rule\": \"{}\", \"issue_ms\": {:.3}, \"verify_ms\": {:.3}, \
                     \"certificate\": {}}}",
                    row.family, row.n, row.r, row.s, row.rule, row.issue_ms, row.verify_ms, cert
                )
            })
            .collect();
        println!(
            "{{\n  \"experiment\": \"certify\",\n  \"max_nodes\": {},\n  \
             \"certificates\": [\n{}\n  ]\n}}",
            dbac_graph::MAX_NODES,
            entries.join(",\n")
        );
    } else {
        println!(
            "E13 — robustness certification sweep (rule or UNCERTIFIED per family × (r, s))\n"
        );
        let mut t = Table::new(vec!["family", "n", "(r, s)", "rule", "issue (ms)", "verify (ms)"]);
        for row in &rows {
            t.row(vec![
                row.family.clone(),
                row.n.to_string(),
                format!("({}, {})", row.r, row.s),
                row.rule.clone(),
                format!("{:.3}", row.issue_ms),
                format!("{:.3}", row.verify_ms),
            ]);
        }
        println!("{}", t.render());
        let certified = rows.iter().filter(|row| row.cert_json.is_some()).count();
        println!("{certified}/{} combinations certified", rows.len());
    }
}
