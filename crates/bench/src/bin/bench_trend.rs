//! CI gate for the hot-path bench trend: compares a fresh `--json` report
//! from `benches/hot_path.rs` against the checked-in `BENCH_BASELINE.json`
//! and fails when any kernel regresses more than the allowed ratio.
//!
//! Because CI runners and the machine that recorded the baseline differ in
//! absolute speed, raw `current / baseline` ratios shift uniformly with
//! the hardware. The gate therefore normalizes by the **median** ratio
//! across all kernels: a kernel fails when its ratio exceeds
//! `max-ratio × median`, which is invariant under a uniformly faster or
//! slower machine while still catching a single kernel regressing.
//!
//! ```text
//! bench_trend --baseline BENCH_BASELINE.json --current bench.json [--max-ratio 2.0]
//! bench_trend --registry --baseline stats_base.json --current stats.json [--max-ratio 1.2]
//! ```
//!
//! With `--registry` both files carry the stats-registry snapshot schema
//! (`{"registry": {"<counter>": 123, ...}}` — the `dbacd --smoke --json`
//! artifact), and the gate flags message-ledger counters that grew beyond
//! the allowed ratio instead of nanosecond kernels.
//!
//! The report readers and the comparisons live in [`dbac_bench::trend`]
//! (shared with the sweep round-trip tests — the scenario sweeps' reduced
//! reports emit the same schema).
//!
//! Exit status: 0 when every baseline kernel is present and within bounds,
//! 1 otherwise.

use dbac_bench::trend::{compare, compare_registry, parse_registry_report, parse_report, Report};
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    max_ratio: f64,
    registry: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut max_ratio = None;
    let mut registry = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--registry" => registry = true,
            "--max-ratio" => {
                max_ratio = Some(value("--max-ratio")?.parse().map_err(|e| format!("{e}"))?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        // Counter ledgers are deterministic; timings are not.
        max_ratio: max_ratio.unwrap_or(if registry { 1.2 } else { 2.0 }),
        registry,
    })
}

fn registry_gate(args: &Args) -> Result<Vec<String>, String> {
    let read = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_registry_report(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = (read(&args.baseline)?, read(&args.current)?);
    println!(
        "registry gate: {} baseline counters vs {} current (limit {}x)",
        baseline.len(),
        current.len(),
        args.max_ratio
    );
    Ok(compare_registry(&baseline, &current, args.max_ratio))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_trend: {e}");
            eprintln!(
                "usage: bench_trend [--registry] --baseline <json> --current <json> \
                 [--max-ratio <factor>]"
            );
            return ExitCode::FAILURE;
        }
    };
    if args.registry {
        return match registry_gate(&args) {
            Ok(failures) if failures.is_empty() => {
                println!("registry trend OK");
                ExitCode::SUCCESS
            }
            Ok(failures) => {
                eprintln!("registry trend FAILED:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("bench_trend: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let read = |path: &str| -> Result<Report, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_report(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (read(&args.baseline), read(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_trend: {err}");
            }
            return ExitCode::FAILURE;
        }
    };
    let failures = compare(&baseline, &current, args.max_ratio);
    if failures.is_empty() {
        println!(
            "bench trend OK: {} kernels within {}x of the median trend",
            baseline.len(),
            args.max_ratio
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench trend FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}
