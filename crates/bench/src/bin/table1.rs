//! Experiment **E1 — Table 1**: the classical tight conditions for
//! *undirected* networks, re-verified through the reach-condition lens.
//!
//! For bidirectional digraphs with `n ≥ f+2` the equivalences are exact:
//!
//! * crash/sync (exact):      `κ(G) > f`             ⇔ 1-reach
//! * crash/async (approx):    `n > 2f ∧ κ(G) > f`    ⇔ 2-reach
//! * Byzantine (both):        `n > 3f ∧ κ(G) > 2f`   ⇔ 3-reach
//!
//! Run: `cargo run --release -p dbac-bench --bin table1`

use dbac_bench::catalog;
use dbac_bench::table::{yes_no, Table};
use dbac_conditions::kreach::{one_reach, three_reach, two_reach};
use dbac_graph::connectivity::vertex_connectivity;
use dbac_graph::{generators, Digraph};

fn main() {
    let mut graphs: Vec<(String, Digraph)> = vec![
        ("K4".into(), generators::clique(4)),
        ("K5".into(), generators::clique(5)),
        ("K7".into(), generators::clique(7)),
        ("cycle-6".into(), generators::bidirectional_cycle(6)),
        ("wheel-5 (Fig 1a)".into(), generators::figure_1a()),
        ("wheel-7".into(), generators::wheel(7)),
    ];
    for (i, g) in catalog::random_undirected(7, 0.55, 10, 2024).into_iter().enumerate() {
        graphs.push((format!("random-7-{i}"), g));
    }

    println!("E1 / Table 1 — undirected tight conditions vs the reach family\n");
    let mut mismatches = 0usize;
    for f in 1..=2usize {
        let mut t = Table::new(vec![
            "graph",
            "n",
            "kappa",
            "1-reach",
            "k>f",
            "2-reach",
            "n>2f&k>f",
            "3-reach",
            "n>3f&k>2f",
        ]);
        for (name, g) in &graphs {
            let n = g.node_count();
            if n < f + 2 {
                continue;
            }
            let kappa = vertex_connectivity(g);
            let r1 = one_reach(g, f).holds();
            let c1 = kappa > f;
            let r2 = two_reach(g, f).holds();
            let c2 = n > 2 * f && kappa > f;
            let r3 = three_reach(g, f).holds();
            let c3 = n > 3 * f && kappa > 2 * f;
            for (r, c) in [(r1, c1), (r2, c2), (r3, c3)] {
                if r != c {
                    mismatches += 1;
                }
            }
            t.row(vec![
                name.clone(),
                n.to_string(),
                kappa.to_string(),
                yes_no(r1),
                yes_no(c1),
                yes_no(r2),
                yes_no(c2),
                yes_no(r3),
                yes_no(c3),
            ]);
        }
        println!("f = {f}:\n{}", t.render());
    }
    if mismatches == 0 {
        println!("RESULT: all classical-vs-reach condition pairs agree (paper's Table 1 holds).");
    } else {
        println!("RESULT: {mismatches} mismatches — INVESTIGATE.");
        std::process::exit(1);
    }
}
