//! Experiment **E14 — net runtime smoke differential**.
//!
//! Drives the runtime axis of an [`ExperimentPlan`] across the event-queue
//! simulator and the socket-backed net runtime: BW on K4 and on the
//! directed two-clique bridge, three seeds each. The point is not a
//! performance number but a deployment invariant: every cell must converge
//! and stay valid, and the sim and net cells of the same (graph, seed)
//! batch must move *exactly* the same number of messages — the wire codec
//! and the framed transport are transparent to the protocol.
//!
//! Run: `cargo run --release -p dbac-bench --bin net`
//! (`-- --json <path>` additionally writes the *reduced* seed-aggregated
//! report as `bench_trend`-compatible JSON, uploaded as a CI artifact next
//! to `sweep.json` and `chaos.json`.)

use dbac_bench::table::Table;
use dbac_core::scenario::sweep::ExperimentPlan;
use dbac_core::scenario::{ByzantineWitness, Runtime};
use dbac_graph::generators;
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    println!("E14 — net runtime smoke differential: BW under sim vs net, three-seed batches\n");
    let sweep = ExperimentPlan::new()
        .protocol("BW", ByzantineWitness::default())
        .graph("K4", generators::clique(4))
        .graph("bridge3", generators::two_cliques_bridged(3, &[(0, 0), (1, 1)], &[(1, 1), (2, 2)]))
        .fault_bound(0)
        .runtime(Runtime::Sim)
        .runtime(Runtime::net(Duration::from_secs(120)))
        .seeds([1, 2, 3])
        .build()
        .expect("net smoke plan expands");
    let report = sweep.run();
    assert!(
        report.failures().is_empty(),
        "a loopback transport must never error: {:?}",
        report.failures().iter().map(|r| &r.label).collect::<Vec<_>>()
    );
    let reduced = report.reduce();
    println!("plan: {} cells in {} seed-batch groups\n", sweep.cell_count(), reduced.cells.len());

    let mut t = Table::new(vec!["graph", "runtime", "converged", "valid", "messages (mean)"]);
    let mut messages_by_graph: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for cell in &reduced.cells {
        let graph = cell.coord("graph").expect("graph axis").to_string();
        let runtime = cell.coord("runtime").expect("runtime axis").to_string();
        assert_eq!(cell.converged, cell.runs, "{}: every cell must converge", cell.group);
        assert_eq!(cell.valid, cell.runs, "{}: every cell must stay valid", cell.group);
        t.row(vec![
            graph.clone(),
            runtime.clone(),
            format!("{}/{}", cell.converged, cell.runs),
            format!("{}/{}", cell.valid, cell.runs),
            format!("{:.0}", cell.messages.mean),
        ]);
        messages_by_graph.entry(graph).or_default().insert(runtime, cell.messages.mean);
    }
    for (graph, by_runtime) in &messages_by_graph {
        let (sim, net) = (by_runtime["sim"], by_runtime["net"]);
        assert_eq!(
            sim, net,
            "{graph}: sim and net must move exactly the same messages (sim {sim}, net {net})"
        );
    }
    println!("{}", t.render());
    println!(
        "Every cell converged and stayed valid, and each graph moved the\n\
         same message count under the simulator and over real sockets —\n\
         the framed transport is protocol-transparent.\n"
    );

    if let Some(path) = json_path() {
        reduced.write_json(std::path::Path::new(&path)).expect("net JSON written");
        println!("reduced net report written to {path}");
    }
}

fn json_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(args.next().expect("--json requires a path"));
        }
    }
    None
}
