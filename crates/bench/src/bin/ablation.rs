//! Experiment **E11b — ablation**: what do *redundant* paths buy over
//! simple paths?
//!
//! The `SimpleOnly` mode floods values over simple paths only (and relaxes
//! fullness accordingly). With every node honest the protocol still
//! converges and is far cheaper; the redundant machinery exists for
//! *adversarial* executions, where Lemma 8's confirmations travel
//! composite paths `p_{q,z} ∥ p_{z,v}`.
//!
//! The whole ablation is one [`ExperimentPlan`]: the flood mode rides the
//! protocol axis as two labelled [`ByzantineWitness`] configurations,
//! crossed with the graph and adversary axes.
//!
//! Run: `cargo run --release -p dbac-bench --bin ablation`

use dbac_bench::table::{yes_no, Table};
use dbac_core::config::FloodMode;
use dbac_core::scenario::sweep::ExperimentPlan;
use dbac_core::scenario::{ByzantineWitness, FaultKind};
use dbac_graph::{generators, Digraph, NodeId};

fn last(g: &Digraph) -> NodeId {
    NodeId::new(g.node_count() - 1)
}

fn main() {
    println!("E11b — redundant-path ablation\n");
    const GRAPHS: [&str; 3] = ["K4", "K5", "two-K4 bridged"];
    const ADVERSARIES: [&str; 4] = ["none", "crash", "liar", "tamperer"];
    const MODES: [&str; 2] = ["Redundant", "SimpleOnly"];
    let report = ExperimentPlan::new()
        .protocol("Redundant", ByzantineWitness::default())
        .protocol("SimpleOnly", ByzantineWitness::default().with_flood_mode(FloodMode::SimpleOnly))
        .graph(GRAPHS[0], generators::clique(4))
        .graph(GRAPHS[1], generators::clique(5))
        .graph(GRAPHS[2], generators::figure_1b_small())
        .fault_bound(1)
        .placement(ADVERSARIES[0], |_, _| Vec::new())
        .placement(ADVERSARIES[1], |g, _| vec![(last(g), FaultKind::Crash)])
        .placement(ADVERSARIES[2], |g, _| vec![(last(g), FaultKind::ConstantLiar { value: 1e5 })])
        .placement(ADVERSARIES[3], |g, _| vec![(last(g), FaultKind::RelayTamperer { spoof: -1e5 })])
        .epsilon(1.0)
        .seed(15)
        .max_events(100_000_000)
        .build()
        .expect("E11b plan expands")
        .run();

    // Render graph-major (the paper's grouping); the plan expands with the
    // protocol axis outermost.
    let mut t =
        Table::new(vec!["graph", "adversary", "mode", "decided", "converged", "valid", "messages"]);
    for graph in GRAPHS {
        for adversary in ADVERSARIES {
            for mode in MODES {
                let row = report
                    .rows
                    .iter()
                    .find(|r| {
                        r.coord("graph") == Some(graph)
                            && r.coord("placement") == Some(adversary)
                            && r.coord("protocol") == Some(mode)
                    })
                    .expect("every grid cell present");
                let s = row.summary.as_ref().unwrap_or_else(|e| panic!("{}: {e}", row.label));
                t.row(vec![
                    graph.into(),
                    adversary.into(),
                    mode.into(),
                    yes_no(s.all_decided),
                    yes_no(s.converged),
                    yes_no(s.valid),
                    s.messages_sent.to_string(),
                ]);
                // The paper's mode must always succeed.
                if mode == "Redundant" {
                    assert!(s.converged && s.valid, "{graph}/{adversary}: redundant mode failed");
                }
            }
        }
    }
    println!("{}", t.render());
    println!(
        "RESULT: SimpleOnly is 10–100x cheaper and converged in every run measured here —\n\
         against these adversaries and schedules the simple-path flood happened to suffice.\n\
         The redundant-path discipline exists for the *worst case*: Lemma 7/8's liveness\n\
         proofs confirm values over composite paths p_qz ∥ p_zv that simple flooding cannot\n\
         carry, so SimpleOnly forfeits the guarantee even where it empirically succeeds.\n\
         The gap measured above is the price of that guarantee."
    );
}
