//! Experiment **E11b — ablation**: what do *redundant* paths buy over
//! simple paths?
//!
//! The `SimpleOnly` mode floods values over simple paths only (and relaxes
//! fullness accordingly). With every node honest the protocol still
//! converges and is far cheaper; the redundant machinery exists for
//! *adversarial* executions, where Lemma 8's confirmations travel
//! composite paths `p_{q,z} ∥ p_{z,v}`.
//!
//! Run: `cargo run --release -p dbac-bench --bin ablation`

use dbac_bench::table::{num, yes_no, Table};
use dbac_core::config::FloodMode;
use dbac_core::scenario::{ByzantineWitness, FaultKind, Outcome, Scenario};
use dbac_graph::{generators, Digraph, NodeId};

fn run_mode(g: &Digraph, f: usize, mode: FloodMode, byz: Option<(NodeId, FaultKind)>) -> Outcome {
    let n = g.node_count();
    let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut b = Scenario::builder(g.clone(), f)
        .inputs(inputs)
        .epsilon(1.0)
        .seed(15)
        .max_events(100_000_000)
        .protocol(ByzantineWitness::default().with_flood_mode(mode));
    if let Some((v, kind)) = byz {
        b = b.fault(v, kind);
    }
    b.run().unwrap()
}

fn main() {
    println!("E11b — redundant-path ablation\n");
    let mut t =
        Table::new(vec!["graph", "adversary", "mode", "decided", "converged", "valid", "messages"]);
    let cases: Vec<(String, Digraph, usize)> = vec![
        ("K4".into(), generators::clique(4), 1),
        ("K5".into(), generators::clique(5), 1),
        ("two-K4 bridged".into(), generators::figure_1b_small(), 1),
    ];
    for (name, g, f) in &cases {
        let byz_node = NodeId::new(g.node_count() - 1);
        let scenarios: Vec<(&str, Option<(NodeId, FaultKind)>)> = vec![
            ("none", None),
            ("crash", Some((byz_node, FaultKind::Crash))),
            ("liar", Some((byz_node, FaultKind::ConstantLiar { value: 1e5 }))),
            ("tamperer", Some((byz_node, FaultKind::RelayTamperer { spoof: -1e5 }))),
        ];
        for (adv, byz) in scenarios {
            for mode in [FloodMode::Redundant, FloodMode::SimpleOnly] {
                let out = run_mode(g, *f, mode, byz.clone());
                t.row(vec![
                    name.clone(),
                    adv.into(),
                    format!("{mode:?}"),
                    yes_no(out.all_decided()),
                    yes_no(out.converged()),
                    yes_no(out.valid()),
                    out.sim_stats.messages_sent.to_string(),
                ]);
                // The paper's mode must always succeed.
                if mode == FloodMode::Redundant {
                    assert!(out.converged() && out.valid(), "{name}/{adv}: redundant mode failed");
                }
                let _ = num(out.spread());
            }
        }
    }
    println!("{}", t.render());
    println!(
        "RESULT: SimpleOnly is 10–100x cheaper and converged in every run measured here —\n\
         against these adversaries and schedules the simple-path flood happened to suffice.\n\
         The redundant-path discipline exists for the *worst case*: Lemma 7/8's liveness\n\
         proofs confirm values over composite paths p_qz ∥ p_zv that simple flooding cannot\n\
         carry, so SimpleOnly forfeits the guarantee even where it empirically succeeds.\n\
         The gap measured above is the price of that guarantee."
    );
}
