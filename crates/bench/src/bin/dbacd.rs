//! `dbacd` — the live-stats operator daemon.
//!
//! Runs a scenario in a background thread while serving its
//! [`StatsRegistry`](dbac_core::scenario::StatsRegistry) over the
//! line-delimited JSON RPC of [`dbac_bench::daemon`] (`stats`, `nodes`,
//! `progress`, `shutdown` — one JSON line per command).
//!
//! Modes:
//!
//! * `--smoke [--json <path>]` (CI): runs the smoke scenario on all
//!   three runtimes, polling each daemon's RPC live until the run
//!   finishes, and verifies that the final registry snapshot equals
//!   `Outcome::sim_stats` bit-for-bit. With `--json`, writes the Sim
//!   arm's final snapshot in the registry-report schema (the input of
//!   `bench_trend --registry`).
//! * `--serve` (operators): starts the smoke scenario on the threaded
//!   runtime with jitter, prints the RPC address, and serves until a
//!   client sends `shutdown` (the run itself always completes).
//!
//! Run: `cargo run --release -p dbac-bench --bin dbacd -- --smoke`

use dbac_bench::daemon::{stats_json, Daemon};
use dbac_bench::trend::parse_registry_report;
use dbac_core::scenario::{ByzantineWitness, Runtime, Scenario};
use dbac_graph::generators;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn smoke_scenario(runtime: Runtime) -> Scenario {
    Scenario::builder(generators::clique(4), 0)
        .inputs(vec![0.0, 10.0, 4.0, 6.0])
        .epsilon(0.5)
        .seed(9)
        .runtime(runtime)
        .protocol(ByzantineWitness::default())
        .build()
        .expect("smoke scenario builds")
}

fn rpc(addr: SocketAddr, command: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to dbacd");
    stream.write_all(command.as_bytes()).expect("send command");
    stream.write_all(b"\n").expect("send newline");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read reply");
    line.trim_end().to_string()
}

fn smoke(json_path: Option<&str>) {
    let runtimes = [
        ("sim", Runtime::Sim),
        ("threaded", Runtime::Threaded { timeout: Duration::from_secs(120), jitter_micros: 50 }),
        ("net", Runtime::net(Duration::from_secs(120))),
    ];
    let mut sim_stats_json = None;
    for (label, runtime) in runtimes {
        let daemon = Daemon::spawn(smoke_scenario(runtime)).expect("daemon binds");
        let addr = daemon.addr();

        // Poll the RPC while the run executes: every reply must be a
        // well-formed JSON line with monotone counters.
        let mut polls = 0u64;
        let mut last_sent = 0u64;
        loop {
            let stats = rpc(addr, "stats");
            let report = parse_registry_report(&stats).expect("stats line parses");
            let sent = report.get("sent").copied().unwrap_or(0);
            assert!(sent >= last_sent, "{label}: sent regressed {last_sent} -> {sent}");
            last_sent = sent;
            polls += 1;
            let progress = rpc(addr, "progress");
            assert!(progress.contains("\"node_count\":4"), "{label}: {progress}");
            if daemon.finished() {
                break;
            }
        }

        let registry = std::sync::Arc::clone(daemon.registry());
        let out = daemon.join().expect("smoke scenario converges");
        assert!(out.converged() && out.valid(), "{label}: smoke run must converge");
        assert_eq!(
            registry.snapshot(),
            out.sim_stats,
            "{label}: final registry snapshot must equal Outcome::sim_stats bit-for-bit"
        );
        println!(
            "{label:<9} polls {polls:>4}  sent {:>6}  delivered {:>6}  rounds {:>3}",
            out.sim_stats.messages_sent(),
            out.sim_stats.messages_delivered(),
            out.sim_stats.protocol.rounds_fired,
        );
        if label == "sim" {
            sim_stats_json = Some(stats_json(&out.sim_stats));
        }
    }
    if let Some(path) = json_path {
        let payload = sim_stats_json.expect("sim arm ran");
        parse_registry_report(&payload).expect("artifact round-trips through the schema");
        std::fs::write(path, payload + "\n").expect("write stats artifact");
        println!("wrote registry snapshot to {path}");
    }
    println!("dbacd smoke: all three runtimes served live stats and settled to their outcomes");
}

fn serve() {
    let runtime = Runtime::Threaded { timeout: Duration::from_secs(600), jitter_micros: 500 };
    let daemon = Daemon::spawn(smoke_scenario(runtime)).expect("daemon binds");
    println!("dbacd listening on {}", daemon.addr());
    println!("commands: stats | nodes | progress | shutdown (one JSON line per command)");
    match daemon.join() {
        Ok(out) => println!(
            "run finished: converged={} sent={} delivered={}",
            out.converged(),
            out.sim_stats.messages_sent(),
            out.sim_stats.messages_delivered()
        ),
        Err(e) => eprintln!("run failed: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path = None;
    let mut mode = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => mode = Some("smoke"),
            "--serve" => mode = Some("serve"),
            "--json" => {
                json_path = Some(iter.next().expect("--json requires a path").to_string());
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: dbacd --smoke [--json <path>] | dbacd --serve");
                std::process::exit(2);
            }
        }
    }
    match mode {
        Some("serve") => serve(),
        _ => smoke(json_path.as_deref()),
    }
}
