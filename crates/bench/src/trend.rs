//! The `bench_trend` report schema: a minimal JSON reader and the
//! machine-speed-normalized gate comparison, shared by the `bench_trend`
//! CI binary and the sweep round-trip tests.
//!
//! The workspace's serde shim has no JSON support (see shims/README.md),
//! and the report format is fully under our control:
//!
//! ```text
//! { "kernels": { "<name>": { "mean_ns": 1.0, ... }, ... } }
//! ```
//!
//! [`parse_report`] handles exactly that shape — objects, string keys, and
//! number values, with arbitrary whitespace; anything else is a hard
//! error. Both the hot-path bench report and the scenario sweeps' raw and
//! reduced reports (`SweepReport::to_bench_json`,
//! `ReducedReport::to_bench_json` in `dbac_core::scenario::sweep`) emit
//! this schema, so every artifact rides the same gate.

use std::collections::BTreeMap;

/// Mean nanoseconds per kernel, keyed by benchmark name.
pub type Report = BTreeMap<String, f64>;

struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn new(text: &'a str) -> Self {
        Json { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("unsupported escape '\\{}'", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    /// Parses an object, calling `visit` per key (after which the cursor
    /// must stand past the key's value).
    fn object(
        &mut self,
        visit: &mut dyn FnMut(&mut Json<'a>, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            visit(self, &key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Extracts `name → mean_ns` from a bench report.
///
/// # Errors
///
/// Any deviation from the report schema (unknown top-level keys,
/// non-numeric fields, a kernel without `mean_ns`, malformed JSON).
pub fn parse_report(text: &str) -> Result<Report, String> {
    let mut report = Report::new();
    let mut json = Json::new(text);
    json.object(&mut |j, key| {
        if key != "kernels" {
            return Err(format!("unexpected top-level key '{key}'"));
        }
        j.object(&mut |j, kernel| {
            let mut mean = None;
            j.object(&mut |j, field| {
                let value = j.number()?;
                if field == "mean_ns" {
                    mean = Some(value);
                }
                Ok(())
            })?;
            let mean = mean.ok_or_else(|| format!("kernel '{kernel}' lacks mean_ns"))?;
            report.insert(kernel.to_string(), mean);
            Ok(())
        })
    })?;
    Ok(report)
}

/// Counter totals from a stats-registry snapshot, keyed by counter name
/// (the keys of `StatsSnapshot::to_kv`).
pub type RegistryReport = BTreeMap<String, u64>;

/// Extracts `counter → total` from a registry-snapshot report:
///
/// ```text
/// { "registry": { "<counter>": 123, ... } }
/// ```
///
/// This is the `stats` RPC payload of the `dbacd` daemon and the
/// `stats.json` CI artifact; parsing it here lets `bench_trend` gate on
/// counter regressions next to the nanosecond kernels.
///
/// # Errors
///
/// Any deviation from the schema (unknown top-level keys, negative or
/// fractional counters, malformed JSON).
pub fn parse_registry_report(text: &str) -> Result<RegistryReport, String> {
    let mut report = RegistryReport::new();
    let mut json = Json::new(text);
    json.object(&mut |j, key| {
        if key != "registry" {
            return Err(format!("unexpected top-level key '{key}'"));
        }
        j.object(&mut |j, counter| {
            let value = j.number()?;
            if value < 0.0 || value.fract() != 0.0 || value > u64::MAX as f64 {
                return Err(format!("counter '{counter}' is not a u64: {value}"));
            }
            report.insert(counter.to_string(), value as u64);
            Ok(())
        })
    })?;
    Ok(report)
}

/// The registry-counter gate: message-ledger counters may not *grow*
/// beyond `max_ratio` times the baseline (more traffic for the same
/// scenario is the regression; less is an improvement), and no baseline
/// counter may disappear. Timing-valued counters (`wall_nanos`) and
/// in-flight gauges are skipped — they vary run to run by construction.
/// Returns the list of failures (empty = gate passes).
#[must_use]
pub fn compare_registry(
    baseline: &RegistryReport,
    current: &RegistryReport,
    max_ratio: f64,
) -> Vec<String> {
    const UNGATED: &[&str] = &["wall_nanos", "undelivered", "max_queue_depth", "virtual_time"];
    let mut failures = Vec::new();
    for (name, &base) in baseline {
        if UNGATED.contains(&name.as_str()) {
            continue;
        }
        let Some(&cur) = current.get(name) else {
            failures.push(format!("{name}: present in baseline but missing from current run"));
            continue;
        };
        if base == 0 {
            continue; // a zero baseline cannot anchor a ratio
        }
        let ratio = cur as f64 / base as f64;
        if ratio > max_ratio {
            failures.push(format!("{name}: {base} → {cur} ({ratio:.2}x, limit {max_ratio}x)"));
        }
    }
    failures
}

/// The median of a sample (mean of the middle pair for even sizes).
///
/// # Panics
///
/// Panics on an empty sample.
#[must_use]
pub fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// The gate comparison proper, separated from I/O for testability.
/// Normalizes by the median `current / baseline` ratio across kernels (so
/// a uniformly faster or slower machine does not trip the gate) and
/// returns the list of failures (empty = gate passes).
#[must_use]
pub fn compare(baseline: &Report, current: &Report, max_ratio: f64) -> Vec<String> {
    let mut failures = Vec::new();
    let ratios: Vec<(String, f64)> = baseline
        .iter()
        .filter_map(|(name, &base)| current.get(name).map(|&cur| (name.clone(), cur / base)))
        .collect();
    if ratios.is_empty() {
        return vec!["no kernels in common between baseline and current".into()];
    }
    let med = median(ratios.iter().map(|&(_, r)| r).collect()).max(f64::MIN_POSITIVE);
    println!("median current/baseline ratio: {med:.3} (machine-speed normalizer)");
    println!("{:<55} {:>12} {:>12} {:>8} {:>8}", "kernel", "baseline", "current", "ratio", "norm");
    for (name, ratio) in &ratios {
        let norm = ratio / med;
        let verdict = if norm > max_ratio { "REGRESSED" } else { "ok" };
        println!(
            "{:<55} {:>10.1}ns {:>10.1}ns {:>8.3} {:>8.3}  {}",
            name, baseline[name], current[name], ratio, norm, verdict
        );
        if norm > max_ratio {
            failures.push(format!(
                "{name}: {:.1}ns → {:.1}ns ({norm:.2}x the median trend, limit {max_ratio}x)",
                baseline[name], current[name]
            ));
        }
    }
    for name in baseline.keys() {
        if !current.contains_key(name) {
            failures.push(format!("{name}: present in baseline but missing from current run"));
        }
    }
    for name in current.keys() {
        if !baseline.contains_key(name) {
            println!("note: new kernel '{name}' has no baseline yet (not gated)");
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "kernels": {
        "mc_scan/fig1b_small/batched": { "mean_ns": 100.0, "min_ns": 90.0, "max_ns": 120.0 },
        "fra_scan/fig1b_small/batched": { "mean_ns": 50.5, "min_ns": 48.0, "max_ns": 52.0 }
      }
    }"#;

    #[test]
    fn parses_the_report_schema() {
        let report = parse_report(SAMPLE).unwrap();
        assert_eq!(report.len(), 2);
        assert_eq!(report["mc_scan/fig1b_small/batched"], 100.0);
        assert_eq!(report["fra_scan/fig1b_small/batched"], 50.5);
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(parse_report("{").is_err());
        assert!(parse_report(r#"{"kernels": {"a": {"mean": 1}}}"#).is_err());
        assert!(parse_report(r#"{"other": {}}"#).is_err());
        assert!(parse_report(r#"{"kernels": {}}"#).unwrap().is_empty());
    }

    fn report(entries: &[(&str, f64)]) -> Report {
        entries.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn uniform_machine_speed_shift_passes() {
        let base = report(&[("a", 100.0), ("b", 200.0), ("c", 300.0)]);
        // A 3x slower machine across the board: no regression.
        let cur = report(&[("a", 300.0), ("b", 600.0), ("c", 900.0)]);
        assert!(compare(&base, &cur, 2.0).is_empty());
    }

    #[test]
    fn single_kernel_regression_fails() {
        let base = report(&[("a", 100.0), ("b", 200.0), ("c", 300.0)]);
        // Same machine, but kernel c regressed 5x.
        let cur = report(&[("a", 100.0), ("b", 200.0), ("c", 1500.0)]);
        let failures = compare(&base, &cur, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("c:"));
    }

    #[test]
    fn missing_kernel_fails_and_new_kernel_does_not() {
        let base = report(&[("a", 100.0), ("b", 200.0)]);
        let cur = report(&[("a", 100.0), ("new", 1.0)]);
        let failures = compare(&base, &cur, 2.0);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn median_of_even_and_odd_sets() {
        assert_eq!(median(vec![1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(vec![1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn parses_the_registry_schema() {
        let report = parse_registry_report(
            r#"{ "registry": { "sent": 120, "delivered": 118, "rounds_fired": 12 } }"#,
        )
        .unwrap();
        assert_eq!(report.len(), 3);
        assert_eq!(report["sent"], 120);
        assert_eq!(report["rounds_fired"], 12);
    }

    #[test]
    fn rejects_malformed_registry_reports() {
        assert!(parse_registry_report(r#"{"kernels": {}}"#).is_err());
        assert!(parse_registry_report(r#"{"registry": {"sent": -1}}"#).is_err());
        assert!(parse_registry_report(r#"{"registry": {"sent": 1.5}}"#).is_err());
        assert!(parse_registry_report(r#"{"registry": {}}"#).unwrap().is_empty());
    }

    fn registry(entries: &[(&str, u64)]) -> RegistryReport {
        entries.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn registry_gate_flags_growth_and_missing_counters() {
        let base = registry(&[("sent", 100), ("delivered", 98), ("wall_nanos", 5)]);
        let ok = registry(&[("sent", 110), ("delivered", 98), ("wall_nanos", 900)]);
        assert!(compare_registry(&base, &ok, 1.5).is_empty(), "10% growth under a 1.5x limit");

        let grown = registry(&[("sent", 300), ("delivered", 98), ("wall_nanos", 5)]);
        let failures = compare_registry(&base, &grown, 1.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].starts_with("sent:"));

        let missing = registry(&[("sent", 100)]);
        let failures = compare_registry(&base, &missing, 1.5);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing"));
    }

    #[test]
    fn registry_gate_ignores_timing_counters_and_zero_baselines() {
        let base = registry(&[("dropped", 0), ("wall_nanos", 10), ("undelivered", 1)]);
        let cur = registry(&[("dropped", 50), ("wall_nanos", 10_000), ("undelivered", 40)]);
        assert!(compare_registry(&base, &cur, 1.1).is_empty());
    }
}
