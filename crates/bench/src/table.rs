//! Plain-text table rendering for the experiment binaries.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for i in 0..cols {
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: String =
            format!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a boolean as a check-style cell.
#[must_use]
pub fn yes_no(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}

/// Formats a float compactly.
#[must_use]
pub fn num(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "22222"]);
        let s = t.render();
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 22222 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(yes_no(true), "yes");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.12345), "0.1235");
        assert!(num(123456.0).contains('e'));
    }
}
