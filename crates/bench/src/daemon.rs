//! The `dbacd` operator daemon: run a [`Scenario`] in a background
//! thread and serve its live [`StatsRegistry`] over a tiny
//! line-delimited JSON-over-TCP RPC.
//!
//! Protocol: the client sends one command per line — `stats`, `nodes`,
//! `progress` or `shutdown` — and receives exactly one JSON line back.
//! Responses:
//!
//! ```text
//! stats    → {"registry":{"sent":123,"delivered":120,...}}
//! nodes    → {"nodes":[{"node":0,"enqueued":9,"consumed":9,"queue_depth":0,"done":true},...]}
//! progress → {"running":true,"node_count":4,"nodes_done":1,"rounds_fired":12,"sent":123,"delivered":119}
//! shutdown → {"ok":true}          (stops the RPC listener, not the run)
//! ```
//!
//! The `stats` payload is exactly the registry-snapshot schema that
//! [`crate::trend::parse_registry_report`] reads and the bench-trend
//! gate compares, so a `stats.json` captured from a live daemon can be
//! diffed against a stored baseline with no translation step.
//!
//! The daemon never interrupts the scenario: `shutdown` (or
//! [`Daemon::join`]) tears down the listener while the run proceeds to
//! its natural outcome, whose `sim_stats` is bit-for-bit the final
//! registry snapshot.

use dbac_core::error::RunError;
use dbac_core::scenario::{Outcome, Scenario, StatsRegistry, StatsSnapshot};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running scenario plus the RPC listener observing it.
pub struct Daemon {
    registry: Arc<StatsRegistry>,
    addr: SocketAddr,
    runner: JoinHandle<Result<Outcome, RunError>>,
    server: JoinHandle<()>,
    stop: Arc<AtomicBool>,
    finished: Arc<AtomicBool>,
}

impl Daemon {
    /// Starts `scenario` in a background thread with a fresh attached
    /// registry (any registry already attached to the scenario is
    /// honored instead) and binds the RPC listener on a loopback
    /// ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates listener bind failures; scenario validation errors
    /// surface later, from [`Daemon::join`].
    pub fn spawn(scenario: Scenario) -> std::io::Result<Daemon> {
        let registry = scenario.resolve_stats();
        let scenario = scenario.with_stats(Arc::clone(&registry));
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicBool::new(false));

        let run_finished = Arc::clone(&finished);
        let runner = std::thread::spawn(move || {
            let out = scenario.run();
            run_finished.store(true, Ordering::Release);
            out
        });

        let srv_registry = Arc::clone(&registry);
        let srv_stop = Arc::clone(&stop);
        let srv_finished = Arc::clone(&finished);
        let server = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if srv_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { break };
                // One client at a time: the RPC is a few bytes per line
                // and every handler is non-blocking on the run itself.
                serve_client(stream, &srv_registry, &srv_stop, &srv_finished);
                if srv_stop.load(Ordering::Acquire) {
                    break;
                }
            }
        });

        Ok(Daemon { registry, addr, runner, server, stop, finished })
    }

    /// The listener's address (loopback, ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the running scenario writes into — the same totals
    /// the RPC serves, for in-process observers.
    #[must_use]
    pub fn registry(&self) -> &Arc<StatsRegistry> {
        &self.registry
    }

    /// Whether the scenario thread has produced its outcome.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// Waits for the scenario to finish, tears down the RPC listener,
    /// and returns the outcome.
    ///
    /// # Errors
    ///
    /// The scenario's own [`RunError`], if it failed.
    ///
    /// # Panics
    ///
    /// Panics if either background thread itself panicked.
    pub fn join(self) -> Result<Outcome, RunError> {
        let outcome = self.runner.join().expect("scenario thread panicked");
        self.stop.store(true, Ordering::Release);
        // Poke the accept loop so it observes the stop flag even with no
        // client connected; the listener may already be gone if a client
        // sent `shutdown`.
        if let Ok(mut poke) = TcpStream::connect(self.addr) {
            let _ = poke.write_all(b"shutdown\n");
        }
        self.server.join().expect("rpc thread panicked");
        outcome
    }
}

fn serve_client(
    stream: TcpStream,
    registry: &StatsRegistry,
    stop: &AtomicBool,
    finished: &AtomicBool,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut writer = write_half;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let reply = match line.trim() {
            "" => continue,
            "stats" => stats_json(&registry.snapshot()),
            "nodes" => nodes_json(&registry.snapshot()),
            "progress" => progress_json(registry, finished.load(Ordering::Acquire)),
            "shutdown" => {
                stop.store(true, Ordering::Release);
                let _ = writer.write_all(b"{\"ok\":true}\n");
                return;
            }
            other => format!("{{\"error\":\"unknown command '{}'\"}}", escape(other)),
        };
        if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
            return;
        }
    }
}

fn escape(raw: &str) -> String {
    raw.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// The `stats` RPC payload — also the `stats.json` artifact schema and
/// the input to [`crate::trend::parse_registry_report`].
#[must_use]
pub fn stats_json(snapshot: &StatsSnapshot) -> String {
    let body = snapshot
        .to_kv()
        .into_iter()
        .map(|(k, v)| format!("\"{}\":{v}", escape(&k)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"registry\":{{{body}}}}}")
}

fn nodes_json(snapshot: &StatsSnapshot) -> String {
    match snapshot.nodes.measured() {
        None => "{\"nodes\":null}".to_string(),
        Some(nodes) => {
            let rows = nodes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    format!(
                        "{{\"node\":{i},\"enqueued\":{},\"consumed\":{},\
                         \"queue_depth\":{},\"done\":{}}}",
                        n.enqueued,
                        n.consumed,
                        n.queue_depth(),
                        n.done
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!("{{\"nodes\":[{rows}]}}")
        }
    }
}

fn progress_json(registry: &StatsRegistry, finished: bool) -> String {
    let snap = registry.snapshot();
    let nodes_done =
        snap.nodes.measured().map_or(0, |nodes| nodes.iter().filter(|n| n.done).count());
    format!(
        "{{\"running\":{},\"node_count\":{},\"nodes_done\":{nodes_done},\
         \"rounds_fired\":{},\"sent\":{},\"delivered\":{}}}",
        !finished,
        registry.node_count(),
        snap.protocol.rounds_fired,
        snap.messages_sent(),
        snap.messages_delivered(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trend::parse_registry_report;
    use dbac_core::scenario::ByzantineWitness;
    use dbac_graph::generators;

    fn smoke_scenario() -> Scenario {
        Scenario::builder(generators::clique(4), 0)
            .inputs(vec![0.0, 10.0, 4.0, 6.0])
            .epsilon(0.5)
            .seed(9)
            .protocol(ByzantineWitness::default())
            .build()
            .expect("smoke scenario builds")
    }

    fn rpc(addr: SocketAddr, command: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to daemon");
        stream.write_all(command.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line).expect("one reply line");
        line.trim_end().to_string()
    }

    #[test]
    fn daemon_serves_stats_and_progress_then_joins() {
        let daemon = Daemon::spawn(smoke_scenario()).expect("daemon binds");
        let addr = daemon.addr();

        let stats = rpc(addr, "stats");
        let report = parse_registry_report(&stats).expect("stats line is valid registry JSON");
        // The run may or may not have finished by now; either way the
        // totals are well-formed and the schema round-trips.
        assert!(report.contains_key("rounds_fired"), "schema carries protocol counters");

        let progress = rpc(addr, "progress");
        assert!(progress.starts_with("{\"running\":"), "progress replies: {progress}");
        assert!(progress.contains("\"node_count\":4"));

        let nodes = rpc(addr, "nodes");
        assert!(nodes.starts_with("{\"nodes\":"), "nodes replies: {nodes}");

        assert!(rpc(addr, "bogus").contains("unknown command"));

        let registry = Arc::clone(daemon.registry());
        let out = daemon.join().expect("smoke scenario converges");
        assert!(out.converged() && out.valid());
        assert_eq!(registry.snapshot(), out.sim_stats, "registry is the outcome's ground truth");

        // The final stats payload parses into exactly the outcome's kv.
        let final_report =
            parse_registry_report(&stats_json(&out.sim_stats)).expect("final schema");
        let expected: Vec<(String, u64)> = out.sim_stats.to_kv();
        assert_eq!(final_report.len(), expected.len());
        for (k, v) in expected {
            assert_eq!(final_report.get(&k), Some(&v), "counter {k}");
        }
    }

    #[test]
    fn client_shutdown_stops_the_listener_but_not_the_run() {
        let daemon = Daemon::spawn(smoke_scenario()).expect("daemon binds");
        let addr = daemon.addr();
        assert_eq!(rpc(addr, "shutdown"), "{\"ok\":true}");
        let out = daemon.join().expect("run still completes");
        assert!(out.converged());
    }
}
