//! # dbac-bench
//!
//! Experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index E1–E11), plus shared
//! utilities: text tables, graph catalogs, and the Appendix-B
//! indistinguishability splice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod impossibility;
pub mod table;
pub mod trend;
