//! # dbac-bench
//!
//! Experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index E1–E11), plus shared
//! utilities: text tables, graph catalogs, the Appendix-B
//! indistinguishability splice, and the [`daemon`] module backing the
//! `dbacd` live-stats operator binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod daemon;
pub mod impossibility;
pub mod table;
pub mod trend;
