//! Executable Appendix B: the three-execution indistinguishability
//! construction proving 3-reach **necessary** (Theorem 18).
//!
//! On a graph violating 3-reach (witness `u, v, F, F_u, F_v`), take any
//! correct-looking algorithm that terminates — here the crash-tolerant
//! 2-reach protocol, a *bona fide* asynchronous approximate-consensus
//! algorithm against crash faults — and splice:
//!
//! * `e1`: all inputs 0, `F_v` crashed → validity forces `v` to output 0;
//! * `e2`: all inputs `K`, `F_u` crashed → `u` outputs `K`;
//! * `e3`: inputs 0 on `reach_v(F∪F_v)`, `K` on `reach_u(F∪F_u)`; the
//!   common set `F` is Byzantine and *replays* its `e1` messages toward
//!   `v`'s side and its `e2` messages toward `u`'s side; the edges
//!   `E(F_v, reach_v)` and `E(F_u, reach_u)` are delayed past every
//!   decision (the paper's bound `T`).
//!
//! Because `reach_v(F∪F_v)` receives messages only from itself, `F`
//! (replayed) and `F_v` (delayed), node `v`'s view in `e3` is *literally
//! identical* to `e1` — the splice executor checks this delivery-by-
//! delivery against the live nodes' actual sends — so `v` outputs 0 while
//! `u` outputs `K`: convergence is violated by the full input range.

use dbac_conditions::kreach::{three_reach, ConditionOutcome, ReachViolation};
use dbac_conditions::reach::reach_set;
use dbac_core::crash::{CrashMsg, CrashNode, CrashTopology};
use dbac_graph::{Digraph, NodeId, NodeSet, PathBudget};
use dbac_sim::process::{Context, Process, Silent};
use dbac_sim::scheduler::FixedDelay;
use dbac_sim::sim::Simulation;
use dbac_sim::trace::Trace;
use std::collections::HashMap;
use std::sync::Arc;

/// The result of the spliced execution `e3`.
#[derive(Clone, Debug)]
pub struct SpliceReport {
    /// The witnessing violation of 3-reach.
    pub violation: ReachViolation,
    /// `reach_v(F ∪ F_v)` — the side that replays `e1`.
    pub side_v: NodeSet,
    /// `reach_u(F ∪ F_u)` — the side that replays `e2`.
    pub side_u: NodeSet,
    /// `v`'s output in `e1` (0 by validity) and in `e3` (identical).
    pub v_output: f64,
    /// `u`'s output in `e2` (`K` by validity) and in `e3` (identical).
    pub u_output: f64,
    /// Script deliveries verified against the live nodes' actual sends.
    pub live_matches: usize,
    /// Script deliveries synthesized by the two-faced `F` replay.
    pub synthesized: usize,
    /// The agreement parameter the splice violates.
    pub epsilon: f64,
}

impl SpliceReport {
    /// The headline: honest outputs `|v − u|` apart, exceeding ε.
    #[must_use]
    pub fn disagreement(&self) -> f64 {
        (self.v_output - self.u_output).abs()
    }

    /// Returns `true` if convergence was indeed violated.
    #[must_use]
    pub fn convergence_violated(&self) -> bool {
        self.disagreement() >= self.epsilon
    }
}

/// Runs the full three-execution construction on `graph` (which must
/// violate 3-reach for `f`), with input gap `k > epsilon`.
///
/// # Errors
///
/// Returns a description if the graph actually satisfies 3-reach, if a
/// reference execution fails to decide, or if the splice turns out
/// inconsistent (a live node's send did not match the recorded trace —
/// which would falsify the indistinguishability argument).
pub fn run_construction(
    graph: &Digraph,
    f: usize,
    k: f64,
    epsilon: f64,
) -> Result<SpliceReport, String> {
    let ConditionOutcome::Violated(violation) = three_reach(graph, f) else {
        return Err("graph satisfies 3-reach; the construction needs a violation".into());
    };
    let fv = violation.removed_v - violation.common;
    let fu = violation.removed_u - violation.common;
    let side_v = reach_set(graph, violation.v, violation.removed_v);
    let side_u = reach_set(graph, violation.u, violation.removed_u);
    debug_assert!(side_v.is_disjoint(side_u), "violation implies disjoint reach sets");

    let range = (0.0, k);
    // e1: all inputs 0, F_v crashed.
    let (trace1, out1) = reference_execution(graph, f, fv, 0.0, epsilon, range)?;
    let v_ref = out1
        .get(&violation.v)
        .copied()
        .ok_or_else(|| format!("{} did not decide in e1", violation.v))?;
    // e2: all inputs k, F_u crashed.
    let (trace2, out2) = reference_execution(graph, f, fu, k, epsilon, range)?;
    let u_ref = out2
        .get(&violation.u)
        .copied()
        .ok_or_else(|| format!("{} did not decide in e2", violation.u))?;

    // e3: splice the two restricted traces over live nodes.
    let topo = Arc::new(
        CrashTopology::new(graph.clone(), f, PathBudget::default()).map_err(|e| e.to_string())?,
    );
    let mut live: HashMap<NodeId, CrashNode> = HashMap::new();
    for w in side_v.iter() {
        live.insert(w, CrashNode::new(Arc::clone(&topo), w, 0.0, epsilon, range));
    }
    for w in side_u.iter() {
        live.insert(w, CrashNode::new(Arc::clone(&topo), w, k, epsilon, range));
    }

    // Pending send pool: every message a live node has emitted but the
    // script has not yet consumed.
    let mut pending: Vec<(NodeId, NodeId, CrashMsg)> = Vec::new();
    let drain = |node: NodeId,
                 ctx: &mut Context<CrashMsg>,
                 pending: &mut Vec<(NodeId, NodeId, CrashMsg)>| {
        for (to, msg) in ctx.take_outbox() {
            pending.push((node, to, msg));
        }
    };
    let mut order: Vec<NodeId> = live.keys().copied().collect();
    order.sort_unstable();
    for w in order {
        let mut ctx = Context::new(w, graph.out_neighbors(w));
        live.get_mut(&w).expect("live").on_start(&mut ctx);
        drain(w, &mut ctx, &mut pending);
    }

    let mut live_matches = 0usize;
    let mut synthesized = 0usize;
    let script = trace1
        .events()
        .iter()
        .filter(|e| side_v.contains(e.to))
        .chain(trace2.events().iter().filter(|e| side_u.contains(e.to)));
    for event in script {
        if live.contains_key(&event.from) {
            // A within-side message: the live node must actually have sent
            // it — this is the indistinguishability check.
            let pos = pending
                .iter()
                .position(|(f_, t, m)| *f_ == event.from && *t == event.to && *m == event.msg)
                .ok_or_else(|| {
                    format!(
                        "splice inconsistency: {}→{} {:?} was never sent live",
                        event.from, event.to, event.msg
                    )
                })?;
            pending.swap_remove(pos);
            live_matches += 1;
        } else {
            // A message from the two-faced F (or a not-yet-crashed F_v/F_u
            // node): synthesized from the recorded execution.
            synthesized += 1;
        }
        let mut ctx = Context::new(event.to, graph.out_neighbors(event.to));
        live.get_mut(&event.to).expect("receiver is live").on_message(
            &mut ctx,
            event.from,
            event.msg.clone(),
        );
        let to = event.to;
        drain(to, &mut ctx, &mut pending);
    }

    let v_out = live[&violation.v]
        .output()
        .ok_or_else(|| format!("{} did not decide in e3", violation.v))?;
    let u_out = live[&violation.u]
        .output()
        .ok_or_else(|| format!("{} did not decide in e3", violation.u))?;
    if (v_out - v_ref).abs() > 1e-12 || (u_out - u_ref).abs() > 1e-12 {
        return Err("e3 outputs differ from the reference executions".into());
    }
    Ok(SpliceReport {
        violation,
        side_v,
        side_u,
        v_output: v_out,
        u_output: u_out,
        live_matches,
        synthesized,
        epsilon,
    })
}

/// Runs one reference execution (`e1`/`e2`): `silenced` crashed from the
/// start, every node's input `input`; returns the trace and the honest
/// outputs.
fn reference_execution(
    graph: &Digraph,
    f: usize,
    silenced: NodeSet,
    input: f64,
    epsilon: f64,
    range: (f64, f64),
) -> Result<(Trace<CrashMsg>, HashMap<NodeId, f64>), String> {
    let topo = Arc::new(
        CrashTopology::new(graph.clone(), f, PathBudget::default()).map_err(|e| e.to_string())?,
    );
    let mut sim: Simulation<CrashNode> =
        Simulation::new(Arc::new(graph.clone()), Box::new(FixedDelay::new(1)));
    sim.record_trace();
    for w in graph.nodes() {
        if silenced.contains(w) {
            sim.set_byzantine(w, Box::new(Silent));
        } else {
            sim.set_honest(w, CrashNode::new(Arc::clone(&topo), w, input, epsilon, range));
        }
    }
    sim.run().map_err(|e| e.to_string())?;
    let mut outputs = HashMap::new();
    for w in graph.nodes() {
        if let Some(node) = sim.honest(w) {
            if let Some(out) = node.output() {
                outputs.insert(w, out);
            }
        }
    }
    let trace = sim.trace().expect("recording enabled").clone();
    Ok((trace, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbac_conditions::kreach::two_reach;
    use dbac_graph::generators;

    #[test]
    fn k3_f1_splits_by_full_range() {
        // K3 satisfies 2-reach (the crash protocol terminates) but not
        // 3-reach for f = 1 — the minimal stage for Theorem 18.
        let g = generators::clique(3);
        assert!(two_reach(&g, 1).holds());
        let report = run_construction(&g, 1, 10.0, 1.0).expect("construction runs");
        assert!(report.convergence_violated());
        assert_eq!(report.disagreement(), 10.0, "split by the full range");
        assert!(report.side_v.is_disjoint(report.side_u));
        assert!(report.synthesized > 0, "the two-faced F must have acted");
    }

    #[test]
    fn rejects_three_reach_graphs() {
        let g = generators::clique(4);
        assert!(run_construction(&g, 1, 10.0, 1.0).is_err());
    }

    #[test]
    fn works_on_a_directed_violation() {
        // K5 plus a pendant receiver: reach sets can be separated… use a
        // 2-reach-but-not-3-reach directed graph: two K3s with single
        // bridges each way.
        let g = generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]);
        if two_reach(&g, 1).holds() && !three_reach(&g, 1).holds() {
            let report = run_construction(&g, 1, 8.0, 0.5).expect("construction runs");
            assert!(report.convergence_violated());
        } else {
            // The instance does not separate the conditions; K3 already
            // covers the theorem, so just assert the checker ran.
            assert!(three_reach(&g, 1).holds() || !two_reach(&g, 1).holds());
        }
    }
}
