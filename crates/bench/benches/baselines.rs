//! Criterion benches for the baselines (E9/E10): AAD04 end-to-end and the
//! iterative W-MSR round, for comparison against BW's kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_baselines::iterative::wmsr_step;
use dbac_baselines::{Aad04, IterativeTrimmedMean};
use dbac_conditions::robustness::is_r_s_robust;
use dbac_core::scenario::{FaultKind, Scenario, SchedulerSpec};
use dbac_graph::{generators, NodeId};

fn bench_aad(c: &mut Criterion) {
    let mut group = c.benchmark_group("aad04");
    group.sample_size(10);
    for n in [4usize, 7] {
        let f = (n - 1) / 3;
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("with_crash", n), &n, |b, &n| {
            b.iter(|| {
                let out = Scenario::builder(generators::clique(n), f)
                    .inputs(inputs.clone())
                    .epsilon(0.5)
                    .fault(NodeId::new(n - 1), FaultKind::Crash)
                    .scheduler(SchedulerSpec::legacy_random(3))
                    .protocol(Aad04)
                    .run()
                    .unwrap();
                black_box(out.honest_messages)
            });
        });
    }
    group.finish();
}

fn bench_iterative(c: &mut Criterion) {
    c.bench_function("wmsr_step_16", |b| {
        let received: Vec<f64> = (0..16).map(|i| i as f64).collect();
        b.iter(|| black_box(wmsr_step(8.0, received.clone(), 2)));
    });
    let g = generators::clique(6);
    let inputs: Vec<f64> = (0..6).map(|i| i as f64).collect();
    c.bench_function("iterative_50_rounds_k6", |b| {
        b.iter(|| {
            let out = Scenario::builder(g.clone(), 1)
                .inputs(inputs.clone())
                .epsilon(0.5)
                .protocol(IterativeTrimmedMean::with_rounds(50))
                .run()
                .unwrap();
            black_box(out.spread())
        });
    });
    c.bench_function("robustness_check_k6", |b| {
        b.iter(|| black_box(is_r_s_robust(&g, 2, 2)));
    });
}

criterion_group!(benches, bench_aad, bench_iterative);
criterion_main!(benches);
