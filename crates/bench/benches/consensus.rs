//! Criterion benches for full end-to-end BW consensus runs (E11): the
//! headline cost of one complete protocol execution.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_core::scenario::{ByzantineWitness, FaultKind, Scenario};
use dbac_graph::{generators, NodeId};

fn bench_bw_cliques(c: &mut Criterion) {
    let mut group = c.benchmark_group("bw_end_to_end");
    group.sample_size(10);
    for n in [4usize, 5] {
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        group.bench_with_input(BenchmarkId::new("clique_all_honest", n), &n, |b, &n| {
            b.iter(|| {
                let out = Scenario::builder(generators::clique(n), 1)
                    .inputs(inputs.clone())
                    .epsilon(1.0)
                    .seed(5)
                    .protocol(ByzantineWitness::default())
                    .run()
                    .unwrap();
                black_box(out.spread())
            });
        });
        group.bench_with_input(BenchmarkId::new("clique_with_liar", n), &n, |b, &n| {
            b.iter(|| {
                let out = Scenario::builder(generators::clique(n), 1)
                    .inputs(inputs.clone())
                    .epsilon(1.0)
                    .fault(NodeId::new(n - 1), FaultKind::ConstantLiar { value: 1e5 })
                    .seed(5)
                    .protocol(ByzantineWitness::default())
                    .run()
                    .unwrap();
                black_box(out.spread())
            });
        });
    }
    group.finish();
}

fn bench_bw_directed(c: &mut Criterion) {
    let mut group = c.benchmark_group("bw_directed");
    group.sample_size(10);
    let g = generators::figure_1b_small();
    let inputs: Vec<f64> = (0..8).map(|i| i as f64).collect();
    group.bench_function("fig1b_small_with_crash", |b| {
        b.iter(|| {
            let out = Scenario::builder(g.clone(), 1)
                .inputs(inputs.clone())
                .epsilon(1.0)
                .fault(NodeId::new(7), FaultKind::Crash)
                .seed(2)
                .protocol(ByzantineWitness::default())
                .run()
                .unwrap();
            black_box(out.spread())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bw_cliques, bench_bw_directed);
criterion_main!(benches);
