//! Criterion benches for the protocol's inner kernels: topology
//! precomputation, Filter-and-Average trimming, and f-cover search.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_conditions::cover::has_cover;
use dbac_core::config::FloodMode;
use dbac_core::filter::filter_and_average;
use dbac_core::message_set::MessageSet;
use dbac_core::precompute::Topology;
use dbac_graph::{generators, NodeId, NodeSet, PathBudget};

fn bench_precompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_precompute");
    group.sample_size(10);
    for n in [4usize, 5] {
        group.bench_with_input(BenchmarkId::new("clique_f1", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    Topology::new(
                        generators::clique(n),
                        1,
                        FloodMode::Redundant,
                        PathBudget::default(),
                    )
                    .unwrap()
                    .guesses()
                    .len(),
                )
            });
        });
    }
    group.bench_function("fig1b_small_f1", |b| {
        b.iter(|| {
            black_box(
                Topology::new(
                    generators::figure_1b_small(),
                    1,
                    FloodMode::Redundant,
                    PathBudget::default(),
                )
                .unwrap()
                .guesses()
                .len(),
            )
        });
    });
    group.finish();
}

/// Builds a realistic message set: every redundant path of K5 toward node
/// 0 carrying its initiator's value, plus a liar's extremes.
fn k5_topology() -> Topology {
    Topology::new(generators::clique(5), 1, FloodMode::Redundant, PathBudget::default()).unwrap()
}

fn k5_message_set(topo: &Topology) -> MessageSet {
    let values = [2.0, 4.0, 6.0, 8.0, -100.0];
    topo.required_paths_to(NodeId::new(0))
        .iter()
        .map(|&p| (p, values[topo.index().init(p).index()]))
        .collect()
}

fn bench_filter(c: &mut Criterion) {
    let topo = k5_topology();
    let mset = k5_message_set(&topo);
    c.bench_function("filter_and_average_k5", |b| {
        b.iter(|| black_box(filter_and_average(&mset, 1, NodeId::new(0), 5, topo.index())));
    });
}

fn bench_cover(c: &mut Criterion) {
    let topo = k5_topology();
    let mset = k5_message_set(&topo);
    let paths: Vec<NodeSet> = mset.paths().map(|p| topo.index().node_set(p)).collect();
    let allowed = NodeSet::universe(5) - NodeSet::singleton(NodeId::new(0));
    let mut group = c.benchmark_group("f_cover");
    for f in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("k5_pool", f), &f, |b, &f| {
            b.iter(|| black_box(has_cover(&paths, f, allowed)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_precompute, bench_filter, bench_cover);
criterion_main!(benches);
