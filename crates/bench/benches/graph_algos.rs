//! Criterion benches for the graph substrate: disjoint paths (Menger),
//! vertex connectivity, and path enumeration — the kernels behind the
//! Figure 1 analyses and the flood precomputation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_graph::connectivity::vertex_connectivity;
use dbac_graph::maxflow::max_vertex_disjoint_paths;
use dbac_graph::paths::{redundant_paths_ending_at, simple_paths_ending_at};
use dbac_graph::{generators, NodeId, NodeSet, PathBudget};

fn bench_maxflow(c: &mut Criterion) {
    let fig = generators::figure_1b();
    c.bench_function("disjoint_paths_fig1b_v1_w1", |b| {
        b.iter(|| black_box(max_vertex_disjoint_paths(&fig, NodeId::new(0), NodeId::new(7))));
    });
    let k7 = generators::clique(7);
    c.bench_function("disjoint_paths_k7", |b| {
        b.iter(|| black_box(max_vertex_disjoint_paths(&k7, NodeId::new(0), NodeId::new(1))));
    });
}

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_connectivity");
    for n in [5usize, 7, 9] {
        let g = generators::wheel(n);
        group.bench_with_input(BenchmarkId::new("wheel", n), &g, |b, g| {
            b.iter(|| black_box(vertex_connectivity(g)));
        });
    }
    group.finish();
}

fn bench_path_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("paths");
    for n in [4usize, 5] {
        let g = generators::clique(n);
        group.bench_with_input(BenchmarkId::new("simple_ending_at_clique", n), &g, |b, g| {
            b.iter(|| {
                black_box(
                    simple_paths_ending_at(
                        g,
                        NodeId::new(0),
                        NodeSet::EMPTY,
                        PathBudget::default(),
                    )
                    .unwrap()
                    .len(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("redundant_ending_at_clique", n), &g, |b, g| {
            b.iter(|| {
                black_box(
                    redundant_paths_ending_at(
                        g,
                        NodeId::new(0),
                        NodeSet::EMPTY,
                        PathBudget::default(),
                    )
                    .unwrap()
                    .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maxflow, bench_connectivity, bench_path_enumeration);
criterion_main!(benches);
