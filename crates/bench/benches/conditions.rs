//! Criterion benches for the condition checkers (E11 kernels): the cost of
//! deciding 1/2/3-reach, the partition conditions, and source components.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_conditions::kreach::{one_reach, three_reach, two_reach};
use dbac_conditions::partition::bcs;
use dbac_conditions::reduced::source_component_of_silenced;
use dbac_graph::{generators, NodeId, NodeSet};

fn bench_kreach(c: &mut Criterion) {
    let mut group = c.benchmark_group("kreach");
    for n in [5usize, 6, 7, 8] {
        let g = generators::clique(n);
        group.bench_with_input(BenchmarkId::new("three_reach_clique_f1", n), &g, |b, g| {
            b.iter(|| black_box(three_reach(g, 1).holds()));
        });
    }
    let fig = generators::figure_1b_small();
    group.bench_function("three_reach_fig1b_small_f1", |b| {
        b.iter(|| black_box(three_reach(&fig, 1).holds()));
    });
    group.bench_function("one_reach_fig1b_small_f1", |b| {
        b.iter(|| black_box(one_reach(&fig, 1).holds()));
    });
    group.bench_function("two_reach_fig1b_small_f1", |b| {
        b.iter(|| black_box(two_reach(&fig, 1).holds()));
    });
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    for n in [5usize, 6, 7] {
        let g = generators::clique(n);
        group.bench_with_input(BenchmarkId::new("bcs_clique_f1", n), &g, |b, g| {
            b.iter(|| black_box(bcs(g, 1).holds()));
        });
    }
    group.finish();
}

fn bench_source_components(c: &mut Criterion) {
    let g = generators::figure_1b();
    let silenced: NodeSet = [NodeId::new(0), NodeId::new(8)].into_iter().collect();
    c.bench_function("source_component_fig1b", |b| {
        b.iter(|| black_box(source_component_of_silenced(&g, silenced)));
    });
}

criterion_group!(benches, bench_kreach, bench_partition, bench_source_components);
criterion_main!(benches);
