//! Hot-path microbenchmarks for the interning and columnar refactors.
//!
//! Measures the per-message kernels the `PathId` interning and the
//! columnar `MessageSet`/`RoundCore` rewrites target — FIFO reception
//! (`FifoReceiver::accept`: in-order, gap-close, replay), `COMPLETE` relay
//! fan-out (`complete_forwards`), the message-set algebra (`exclusion`,
//! fullness), witness-thread flood ingest (`round_core_ingest`) and the
//! all-guess Maximal-Consistency recompute (`mc_scan`) — on
//! `figure_1b_small` and a clique. Faithful reimplementations of the
//! pre-refactor designs (channels keyed by `(initiator, owned Path)`,
//! forwarding via clone + `extended()` + `is_simple()`, message sets as
//! `BTreeMap<PathId, f64>`, witness threads tracking per-guess progress
//! with incremental hash-map counters) run alongside as the *legacy*
//! baselines, so one run reports the before/after numbers recorded in
//! CHANGES.md. With `-- --json <path>` the harness also writes the
//! measurements consumed by the CI `bench-trend` gate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_core::config::FloodMode;
use dbac_core::fifo::{complete_forwards, FifoReceiver};
use dbac_core::message_set::{CompletePayload, MessageSet};
use dbac_core::precompute::Topology;
use dbac_core::witness::{NodePlan, RoundAction, RoundCore, WitnessScratch};
use dbac_graph::{generators, Digraph, FastHashMap, NodeId, NodeSet, Path, PathBudget, PathId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Legacy (pre-interning) implementations, kept verbatim-in-spirit as the
// baseline: owned-path channel keys, per-arrival Vec hash + clone, and
// clone + re-scan forwarding.
// ---------------------------------------------------------------------------

struct LegacyFifo {
    channels: HashMap<(NodeId, Path), LegacyChannel>,
}

type LegacyBuffered = (u32, NodeSet, Arc<CompletePayload>, u64);

struct LegacyChannel {
    next: u64,
    buffer: BTreeMap<u64, Vec<LegacyBuffered>>,
}

struct LegacyDelivery {
    #[allow(dead_code)]
    initiator: NodeId,
    #[allow(dead_code)]
    path: Path,
    #[allow(dead_code)]
    round: u32,
}

impl LegacyFifo {
    fn new() -> Self {
        LegacyFifo { channels: HashMap::new() }
    }

    fn accept(
        &mut self,
        path: &Path,
        seq: u64,
        round: u32,
        suspects: NodeSet,
        payload: Arc<CompletePayload>,
    ) -> Vec<LegacyDelivery> {
        let initiator = path.init();
        let channel = self
            .channels
            .entry((initiator, path.clone()))
            .or_insert_with(|| LegacyChannel { next: 1, buffer: BTreeMap::new() });
        if seq >= channel.next {
            let fp = payload.fingerprint();
            let slot = channel.buffer.entry(seq).or_default();
            if !slot.iter().any(|(r, s, _, f)| *r == round && *s == suspects && *f == fp) {
                slot.push((round, suspects, payload, fp));
            }
        }
        let mut out = Vec::new();
        while let Some(batch) = channel.buffer.remove(&channel.next) {
            for (round, ..) in batch {
                out.push(LegacyDelivery { initiator, path: path.clone(), round });
            }
            channel.next += 1;
        }
        out
    }
}

fn legacy_complete_forwards(g: &Digraph, me: NodeId, stored: &Path) -> usize {
    let mut sent = 0;
    for w in g.out_neighbors(me).iter() {
        let Ok(extended) = stored.extended(w) else {
            continue;
        };
        if extended.is_simple() {
            sent += 1; // the real code also cloned `stored` into a message
            black_box(stored.clone());
        }
    }
    sent
}

/// The pre-columnar message set (PR 1's design): a `BTreeMap<PathId, f64>`
/// with set operations as per-entry filters through the index metadata.
/// A deliberate frozen copy of `dbac_core::message_set::reference` (same
/// idiom as `LegacyFifo` above): depending on the `reference-messageset`
/// feature from here would, via feature unification, compile the reference
/// module into every workspace build — and the baseline should stay the
/// *historical* design even if the test oracle evolves.
#[derive(Clone, Default)]
struct LegacyMessageSet {
    entries: BTreeMap<dbac_graph::PathId, f64>,
}

impl LegacyMessageSet {
    fn insert(&mut self, path: PathId, value: f64) -> bool {
        match self.entries.entry(path) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    fn exclusion(&self, a: NodeSet, index: &dbac_graph::PathIndex) -> LegacyMessageSet {
        LegacyMessageSet {
            entries: self
                .entries
                .iter()
                .filter(|(&p, _)| !index.intersects(p, a))
                .map(|(&p, &v)| (p, v))
                .collect(),
        }
    }

    fn is_full_avoiding(&self, a: NodeSet, v: NodeId, index: &dbac_graph::PathIndex) -> bool {
        index
            .paths_ending_at(v)
            .iter()
            .filter(|&&p| !index.intersects(p, a))
            .all(|p| self.entries.contains_key(p))
    }
}

/// The pre-mask witness-thread flood path (PR 2's design), frozen: one
/// state machine per guess tracking Maximal-Consistency with an
/// incremental `value_by_init` hash map and a `NodeSet` disjointness test
/// per thread per arrival, firing the `COMPLETE` payload through a cloned
/// exclusion set. A deliberate frozen copy of `dbac_core::witness::
/// reference`'s ingest path (same isolation rationale as the legacy
/// structures above: the `reference-witness` feature must not leak into
/// workspace builds via unification, and the baseline should stay the
/// historical design even if the test oracle evolves).
struct LegacyRoundIngest {
    mset: MessageSet,
    paths_by_init_value: HashMap<(NodeId, u64), Vec<NodeSet>>,
    threads: Vec<LegacyThread>,
}

struct LegacyThread {
    guess: NodeSet,
    consistent: bool,
    value_by_init: FastHashMap<NodeId, u64>,
    flood_remaining: usize,
    mc_fired: bool,
}

impl LegacyRoundIngest {
    fn new(topo: &Topology, me: NodeId) -> Self {
        let threads = topo
            .guesses()
            .iter()
            .filter(|g| !g.contains(me))
            .map(|&guess| LegacyThread {
                guess,
                consistent: true,
                value_by_init: FastHashMap::default(),
                flood_remaining: topo.index().required_count(guess, me),
                mc_fired: false,
            })
            .collect();
        LegacyRoundIngest { mset: MessageSet::new(), paths_by_init_value: HashMap::new(), threads }
    }

    /// The counter-based ingest: returns the number of MC firings.
    fn ingest(&mut self, stored: PathId, value: f64, topo: &Topology) -> usize {
        let index = topo.index();
        let node_set = index.node_set(stored);
        let init = index.init(stored);
        let bits = value.to_bits();
        if !self.mset.insert(stored, value) {
            return 0;
        }
        self.paths_by_init_value.entry((init, bits)).or_default().push(node_set);
        let mut fired = 0;
        for thread in &mut self.threads {
            if thread.mc_fired {
                continue;
            }
            if !node_set.is_disjoint(thread.guess) {
                continue;
            }
            thread.flood_remaining -= 1;
            if thread.consistent {
                match thread.value_by_init.entry(init) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(bits);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != bits {
                            thread.consistent = false;
                        }
                    }
                }
            }
            if thread.consistent && thread.flood_remaining == 0 {
                thread.mc_fired = true;
                black_box(CompletePayload::from_message_set(
                    &self.mset.exclusion(thread.guess, index),
                ));
                fired += 1;
            }
        }
        fired
    }
}

/// The scalar all-guess Maximal-Consistency recompute: per guess, one
/// per-entry pass over the whole history with an intersects filter, a
/// hash-map consistency probe and a fullness count — what recomputation
/// cost before the mask scans.
fn legacy_mc_scan(
    mset: &MessageSet,
    guesses: &[(NodeSet, usize)],
    topo: &Topology,
) -> (usize, usize) {
    let index = topo.index();
    let (mut full, mut consistent) = (0usize, 0usize);
    for &(guess, required) in guesses {
        let mut count = 0usize;
        let mut ok = true;
        let mut by_init: FastHashMap<NodeId, u64> = FastHashMap::default();
        for (p, v) in mset.iter() {
            if index.intersects(p, guess) {
                continue;
            }
            count += 1;
            match by_init.entry(index.init(p)) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v.to_bits());
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != v.to_bits() {
                        ok = false;
                    }
                }
            }
        }
        full += usize::from(count == required);
        consistent += usize::from(ok);
    }
    (full, consistent)
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

struct Fixture {
    name: &'static str,
    topo: Topology,
    /// Simple non-trivial paths ending at node 0 (the FIFO channel space).
    fifo_paths: Vec<PathId>,
    payload: Arc<CompletePayload>,
}

fn fixture(name: &'static str, graph: Digraph) -> Fixture {
    let topo =
        Topology::new(graph, 1, FloodMode::Redundant, PathBudget::default()).expect("in budget");
    let v0 = NodeId::new(0);
    let fifo_paths: Vec<PathId> =
        topo.simple_paths_to(v0).iter().copied().filter(|&p| !topo.index().is_trivial(p)).collect();
    let mut m = MessageSet::new();
    for (i, &p) in fifo_paths.iter().take(8).enumerate() {
        m.insert(p, i as f64);
    }
    let payload = Arc::new(CompletePayload::from_message_set(&m));
    Fixture { name, topo, fifo_paths, payload }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        fixture("fig1b_small", generators::figure_1b_small()),
        fixture("clique5", generators::clique(5)),
    ]
}

const SEQS: u64 = 8;

// ---------------------------------------------------------------------------
// FifoReceiver::accept
// ---------------------------------------------------------------------------

fn bench_fifo_accept(c: &mut Criterion) {
    for fx in fixtures() {
        let index = fx.topo.index();
        let owned: Vec<Path> = fx.fifo_paths.iter().map(|&p| index.path(p).clone()).collect();

        let mut group = c.benchmark_group(format!("fifo_accept/{}", fx.name));
        group.sample_size(30);

        // In order: every arrival delivers immediately.
        group.bench_function("in_order/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for seq in 1..=SEQS {
                        delivered += rx
                            .accept(p, init, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload))
                            .len();
                    }
                }
                black_box(delivered)
            });
        });
        group.bench_function("in_order/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for seq in 1..=SEQS {
                        delivered +=
                            rx.accept(p, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });

        // Gap close: counters 2..=N buffer, counter 1 drains the batch.
        group.bench_function("gap_close/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for seq in 2..=SEQS {
                        delivered += rx
                            .accept(p, init, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload))
                            .len();
                    }
                    delivered +=
                        rx.accept(p, init, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                }
                black_box(delivered)
            });
        });
        group.bench_function("gap_close/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for seq in 2..=SEQS {
                        delivered +=
                            rx.accept(p, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                    delivered += rx.accept(p, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                }
                black_box(delivered)
            });
        });

        // Replay: Byzantine duplicates of an already-drained counter.
        group.bench_function("replay/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for _ in 0..SEQS {
                        delivered +=
                            rx.accept(p, init, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });
        group.bench_function("replay/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for _ in 0..SEQS {
                        delivered +=
                            rx.accept(p, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });

        group.finish();
    }
}

// ---------------------------------------------------------------------------
// complete_forwards
// ---------------------------------------------------------------------------

fn bench_complete_forwards(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete_forwards");
    group.sample_size(30);
    for fx in fixtures() {
        let index = fx.topo.index();
        // Stored simple paths ending at each node — what a relay holds.
        let stored: Vec<PathId> = fx
            .topo
            .graph()
            .nodes()
            .flat_map(|v| fx.topo.simple_paths_to(v).iter().copied())
            .collect();
        let owned: Vec<(NodeId, Path)> =
            stored.iter().map(|&p| (index.ter(p), index.path(p).clone())).collect();

        group.bench_with_input(BenchmarkId::new("interned", fx.name), &(), |b, ()| {
            b.iter(|| {
                let mut sent = 0usize;
                for &p in &stored {
                    let me = index.ter(p);
                    sent +=
                        complete_forwards(&fx.topo, me, 0, NodeSet::EMPTY, &fx.payload, p, 1).len();
                }
                black_box(sent)
            });
        });
        group.bench_with_input(BenchmarkId::new("legacy", fx.name), &(), |b, ()| {
            b.iter(|| {
                let mut sent = 0usize;
                for (me, p) in &owned {
                    sent += legacy_complete_forwards(fx.topo.graph(), *me, p);
                }
                black_box(sent)
            });
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// MessageSet algebra: exclusion and fullness, columnar vs BTreeMap
// ---------------------------------------------------------------------------

/// Builds node 0's full round history in both representations: every pool
/// path toward node 0 carrying its initiator's value (the state a node is
/// in when the Maximal-Consistency exclusions and fullness probes run).
fn message_set_pair(topo: &Topology) -> (MessageSet, LegacyMessageSet) {
    let v0 = NodeId::new(0);
    let mut columnar = MessageSet::new();
    let mut legacy = LegacyMessageSet::default();
    for &p in topo.required_paths_to(v0) {
        let value = topo.index().init(p).index() as f64;
        columnar.insert(p, value);
        legacy.insert(p, value);
    }
    (columnar, legacy)
}

fn bench_message_set_exclusion(c: &mut Criterion) {
    for fx in fixtures() {
        let index = fx.topo.index();
        let guesses: Vec<NodeSet> = fx.topo.guesses().to_vec();
        let (columnar, legacy) = message_set_pair(&fx.topo);

        let mut group = c.benchmark_group(format!("mset_exclusion/{}", fx.name));
        group.sample_size(30);
        // One batch = M|_Ā for every fault-set guess (what a node does
        // across its parallel witness threads).
        group.bench_function("columnar", |b| {
            b.iter(|| {
                let mut kept = 0usize;
                for &g in &guesses {
                    kept += columnar.exclusion(g, index).len();
                }
                black_box(kept)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut kept = 0usize;
                for &g in &guesses {
                    kept += legacy.exclusion(g, index).entries.len();
                }
                black_box(kept)
            });
        });
        group.finish();
    }
}

fn bench_message_set_fullness(c: &mut Criterion) {
    for fx in fixtures() {
        let index = fx.topo.index();
        let guesses: Vec<NodeSet> = fx.topo.guesses().to_vec();
        let v0 = NodeId::new(0);
        let (full_col, full_leg) = message_set_pair(&fx.topo);
        // A one-short set: fullness scans must also be fast when they fail.
        let missing = *fx.topo.required_paths_to(v0).last().expect("non-empty pool");
        let (mut part_col, mut part_leg) = (MessageSet::new(), LegacyMessageSet::default());
        for (p, v) in full_col.iter() {
            if p != missing {
                part_col.insert(p, v);
                part_leg.insert(p, v);
            }
        }

        let mut group = c.benchmark_group(format!("mset_fullness/{}", fx.name));
        group.sample_size(30);
        // One batch = fullness for (guess, node 0) over every guess, on the
        // full and the one-short history.
        group.bench_function("columnar", |b| {
            b.iter(|| {
                let mut full_count = 0usize;
                for &g in &guesses {
                    full_count += usize::from(full_col.is_full_avoiding(g, v0, index));
                    full_count += usize::from(part_col.is_full_avoiding(g, v0, index));
                }
                black_box(full_count)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut full_count = 0usize;
                for &g in &guesses {
                    full_count += usize::from(full_leg.is_full_avoiding(g, v0, index));
                    full_count += usize::from(part_leg.is_full_avoiding(g, v0, index));
                }
                black_box(full_count)
            });
        });
        group.finish();
    }
}

// ---------------------------------------------------------------------------
// RoundCore flood ingest: mask-batched witness threads vs counter-based
// ---------------------------------------------------------------------------

/// One batch = a node-0 round from `start` through every pool flood with
/// per-initiator-consistent values — the arrival path where witness
/// threads track their Maximal-Consistency census (and, at pool
/// completion, fire the `COMPLETE` payloads).
fn bench_round_core_ingest(c: &mut Criterion) {
    for fx in fixtures() {
        let v0 = NodeId::new(0);
        let plan = NodePlan::new(&fx.topo, v0);
        let index = fx.topo.index();
        let floods: Vec<(PathId, f64)> = fx
            .topo
            .required_paths_to(v0)
            .iter()
            .filter(|&&p| !index.is_trivial(p))
            .map(|&p| (p, index.init(p).index() as f64))
            .collect();

        let mut group = c.benchmark_group(format!("round_core_ingest/{}", fx.name));
        group.sample_size(20);
        group.bench_function("batched", |b| {
            b.iter(|| {
                let mut core = RoundCore::new(&fx.topo, &plan);
                let mut scratch = WitnessScratch::new();
                let mut fired = core.start(0.0, &fx.topo, &plan, &mut scratch).len();
                for &(p, v) in &floods {
                    let (_, acts) = core.add_flood(p, v, &fx.topo, &plan, &mut scratch);
                    fired += acts
                        .iter()
                        .filter(|a| matches!(a, RoundAction::FloodComplete { .. }))
                        .count();
                }
                black_box(fired)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut legacy = LegacyRoundIngest::new(&fx.topo, v0);
                let mut fired = legacy.ingest(index.trivial(v0), 0.0, &fx.topo);
                for &(p, v) in &floods {
                    fired += legacy.ingest(p, v, &fx.topo);
                }
                black_box(fired)
            });
        });
        group.finish();
    }
}

// ---------------------------------------------------------------------------
// All-guess Maximal-Consistency recompute: mask scans vs per-entry passes
// ---------------------------------------------------------------------------

/// One batch = recomputing fullness + consistency of `M|_F̄v` for every
/// fault-set guess over node 0's full round history (the state in which
/// the last arrivals decide Maximal-Consistency), on the consistent and
/// on an equivocating history.
fn bench_mc_scan(c: &mut Criterion) {
    for fx in fixtures() {
        let v0 = NodeId::new(0);
        let plan = NodePlan::new(&fx.topo, v0);
        let index = fx.topo.index();
        let legacy_guesses: Vec<(NodeSet, usize)> = fx
            .topo
            .guesses()
            .iter()
            .filter(|g| !g.contains(v0))
            .map(|&g| (g, index.required_count(g, v0)))
            .collect();
        let mut good = MessageSet::new();
        let mut bad = MessageSet::new();
        for &p in fx.topo.required_paths_to(v0) {
            good.insert(p, index.init(p).index() as f64);
            bad.insert(p, index.node_count(p) as f64); // equivocating
        }

        let mut group = c.benchmark_group(format!("mc_scan/{}", fx.name));
        group.sample_size(20);
        group.bench_function("batched", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for m in [&good, &bad] {
                    for i in 0..plan.guesses().len() {
                        let st = plan.mc_status(i, m);
                        hits += usize::from(st.full) + usize::from(st.consistent);
                    }
                }
                black_box(hits)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for m in [&good, &bad] {
                    let (full, consistent) = legacy_mc_scan(m, &legacy_guesses, &fx.topo);
                    hits += full + consistent;
                }
                black_box(hits)
            });
        });
        group.finish();
    }
}

// ---------------------------------------------------------------------------
// FIFO-Receive-All progress: slot bitmaps vs HashSet/count-map tracking
// ---------------------------------------------------------------------------

/// The pre-mask FRA progress structures (frozen from the counter-based
/// witness design): a `HashSet<(PathId, u64)>` dedup set plus a
/// fingerprint-count hash map per witness.
struct LegacyFra {
    required: usize,
    seen: std::collections::HashSet<(PathId, u64)>,
    counts: HashMap<u64, usize>,
    done: bool,
}

/// One batch = a full round of FIFO-Receive-All bookkeeping at node 0:
/// every `(guess, witness, in-reach delivery path)` mark once, then a
/// second Byzantine-replay pass of pure duplicates — the dedup-and-count
/// path Algorithm 1 line 12 runs per delivery.
fn bench_fra_scan(c: &mut Criterion) {
    for fx in fixtures() {
        let v0 = NodeId::new(0);
        let plan = NodePlan::new(&fx.topo, v0);
        let simple: Vec<PathId> = fx.topo.simple_paths_to(v0).to_vec();
        let slot_words = simple.len().div_ceil(64);
        // The delivery stream as (guess, witness, slot) triples, one
        // fingerprint (the honest case).
        let mut stream: Vec<(usize, usize, usize)> = Vec::new();
        for (gi, gp) in plan.guesses().iter().enumerate() {
            for (wi, w) in gp.fra_witnesses().iter().enumerate() {
                for (word, &bits) in w.mask().iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        stream.push((gi, wi, word * 64 + bits.trailing_zeros() as usize));
                        bits &= bits - 1;
                    }
                }
            }
        }
        const FP: u64 = 0x9E37_79B9_7F4A_7C15;

        let mut group = c.benchmark_group(format!("fra_scan/{}", fx.name));
        group.sample_size(20);
        group.bench_function("batched", |b| {
            b.iter(|| {
                let mut states: Vec<Vec<(usize, Vec<u64>)>> = plan
                    .guesses()
                    .iter()
                    .map(|gp| {
                        gp.fra_witnesses()
                            .iter()
                            .map(|w| (w.required, vec![0u64; slot_words]))
                            .collect()
                    })
                    .collect();
                let mut done = 0usize;
                for _pass in 0..2 {
                    for &(gi, wi, s) in &stream {
                        let (remaining, seen) = &mut states[gi][wi];
                        let (w, bit) = (s / 64, 1u64 << (s % 64));
                        if seen[w] & bit != 0 {
                            continue;
                        }
                        seen[w] |= bit;
                        *remaining -= 1;
                        if *remaining == 0 {
                            done += 1;
                        }
                    }
                }
                black_box(done)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut states: Vec<Vec<LegacyFra>> = plan
                    .guesses()
                    .iter()
                    .map(|gp| {
                        gp.fra_witnesses()
                            .iter()
                            .map(|w| LegacyFra {
                                required: w.required,
                                seen: std::collections::HashSet::new(),
                                counts: HashMap::new(),
                                done: false,
                            })
                            .collect()
                    })
                    .collect();
                let mut done = 0usize;
                for _pass in 0..2 {
                    for &(gi, wi, s) in &stream {
                        let st = &mut states[gi][wi];
                        if !st.done && st.seen.insert((simple[s], FP)) {
                            let count = st.counts.entry(FP).or_insert(0);
                            *count += 1;
                            if *count == st.required {
                                st.done = true;
                                done += 1;
                            }
                        }
                    }
                }
                black_box(done)
            });
        });
        group.finish();
    }
}

/// The iterative engine's per-round update: W-MSR trimmed mean over one
/// in-neighborhood. The *columnar* variant models the engine (values
/// already contiguous, one reusable scratch sort); the *legacy* variant
/// models the pre-engine design sketch — a per-round `HashMap<NodeId,
/// f64>` buffer collected into a fresh `Vec` every step.
fn bench_wmsr_step(c: &mut Criterion) {
    use dbac_baselines::iterative::wmsr_step;
    use dbac_baselines::iterengine::wmsr_step_in_place;
    for deg in [8usize, 64] {
        let rounds = 60usize;
        // Deterministic pseudo-values: one flat rounds × deg column block.
        let columns: Vec<f64> =
            (0..rounds * deg).map(|i| ((i * 2_654_435_761) % 1_000) as f64 / 10.0).collect();
        let f = deg / 8;

        let mut group = c.benchmark_group(format!("wmsr_step/deg{deg}"));
        group.sample_size(20);
        group.bench_function("columnar", |b| {
            b.iter(|| {
                let mut own = 50.0f64;
                let mut scratch: Vec<f64> = Vec::with_capacity(deg);
                for r in 0..rounds {
                    scratch.clear();
                    scratch.extend_from_slice(&columns[r * deg..(r + 1) * deg]);
                    own = wmsr_step_in_place(own, &mut scratch, f);
                }
                black_box(own)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut own = 50.0f64;
                for r in 0..rounds {
                    let map: HashMap<NodeId, f64> =
                        (0..deg).map(|i| (NodeId::new(i), columns[r * deg + i])).collect();
                    let received: Vec<f64> = map.values().copied().collect();
                    own = wmsr_step(own, received, f);
                }
                black_box(own)
            });
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_fifo_accept,
    bench_complete_forwards,
    bench_message_set_exclusion,
    bench_message_set_fullness,
    bench_round_core_ingest,
    bench_mc_scan,
    bench_fra_scan,
    bench_wmsr_step
);
criterion_main!(benches);
