//! Hot-path microbenchmarks for the path-interning refactor.
//!
//! Measures the per-message kernels the `PathId` interning targets —
//! FIFO reception (`FifoReceiver::accept`: in-order, gap-close, replay),
//! `COMPLETE` relay fan-out (`complete_forwards`), and the message-set
//! algebra (`exclusion`, fullness) — on `figure_1b_small` and a clique.
//! Faithful reimplementations of the pre-refactor designs (channels keyed
//! by `(initiator, owned Path)`, forwarding via clone + `extended()` +
//! `is_simple()`, message sets as `BTreeMap<PathId, f64>` with per-entry
//! mask tests) run alongside as the *legacy* baselines, so one run reports
//! the before/after numbers recorded in CHANGES.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_core::config::FloodMode;
use dbac_core::fifo::{complete_forwards, FifoReceiver};
use dbac_core::message_set::{CompletePayload, MessageSet};
use dbac_core::precompute::Topology;
use dbac_graph::{generators, Digraph, NodeId, NodeSet, Path, PathBudget, PathId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Legacy (pre-interning) implementations, kept verbatim-in-spirit as the
// baseline: owned-path channel keys, per-arrival Vec hash + clone, and
// clone + re-scan forwarding.
// ---------------------------------------------------------------------------

struct LegacyFifo {
    channels: HashMap<(NodeId, Path), LegacyChannel>,
}

type LegacyBuffered = (u32, NodeSet, Arc<CompletePayload>, u64);

struct LegacyChannel {
    next: u64,
    buffer: BTreeMap<u64, Vec<LegacyBuffered>>,
}

struct LegacyDelivery {
    #[allow(dead_code)]
    initiator: NodeId,
    #[allow(dead_code)]
    path: Path,
    #[allow(dead_code)]
    round: u32,
}

impl LegacyFifo {
    fn new() -> Self {
        LegacyFifo { channels: HashMap::new() }
    }

    fn accept(
        &mut self,
        path: &Path,
        seq: u64,
        round: u32,
        suspects: NodeSet,
        payload: Arc<CompletePayload>,
    ) -> Vec<LegacyDelivery> {
        let initiator = path.init();
        let channel = self
            .channels
            .entry((initiator, path.clone()))
            .or_insert_with(|| LegacyChannel { next: 1, buffer: BTreeMap::new() });
        if seq >= channel.next {
            let fp = payload.fingerprint();
            let slot = channel.buffer.entry(seq).or_default();
            if !slot.iter().any(|(r, s, _, f)| *r == round && *s == suspects && *f == fp) {
                slot.push((round, suspects, payload, fp));
            }
        }
        let mut out = Vec::new();
        while let Some(batch) = channel.buffer.remove(&channel.next) {
            for (round, ..) in batch {
                out.push(LegacyDelivery { initiator, path: path.clone(), round });
            }
            channel.next += 1;
        }
        out
    }
}

fn legacy_complete_forwards(g: &Digraph, me: NodeId, stored: &Path) -> usize {
    let mut sent = 0;
    for w in g.out_neighbors(me).iter() {
        let Ok(extended) = stored.extended(w) else {
            continue;
        };
        if extended.is_simple() {
            sent += 1; // the real code also cloned `stored` into a message
            black_box(stored.clone());
        }
    }
    sent
}

/// The pre-columnar message set (PR 1's design): a `BTreeMap<PathId, f64>`
/// with set operations as per-entry filters through the index metadata.
/// A deliberate frozen copy of `dbac_core::message_set::reference` (same
/// idiom as `LegacyFifo` above): depending on the `reference-messageset`
/// feature from here would, via feature unification, compile the reference
/// module into every workspace build — and the baseline should stay the
/// *historical* design even if the test oracle evolves.
#[derive(Clone, Default)]
struct LegacyMessageSet {
    entries: BTreeMap<dbac_graph::PathId, f64>,
}

impl LegacyMessageSet {
    fn insert(&mut self, path: PathId, value: f64) -> bool {
        match self.entries.entry(path) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    fn exclusion(&self, a: NodeSet, index: &dbac_graph::PathIndex) -> LegacyMessageSet {
        LegacyMessageSet {
            entries: self
                .entries
                .iter()
                .filter(|(&p, _)| !index.intersects(p, a))
                .map(|(&p, &v)| (p, v))
                .collect(),
        }
    }

    fn is_full_avoiding(&self, a: NodeSet, v: NodeId, index: &dbac_graph::PathIndex) -> bool {
        index
            .paths_ending_at(v)
            .iter()
            .filter(|&&p| !index.intersects(p, a))
            .all(|p| self.entries.contains_key(p))
    }
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

struct Fixture {
    name: &'static str,
    topo: Topology,
    /// Simple non-trivial paths ending at node 0 (the FIFO channel space).
    fifo_paths: Vec<PathId>,
    payload: Arc<CompletePayload>,
}

fn fixture(name: &'static str, graph: Digraph) -> Fixture {
    let topo =
        Topology::new(graph, 1, FloodMode::Redundant, PathBudget::default()).expect("in budget");
    let v0 = NodeId::new(0);
    let fifo_paths: Vec<PathId> =
        topo.simple_paths_to(v0).iter().copied().filter(|&p| !topo.index().is_trivial(p)).collect();
    let mut m = MessageSet::new();
    for (i, &p) in fifo_paths.iter().take(8).enumerate() {
        m.insert(p, i as f64);
    }
    let payload = Arc::new(CompletePayload::from_message_set(&m));
    Fixture { name, topo, fifo_paths, payload }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        fixture("fig1b_small", generators::figure_1b_small()),
        fixture("clique5", generators::clique(5)),
    ]
}

const SEQS: u64 = 8;

// ---------------------------------------------------------------------------
// FifoReceiver::accept
// ---------------------------------------------------------------------------

fn bench_fifo_accept(c: &mut Criterion) {
    for fx in fixtures() {
        let index = fx.topo.index();
        let owned: Vec<Path> = fx.fifo_paths.iter().map(|&p| index.path(p).clone()).collect();

        let mut group = c.benchmark_group(format!("fifo_accept/{}", fx.name));
        group.sample_size(30);

        // In order: every arrival delivers immediately.
        group.bench_function("in_order/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for seq in 1..=SEQS {
                        delivered += rx
                            .accept(p, init, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload))
                            .len();
                    }
                }
                black_box(delivered)
            });
        });
        group.bench_function("in_order/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for seq in 1..=SEQS {
                        delivered +=
                            rx.accept(p, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });

        // Gap close: counters 2..=N buffer, counter 1 drains the batch.
        group.bench_function("gap_close/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for seq in 2..=SEQS {
                        delivered += rx
                            .accept(p, init, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload))
                            .len();
                    }
                    delivered +=
                        rx.accept(p, init, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                }
                black_box(delivered)
            });
        });
        group.bench_function("gap_close/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for seq in 2..=SEQS {
                        delivered +=
                            rx.accept(p, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                    delivered += rx.accept(p, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                }
                black_box(delivered)
            });
        });

        // Replay: Byzantine duplicates of an already-drained counter.
        group.bench_function("replay/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for _ in 0..SEQS {
                        delivered +=
                            rx.accept(p, init, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });
        group.bench_function("replay/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for _ in 0..SEQS {
                        delivered +=
                            rx.accept(p, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });

        group.finish();
    }
}

// ---------------------------------------------------------------------------
// complete_forwards
// ---------------------------------------------------------------------------

fn bench_complete_forwards(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete_forwards");
    group.sample_size(30);
    for fx in fixtures() {
        let index = fx.topo.index();
        // Stored simple paths ending at each node — what a relay holds.
        let stored: Vec<PathId> = fx
            .topo
            .graph()
            .nodes()
            .flat_map(|v| fx.topo.simple_paths_to(v).iter().copied())
            .collect();
        let owned: Vec<(NodeId, Path)> =
            stored.iter().map(|&p| (index.ter(p), index.path(p).clone())).collect();

        group.bench_with_input(BenchmarkId::new("interned", fx.name), &(), |b, ()| {
            b.iter(|| {
                let mut sent = 0usize;
                for &p in &stored {
                    let me = index.ter(p);
                    sent +=
                        complete_forwards(&fx.topo, me, 0, NodeSet::EMPTY, &fx.payload, p, 1).len();
                }
                black_box(sent)
            });
        });
        group.bench_with_input(BenchmarkId::new("legacy", fx.name), &(), |b, ()| {
            b.iter(|| {
                let mut sent = 0usize;
                for (me, p) in &owned {
                    sent += legacy_complete_forwards(fx.topo.graph(), *me, p);
                }
                black_box(sent)
            });
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// MessageSet algebra: exclusion and fullness, columnar vs BTreeMap
// ---------------------------------------------------------------------------

/// Builds node 0's full round history in both representations: every pool
/// path toward node 0 carrying its initiator's value (the state a node is
/// in when the Maximal-Consistency exclusions and fullness probes run).
fn message_set_pair(topo: &Topology) -> (MessageSet, LegacyMessageSet) {
    let v0 = NodeId::new(0);
    let mut columnar = MessageSet::new();
    let mut legacy = LegacyMessageSet::default();
    for &p in topo.required_paths_to(v0) {
        let value = topo.index().init(p).index() as f64;
        columnar.insert(p, value);
        legacy.insert(p, value);
    }
    (columnar, legacy)
}

fn bench_message_set_exclusion(c: &mut Criterion) {
    for fx in fixtures() {
        let index = fx.topo.index();
        let guesses: Vec<NodeSet> = fx.topo.guesses().to_vec();
        let (columnar, legacy) = message_set_pair(&fx.topo);

        let mut group = c.benchmark_group(format!("mset_exclusion/{}", fx.name));
        group.sample_size(30);
        // One batch = M|_Ā for every fault-set guess (what a node does
        // across its parallel witness threads).
        group.bench_function("columnar", |b| {
            b.iter(|| {
                let mut kept = 0usize;
                for &g in &guesses {
                    kept += columnar.exclusion(g, index).len();
                }
                black_box(kept)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut kept = 0usize;
                for &g in &guesses {
                    kept += legacy.exclusion(g, index).entries.len();
                }
                black_box(kept)
            });
        });
        group.finish();
    }
}

fn bench_message_set_fullness(c: &mut Criterion) {
    for fx in fixtures() {
        let index = fx.topo.index();
        let guesses: Vec<NodeSet> = fx.topo.guesses().to_vec();
        let v0 = NodeId::new(0);
        let (full_col, full_leg) = message_set_pair(&fx.topo);
        // A one-short set: fullness scans must also be fast when they fail.
        let missing = *fx.topo.required_paths_to(v0).last().expect("non-empty pool");
        let (mut part_col, mut part_leg) = (MessageSet::new(), LegacyMessageSet::default());
        for (p, v) in full_col.iter() {
            if p != missing {
                part_col.insert(p, v);
                part_leg.insert(p, v);
            }
        }

        let mut group = c.benchmark_group(format!("mset_fullness/{}", fx.name));
        group.sample_size(30);
        // One batch = fullness for (guess, node 0) over every guess, on the
        // full and the one-short history.
        group.bench_function("columnar", |b| {
            b.iter(|| {
                let mut full_count = 0usize;
                for &g in &guesses {
                    full_count += usize::from(full_col.is_full_avoiding(g, v0, index));
                    full_count += usize::from(part_col.is_full_avoiding(g, v0, index));
                }
                black_box(full_count)
            });
        });
        group.bench_function("legacy", |b| {
            b.iter(|| {
                let mut full_count = 0usize;
                for &g in &guesses {
                    full_count += usize::from(full_leg.is_full_avoiding(g, v0, index));
                    full_count += usize::from(part_leg.is_full_avoiding(g, v0, index));
                }
                black_box(full_count)
            });
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_fifo_accept,
    bench_complete_forwards,
    bench_message_set_exclusion,
    bench_message_set_fullness
);
criterion_main!(benches);
