//! Hot-path microbenchmarks for the path-interning refactor.
//!
//! Measures the two per-message kernels the `PathId` interning targets —
//! FIFO reception (`FifoReceiver::accept`: in-order, gap-close, replay) and
//! `COMPLETE` relay fan-out (`complete_forwards`) — on `figure_1b_small`
//! and a clique. A faithful reimplementation of the pre-interning design
//! (channels keyed by `(initiator, owned Path)`, forwarding via
//! clone + `extended()` + `is_simple()`) runs alongside as the *legacy*
//! baseline, so one run reports the before/after numbers recorded in
//! CHANGES.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dbac_core::config::FloodMode;
use dbac_core::fifo::{complete_forwards, FifoReceiver};
use dbac_core::message_set::{CompletePayload, MessageSet};
use dbac_core::precompute::Topology;
use dbac_graph::{generators, Digraph, NodeId, NodeSet, Path, PathBudget, PathId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Legacy (pre-interning) implementations, kept verbatim-in-spirit as the
// baseline: owned-path channel keys, per-arrival Vec hash + clone, and
// clone + re-scan forwarding.
// ---------------------------------------------------------------------------

struct LegacyFifo {
    channels: HashMap<(NodeId, Path), LegacyChannel>,
}

type LegacyBuffered = (u32, NodeSet, Arc<CompletePayload>, u64);

struct LegacyChannel {
    next: u64,
    buffer: BTreeMap<u64, Vec<LegacyBuffered>>,
}

struct LegacyDelivery {
    #[allow(dead_code)]
    initiator: NodeId,
    #[allow(dead_code)]
    path: Path,
    #[allow(dead_code)]
    round: u32,
}

impl LegacyFifo {
    fn new() -> Self {
        LegacyFifo { channels: HashMap::new() }
    }

    fn accept(
        &mut self,
        path: &Path,
        seq: u64,
        round: u32,
        suspects: NodeSet,
        payload: Arc<CompletePayload>,
    ) -> Vec<LegacyDelivery> {
        let initiator = path.init();
        let channel = self
            .channels
            .entry((initiator, path.clone()))
            .or_insert_with(|| LegacyChannel { next: 1, buffer: BTreeMap::new() });
        if seq >= channel.next {
            let fp = payload.fingerprint();
            let slot = channel.buffer.entry(seq).or_default();
            if !slot.iter().any(|(r, s, _, f)| *r == round && *s == suspects && *f == fp) {
                slot.push((round, suspects, payload, fp));
            }
        }
        let mut out = Vec::new();
        while let Some(batch) = channel.buffer.remove(&channel.next) {
            for (round, ..) in batch {
                out.push(LegacyDelivery { initiator, path: path.clone(), round });
            }
            channel.next += 1;
        }
        out
    }
}

fn legacy_complete_forwards(g: &Digraph, me: NodeId, stored: &Path) -> usize {
    let mut sent = 0;
    for w in g.out_neighbors(me).iter() {
        let Ok(extended) = stored.extended(w) else {
            continue;
        };
        if extended.is_simple() {
            sent += 1; // the real code also cloned `stored` into a message
            black_box(stored.clone());
        }
    }
    sent
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

struct Fixture {
    name: &'static str,
    topo: Topology,
    /// Simple non-trivial paths ending at node 0 (the FIFO channel space).
    fifo_paths: Vec<PathId>,
    payload: Arc<CompletePayload>,
}

fn fixture(name: &'static str, graph: Digraph) -> Fixture {
    let topo =
        Topology::new(graph, 1, FloodMode::Redundant, PathBudget::default()).expect("in budget");
    let v0 = NodeId::new(0);
    let fifo_paths: Vec<PathId> =
        topo.simple_paths_to(v0).iter().copied().filter(|&p| !topo.index().is_trivial(p)).collect();
    let mut m = MessageSet::new();
    for (i, &p) in fifo_paths.iter().take(8).enumerate() {
        m.insert(p, i as f64);
    }
    let payload = Arc::new(CompletePayload::from_message_set(&m));
    Fixture { name, topo, fifo_paths, payload }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        fixture("fig1b_small", generators::figure_1b_small()),
        fixture("clique5", generators::clique(5)),
    ]
}

const SEQS: u64 = 8;

// ---------------------------------------------------------------------------
// FifoReceiver::accept
// ---------------------------------------------------------------------------

fn bench_fifo_accept(c: &mut Criterion) {
    for fx in fixtures() {
        let index = fx.topo.index();
        let owned: Vec<Path> = fx.fifo_paths.iter().map(|&p| index.path(p).clone()).collect();

        let mut group = c.benchmark_group(format!("fifo_accept/{}", fx.name));
        group.sample_size(30);

        // In order: every arrival delivers immediately.
        group.bench_function("in_order/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for seq in 1..=SEQS {
                        delivered += rx
                            .accept(p, init, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload))
                            .len();
                    }
                }
                black_box(delivered)
            });
        });
        group.bench_function("in_order/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for seq in 1..=SEQS {
                        delivered +=
                            rx.accept(p, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });

        // Gap close: counters 2..=N buffer, counter 1 drains the batch.
        group.bench_function("gap_close/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for seq in 2..=SEQS {
                        delivered += rx
                            .accept(p, init, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload))
                            .len();
                    }
                    delivered +=
                        rx.accept(p, init, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                }
                black_box(delivered)
            });
        });
        group.bench_function("gap_close/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for seq in 2..=SEQS {
                        delivered +=
                            rx.accept(p, seq, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                    delivered += rx.accept(p, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                }
                black_box(delivered)
            });
        });

        // Replay: Byzantine duplicates of an already-drained counter.
        group.bench_function("replay/interned", |b| {
            b.iter(|| {
                let mut rx = FifoReceiver::new();
                let mut delivered = 0usize;
                for &p in &fx.fifo_paths {
                    let init = index.init(p);
                    for _ in 0..SEQS {
                        delivered +=
                            rx.accept(p, init, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });
        group.bench_function("replay/legacy", |b| {
            b.iter(|| {
                let mut rx = LegacyFifo::new();
                let mut delivered = 0usize;
                for p in &owned {
                    for _ in 0..SEQS {
                        delivered +=
                            rx.accept(p, 1, 0, NodeSet::EMPTY, Arc::clone(&fx.payload)).len();
                    }
                }
                black_box(delivered)
            });
        });

        group.finish();
    }
}

// ---------------------------------------------------------------------------
// complete_forwards
// ---------------------------------------------------------------------------

fn bench_complete_forwards(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete_forwards");
    group.sample_size(30);
    for fx in fixtures() {
        let index = fx.topo.index();
        // Stored simple paths ending at each node — what a relay holds.
        let stored: Vec<PathId> = fx
            .topo
            .graph()
            .nodes()
            .flat_map(|v| fx.topo.simple_paths_to(v).iter().copied())
            .collect();
        let owned: Vec<(NodeId, Path)> =
            stored.iter().map(|&p| (index.ter(p), index.path(p).clone())).collect();

        group.bench_with_input(BenchmarkId::new("interned", fx.name), &(), |b, ()| {
            b.iter(|| {
                let mut sent = 0usize;
                for &p in &stored {
                    let me = index.ter(p);
                    sent +=
                        complete_forwards(&fx.topo, me, 0, NodeSet::EMPTY, &fx.payload, p, 1).len();
                }
                black_box(sent)
            });
        });
        group.bench_with_input(BenchmarkId::new("legacy", fx.name), &(), |b, ()| {
            b.iter(|| {
                let mut sent = 0usize;
                for (me, p) in &owned {
                    sent += legacy_complete_forwards(fx.topo.graph(), *me, p);
                }
                black_box(sent)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fifo_accept, bench_complete_forwards);
criterion_main!(benches);
