//! Differential testing of the columnar [`MessageSet`] against the
//! BTreeMap [`reference`](dbac_core::message_set::reference) model.
//!
//! Both backends are driven with **identical generated operation
//! sequences** — inserts, exclusions, consistency probes, fullness probes,
//! wire round-trips — and every observable must be byte-for-byte identical
//! after every step (values compared as `f64` bit patterns, iteration in
//! exact order). Sequences are drawn from a deterministic splitmix64
//! stream, so failures reproduce by seed.
//!
//! ≥ 1,000 sequences run per topology class; the classes cover the
//! population shapes the protocol actually meets (complete, directed
//! non-complete, bridged, simple-only ablation).
//!
//! Gated on the `reference-messageset` feature:
//! `cargo test -p dbac-core --features reference-messageset`.
#![cfg(feature = "reference-messageset")]

use dbac_core::config::FloodMode;
use dbac_core::message_set::{reference, CompletePayload, MessageSet};
use dbac_core::precompute::Topology;
use dbac_graph::{generators, NodeSet, PathBudget, PathId};

/// Deterministic stream: splitmix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(span)) >> 64) as u64
    }
}

/// The value alphabet: small, collision-heavy, bit-distinguishable
/// (`0.0` vs `-0.0`), with extremes.
const VALUES: [f64; 7] = [0.0, -0.0, 1.0, -1.0, 7.25, 1e9, -1e9];

/// Sparse bit-exact snapshot: the canonical wire form of either backend.
fn snapshot_columnar(m: &MessageSet) -> Vec<(u32, u64)> {
    m.iter().map(|(p, v)| (p.raw(), v.to_bits())).collect()
}

fn snapshot_reference(m: &reference::MessageSet) -> Vec<(u32, u64)> {
    m.iter().map(|(p, v)| (p.raw(), v.to_bits())).collect()
}

/// Asserts every observable of the two backends is identical.
fn assert_observables(t: &Topology, col: &MessageSet, model: &reference::MessageSet, ctx: &str) {
    let index = t.index();
    assert_eq!(col.len(), model.len(), "{ctx}: len");
    assert_eq!(col.is_empty(), model.is_empty(), "{ctx}: is_empty");
    assert_eq!(snapshot_columnar(col), snapshot_reference(model), "{ctx}: entries");
    assert_eq!(
        col.paths().collect::<Vec<_>>(),
        model.paths().collect::<Vec<_>>(),
        "{ctx}: path iteration"
    );
    assert_eq!(col.is_consistent(index), model.is_consistent(index), "{ctx}: consistency");
    assert_eq!(col.initiators(index), model.initiators(index), "{ctx}: initiators");
    for v in t.graph().nodes() {
        assert_eq!(
            col.value_of(v, index).map(f64::to_bits),
            model.value_of(v, index).map(f64::to_bits),
            "{ctx}: value_of({v})"
        );
    }
}

/// One generated sequence against one topology.
/// A pseudo-random subset of `{0, …, n-1}` drawn from one 64-bit word
/// (the differential fixtures never exceed 64 nodes).
fn random_subset(mask: u64, n: usize) -> NodeSet {
    assert!(n <= 64);
    NodeSet::universe(n).iter().filter(|v| mask >> v.index() & 1 == 1).collect()
}

fn run_sequence(t: &Topology, seed: u64) {
    let index = t.index();
    let population = index.len() as u64;
    let n = t.graph().node_count();
    let mut rng = Rng(seed);
    let mut col = MessageSet::new();
    let mut model = reference::MessageSet::new();
    let ops = 8 + rng.below(40);
    for op in 0..ops {
        let ctx = format!("seed {seed} op {op}");
        match rng.below(10) {
            // Insert dominates: it is the only mutation and every other
            // observable is only interesting on a populated set.
            0..=5 => {
                let p = PathId::from_raw(rng.below(population) as u32);
                let v = VALUES[rng.below(VALUES.len() as u64) as usize];
                assert_eq!(col.insert(p, v), model.insert(p, v), "{ctx}: insert({p}, {v})");
                assert_eq!(col.contains_path(p), model.contains_path(p), "{ctx}: contains");
                assert_eq!(
                    col.value_on_path(p).map(f64::to_bits),
                    model.value_on_path(p).map(f64::to_bits),
                    "{ctx}: value_on_path"
                );
            }
            // Exclusion on a random node set (guess-sized through universe).
            6 => {
                let set = random_subset(rng.next(), n);
                let (ec, em) = (col.exclusion(set, index), model.exclusion(set, index));
                assert_observables(t, &ec, &em, &format!("{ctx}: exclusion({set:?})"));
                // Exclusion is the protocol's snapshot op: its payload form
                // must agree too.
                assert_eq!(
                    CompletePayload::from_message_set(&ec).entries(),
                    em.iter().collect::<Vec<_>>().as_slice(),
                    "{ctx}: payload of exclusion"
                );
            }
            // Fullness for a random (guess, terminal) pair, both forms.
            7 => {
                let set = random_subset(rng.next(), n);
                let v = dbac_graph::NodeId::new(rng.below(n as u64) as usize);
                assert_eq!(
                    col.is_full_avoiding(set, v, index),
                    model.is_full_avoiding(set, v, index),
                    "{ctx}: is_full_avoiding({set:?}, {v})"
                );
                let required: Vec<PathId> = index
                    .paths_ending_at(v)
                    .iter()
                    .copied()
                    .filter(|&p| !index.intersects(p, set))
                    .collect();
                assert_eq!(
                    col.is_full_for(&required),
                    model.is_full_for(&required),
                    "{ctx}: is_full_for"
                );
            }
            // Wire round-trip: sparse egress, re-ingress, still equivalent.
            8 => {
                let wire: Vec<(PathId, f64)> = col.clone().into();
                let back = MessageSet::from(wire);
                assert_observables(t, &back, &model, &format!("{ctx}: wire round-trip"));
            }
            // Rebuild the model from the columnar iteration (and vice
            // versa): FromIterator is observable too.
            _ => {
                let rebuilt_model: reference::MessageSet = col.iter().collect();
                let rebuilt_col: MessageSet = model.iter().collect();
                assert_observables(t, &col, &rebuilt_model, &format!("{ctx}: rebuild model"));
                assert_observables(t, &rebuilt_col, &model, &format!("{ctx}: rebuild columnar"));
            }
        }
        assert_observables(t, &col, &model, &ctx);
    }
}

const SEQUENCES: u64 = 1200;

fn run_class(name: &str, t: &Topology, salt: u64) {
    for i in 0..SEQUENCES {
        run_sequence(t, salt.wrapping_mul(0xD131_0BA6) ^ i);
    }
    // A final deterministic deep sequence: fill the whole population.
    let mut col = MessageSet::new();
    let mut model = reference::MessageSet::new();
    for raw in 0..t.index().len() as u32 {
        let p = PathId::from_raw(raw);
        let v = VALUES[(raw as usize) % VALUES.len()];
        assert_eq!(col.insert(p, v), model.insert(p, v));
    }
    assert_observables(t, &col, &model, &format!("{name}: full population"));
    for &guess in t.guesses() {
        for v in t.graph().nodes() {
            assert!(col.is_full_avoiding(guess, v, t.index()), "{name}: full set must be full");
        }
    }
}

fn topo(g: dbac_graph::Digraph, f: usize, mode: FloodMode) -> Topology {
    Topology::new(g, f, mode, PathBudget::default()).expect("in budget")
}

#[test]
fn clique_redundant() {
    run_class("K4/redundant", &topo(generators::clique(4), 1, FloodMode::Redundant), 1);
}

#[test]
fn clique_simple_only() {
    run_class("K5/simple", &topo(generators::clique(5), 1, FloodMode::SimpleOnly), 2);
}

#[test]
fn bridged_cliques_redundant() {
    let g = generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]);
    run_class("2xK3/redundant", &topo(g, 1, FloodMode::Redundant), 3);
}

#[test]
fn figure_1a_redundant() {
    run_class("fig1a/redundant", &topo(generators::figure_1a(), 1, FloodMode::Redundant), 4);
}
