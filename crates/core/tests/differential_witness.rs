//! Differential testing of the mask-batched witness state machine
//! ([`RoundCore`]) against the counter-based
//! [`reference`](dbac_core::witness::reference) oracle.
//!
//! Both implementations are driven with **identical generated
//! flood/COMPLETE sequences** — round start at a random point, flood
//! arrivals over random pool paths (with duplicates and equivocating
//! values), FIFO `COMPLETE` deliveries over random simple paths with
//! random suspect sets and a payload pool covering consistent,
//! inconsistent, partial and empty snapshots — and after every step the
//! emitted [`RoundAction`] streams must be identical (guesses, payload
//! entries and fingerprints, Filter-and-Average outcomes), as must the
//! `started`/`fired` flags and the accumulated message set. Sequences are
//! drawn from a deterministic splitmix64 stream, so failures reproduce by
//! seed.
//!
//! Gated on the `reference-witness` feature:
//! `cargo test -p dbac-core --features reference-witness`.
#![cfg(feature = "reference-witness")]

use dbac_core::config::FloodMode;
use dbac_core::message_set::{CompletePayload, MessageSet};
use dbac_core::precompute::Topology;
use dbac_core::witness::{reference, NodePlan, RoundAction, RoundCore, WitnessScratch};
use dbac_graph::{generators, NodeId, NodeSet, PathBudget};
use std::sync::Arc;

/// Deterministic stream: splitmix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(span)) >> 64) as u64
    }
}

/// The value alphabet: small and collision-heavy (Maximal-Consistency is
/// only interesting when initiators repeat values), bit-distinguishable.
const VALUES: [f64; 5] = [0.0, -0.0, 1.0, -1.5, 7.25];

fn assert_actions_equal(a: &[RoundAction], b: &[RoundAction], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: action count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (
                RoundAction::FloodComplete { guess: g1, payload: p1 },
                RoundAction::FloodComplete { guess: g2, payload: p2 },
            ) => {
                assert_eq!(g1, g2, "{ctx}: action {i} guess");
                assert_eq!(p1.entries(), p2.entries(), "{ctx}: action {i} payload");
                assert_eq!(p1.fingerprint(), p2.fingerprint(), "{ctx}: action {i} fingerprint");
            }
            (
                RoundAction::Advance { guess: g1, outcome: o1 },
                RoundAction::Advance { guess: g2, outcome: o2 },
            ) => {
                assert_eq!(g1, g2, "{ctx}: action {i} winning guess");
                assert_eq!(o1, o2, "{ctx}: action {i} outcome");
            }
            _ => panic!("{ctx}: action {i} kind diverged"),
        }
    }
}

/// One node's worth of prebuilt fixtures for a topology class.
struct NodeFixture {
    me: NodeId,
    plan: NodePlan,
    model_plan: reference::NodePlan,
    /// Payload pool: per-peer consistent snapshots, an equivocating one,
    /// a partial one (missing source-component values) and an empty one.
    payloads: Vec<Arc<CompletePayload>>,
}

fn fixtures(t: &Topology) -> Vec<NodeFixture> {
    t.graph()
        .nodes()
        .map(|me| {
            let mut payloads: Vec<Arc<CompletePayload>> = Vec::new();
            for (k, c) in t.graph().nodes().enumerate() {
                let mut m = MessageSet::new();
                for &p in t.required_paths_to(c) {
                    m.insert(p, t.index().init(p).index() as f64 + k as f64);
                }
                payloads.push(Arc::new(CompletePayload::from_message_set(&m)));
            }
            // Equivocating snapshot: value depends on the path length.
            let mut bad = MessageSet::new();
            for &p in t.required_paths_to(me) {
                bad.insert(p, t.index().node_count(p) as f64);
            }
            payloads.push(Arc::new(CompletePayload::from_message_set(&bad)));
            // Partial snapshot: a single entry, sources likely missing.
            let mut partial = MessageSet::new();
            if let Some(&p) = t.required_paths_to(me).first() {
                partial.insert(p, 3.0);
            }
            payloads.push(Arc::new(CompletePayload::from_message_set(&partial)));
            payloads.push(Arc::new(CompletePayload::from_message_set(&MessageSet::new())));
            NodeFixture {
                me,
                plan: NodePlan::new(t, me),
                model_plan: reference::NodePlan::new(t, me),
                payloads,
            }
        })
        .collect()
}

/// One generated sequence against one node of one topology.
fn run_sequence(t: &Topology, fx: &NodeFixture, scratch: &mut WitnessScratch, seed: u64) {
    let index = t.index();
    let mut rng = Rng(seed);
    let mut core = RoundCore::new(t, &fx.plan);
    let mut model = reference::RoundCore::new(t, &fx.model_plan);
    let pool = t.required_paths_to(fx.me);
    let simple = t.simple_paths_to(fx.me);
    let guesses: Vec<NodeSet> = t.guesses().to_vec();
    let ops = 8 + rng.below(56);
    let start_at = rng.below(ops);
    let mut started = false;
    for op in 0..ops {
        let ctx = format!("seed {seed} me {} op {op}", fx.me);
        if op == start_at {
            started = true;
            let a = core.start(2.5, t, &fx.plan, scratch);
            let b = model.start(2.5, t, &fx.model_plan);
            assert_actions_equal(&a, &b, &format!("{ctx}: start"));
        } else if rng.below(10) < 6 {
            // Flood arrival: a random pool path (duplicates included) with
            // a value that usually tracks the initiator but sometimes
            // equivocates.
            let p = pool[rng.below(pool.len() as u64) as usize];
            if index.is_trivial(p) && started {
                continue; // the trivial path was ingested by start
            }
            if index.is_trivial(p) {
                continue; // floods never carry the node's own trivial path
            }
            let v = if rng.below(8) == 0 {
                VALUES[rng.below(VALUES.len() as u64) as usize]
            } else {
                index.init(p).index() as f64
            };
            let (f1, a) = core.add_flood(p, v, t, &fx.plan, scratch);
            let (f2, b) = model.add_flood(p, v, t, &fx.model_plan);
            assert_eq!(f1, f2, "{ctx}: freshness");
            assert_actions_equal(&a, &b, &format!("{ctx}: flood({p}, {v})"));
        } else {
            // FIFO COMPLETE delivery over a random simple path with a
            // random guess-sized suspect set and pooled payload.
            let p = simple[rng.below(simple.len() as u64) as usize];
            let suspects = guesses[rng.below(guesses.len() as u64) as usize];
            let init = index.init(p);
            if suspects.contains(init) {
                continue; // the validation boundary would drop it
            }
            let payload = &fx.payloads[rng.below(fx.payloads.len() as u64) as usize];
            let fp = payload.fingerprint();
            let a = core.add_fifo_delivery(init, p, suspects, payload, fp, t, &fx.plan, scratch);
            let b = model.add_fifo_delivery(init, p, suspects, payload, fp, t, &fx.model_plan);
            assert_actions_equal(&a, &b, &format!("{ctx}: delivery({p}, {suspects:?})"));
        }
        assert_eq!(core.started(), model.started(), "{ctx}: started");
        assert_eq!(core.fired(), model.fired(), "{ctx}: fired");
    }
    assert_eq!(core.message_set(), model.message_set(), "seed {seed}: final history");
}

const SEQUENCES: u64 = 400;

fn run_class(name: &str, t: &Topology, salt: u64) {
    let fixtures = fixtures(t);
    let mut scratch = WitnessScratch::new();
    for i in 0..SEQUENCES {
        let fx = &fixtures[(i % fixtures.len() as u64) as usize];
        run_sequence(t, fx, &mut scratch, salt.wrapping_mul(0xD131_0BA6) ^ i);
    }
    // A final deterministic deep sequence per node: the full honest round
    // (every pool flood with per-initiator values, then every peer's
    // COMPLETE over every simple path) must advance identically.
    for fx in &fixtures {
        let mut core = RoundCore::new(t, &fx.plan);
        let mut model = reference::RoundCore::new(t, &fx.model_plan);
        let ctx = format!("{name}: full round at {}", fx.me);
        let a = core.start(0.5, t, &fx.plan, &mut scratch);
        let b = model.start(0.5, t, &fx.model_plan);
        assert_actions_equal(&a, &b, &ctx);
        for &p in t.required_paths_to(fx.me) {
            if t.index().is_trivial(p) {
                continue;
            }
            let v = t.index().init(p).index() as f64;
            let (_, a) = core.add_flood(p, v, t, &fx.plan, &mut scratch);
            let (_, b) = model.add_flood(p, v, t, &fx.model_plan);
            assert_actions_equal(&a, &b, &ctx);
        }
        for c in t.graph().nodes() {
            let payload = &fx.payloads[c.index()];
            let fp = payload.fingerprint();
            for &p in t.simple_paths_to(fx.me) {
                if t.index().init(p) != c {
                    continue;
                }
                if t.index().is_trivial(p) && c != fx.me {
                    continue;
                }
                let a = core.add_fifo_delivery(
                    c,
                    p,
                    NodeSet::EMPTY,
                    payload,
                    fp,
                    t,
                    &fx.plan,
                    &mut scratch,
                );
                let b =
                    model.add_fifo_delivery(c, p, NodeSet::EMPTY, payload, fp, t, &fx.model_plan);
                assert_actions_equal(&a, &b, &ctx);
                assert_eq!(core.fired(), model.fired(), "{ctx}: fired");
            }
        }
        assert_eq!(core.message_set(), model.message_set(), "{ctx}: history");
    }
}

fn topo(g: dbac_graph::Digraph, f: usize, mode: FloodMode) -> Topology {
    Topology::new(g, f, mode, PathBudget::default()).expect("in budget")
}

#[test]
fn clique_f0_redundant() {
    run_class("K3/f0", &topo(generators::clique(3), 0, FloodMode::Redundant), 1);
}

#[test]
fn clique_redundant() {
    run_class("K4/redundant", &topo(generators::clique(4), 1, FloodMode::Redundant), 2);
}

#[test]
fn clique_simple_only() {
    run_class("K5/simple", &topo(generators::clique(5), 1, FloodMode::SimpleOnly), 3);
}

#[test]
fn bridged_cliques_redundant() {
    let g = generators::two_cliques_bridged(3, &[(0, 0)], &[(2, 2)]);
    run_class("2xK3/redundant", &topo(g, 1, FloodMode::Redundant), 4);
}

#[test]
fn figure_1a_redundant() {
    run_class("fig1a/redundant", &topo(generators::figure_1a(), 1, FloodMode::Redundant), 5);
}
