//! The pre-columnar `BTreeMap` message set, kept as a differential-testing
//! oracle.
//!
//! This is the implementation the columnar [`MessageSet`](super::MessageSet)
//! replaced: one `BTreeMap<PathId, f64>` entry per message, set operations
//! by per-entry filtering through the [`PathIndex`] metadata. It is simple
//! enough to audit by eye against Definitions 7–9, which is exactly what
//! makes it a trustworthy model: the property tests in the parent module
//! and the generated-sequence harness in `tests/differential.rs` drive both
//! backends with identical operations and require identical results on
//! every observable.
//!
//! Compiled only under `cfg(test)` or the `reference-messageset` feature —
//! production builds carry no second implementation.

use dbac_graph::{NodeId, NodeSet, PathId, PathIndex};

/// The original tree-backed message set (see the module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MessageSet {
    entries: std::collections::BTreeMap<PathId, f64>,
}

impl MessageSet {
    /// Creates an empty message set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `(value, path)`; returns `false` (and keeps the original) if
    /// the path already reported.
    pub fn insert(&mut self, path: PathId, value: f64) -> bool {
        match self.entries.entry(path) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Number of messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no message has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `path` has reported.
    #[must_use]
    pub fn contains_path(&self, path: PathId) -> bool {
        self.entries.contains_key(&path)
    }

    /// The value reported along `path`, if any.
    #[must_use]
    pub fn value_on_path(&self, path: PathId) -> Option<f64> {
        self.entries.get(&path).copied()
    }

    /// Iterates over `(path, value)` in deterministic (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, f64)> + '_ {
        self.entries.iter().map(|(&p, &v)| (p, v))
    }

    /// The paper's `P(M)`: the set of propagation paths.
    pub fn paths(&self) -> impl Iterator<Item = PathId> + '_ {
        self.entries.keys().copied()
    }

    /// The exclusion `M|_Ā` (Definition 7): messages whose path avoids `A`.
    #[must_use]
    pub fn exclusion(&self, a: NodeSet, index: &PathIndex) -> MessageSet {
        MessageSet {
            entries: self
                .entries
                .iter()
                .filter(|(&p, _)| !index.intersects(p, a))
                .map(|(&p, &v)| (p, v))
                .collect(),
        }
    }

    /// Consistency (Definition 8): every initiator reports a unique value.
    #[must_use]
    pub fn is_consistent(&self, index: &PathIndex) -> bool {
        let mut seen: std::collections::BTreeMap<NodeId, u64> = std::collections::BTreeMap::new();
        for (&p, &v) in &self.entries {
            match seen.entry(index.init(p)) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v.to_bits());
                }
                std::collections::btree_map::Entry::Occupied(e) => {
                    if *e.get() != v.to_bits() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The paper's `value_q(M)`: the (first) value reported by initiator `q`.
    #[must_use]
    pub fn value_of(&self, q: NodeId, index: &PathIndex) -> Option<f64> {
        self.entries.iter().find(|(&p, _)| index.init(p) == q).map(|(_, &v)| v)
    }

    /// Fullness (Definition 9) against a pre-enumerated requirement list.
    #[must_use]
    pub fn is_full_for(&self, required: &[PathId]) -> bool {
        required.iter().all(|p| self.entries.contains_key(p))
    }

    /// Fullness for `(a, v)` by filtering the pool per entry — the model
    /// for the columnar mask scan.
    #[must_use]
    pub fn is_full_avoiding(&self, a: NodeSet, v: NodeId, index: &PathIndex) -> bool {
        index
            .paths_ending_at(v)
            .iter()
            .filter(|&&p| !index.intersects(p, a))
            .all(|&p| self.entries.contains_key(&p))
    }

    /// The set of initiators appearing in the set.
    #[must_use]
    pub fn initiators(&self, index: &PathIndex) -> NodeSet {
        self.entries.keys().map(|&p| index.init(p)).collect()
    }
}

impl FromIterator<(PathId, f64)> for MessageSet {
    fn from_iter<I: IntoIterator<Item = (PathId, f64)>>(iter: I) -> Self {
        let mut m = MessageSet::new();
        for (p, v) in iter {
            m.insert(p, v);
        }
        m
    }
}
