//! Asynchronous **crash**-tolerant approximate consensus under the
//! 2-reach condition (the upper-left asynchronous cell of the paper's
//! Table 2, due to Tseng & Vaidya 2012).
//!
//! Faithful-in-spirit reconstruction (DESIGN.md §2.5): with crash faults
//! nobody lies, so redundant paths, witnesses and trimming are all
//! unnecessary. Each round a node floods its value along **simple** paths;
//! one thread per guess `F_v` waits for fullness over the paths avoiding
//! `F_v`; the first full thread updates to the midpoint of *all* values
//! received this round.
//!
//! Correctness sketch: every received value is a genuine round-`r` state
//! value (validity); under 2-reach any two nodes' fired reach sets share an
//! influencer `z`, and both nodes' min/max brackets `x_z[r]`, so midpoints
//! are within half the previous spread (convergence halves per round, as
//! in Lemma 15).
//!
//! Paths are interned: the simple-path population is enumerated once into a
//! [`PathIndex`], wire messages carry dense [`PathId`]s, per-round value
//! maps are the columnar [`MessageSet`], and the per-guess fullness
//! requirements are popcounts over the index's terminal/member masks — the
//! same hot-path treatment the BW stack received.

use crate::config::num_rounds;
use crate::error::RunError;
use crate::message_set::MessageSet;
use dbac_graph::paths::simple_paths_ending_at;
use dbac_graph::subsets::SubsetsUpTo;
use dbac_graph::{Digraph, NodeId, NodeSet, PathBudget, PathId, PathIndex};
use dbac_sim::process::{Adversary, Context, Process};
use std::collections::HashMap;
use std::sync::Arc;

/// Wire message of the crash-tolerant protocol: a value flooded along a
/// simple path (the path ends at the sender, as an interned id).
#[derive(Clone, Debug, PartialEq)]
pub struct CrashMsg {
    /// Asynchronous round.
    pub round: u32,
    /// The flooded state value.
    pub value: f64,
    /// Propagation path so far (interned; ends at the sender).
    pub path: PathId,
}

/// Shared precomputation for the crash protocol.
#[derive(Debug)]
pub struct CrashTopology {
    graph: Digraph,
    f: usize,
    /// The interned simple-path population.
    index: PathIndex,
    guesses: Vec<NodeSet>,
}

impl CrashTopology {
    /// Precomputes the interned simple-path population and fault guesses.
    ///
    /// # Errors
    ///
    /// Returns the path-budget error if enumeration explodes.
    pub fn new(graph: Digraph, f: usize, budget: PathBudget) -> Result<Self, RunError> {
        let mut pools = Vec::with_capacity(graph.node_count());
        for v in graph.nodes() {
            pools.push(simple_paths_ending_at(&graph, v, NodeSet::EMPTY, budget)?);
        }
        let index = PathIndex::build(&graph, &pools);
        let guesses = SubsetsUpTo::new(graph.vertex_set(), f).collect();
        Ok(CrashTopology { graph, f, index, guesses })
    }

    /// The network.
    #[must_use]
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// The fault bound.
    #[must_use]
    pub fn f(&self) -> usize {
        self.f
    }

    /// The interned simple-path population.
    #[must_use]
    pub fn index(&self) -> &PathIndex {
        &self.index
    }
}

struct CrashRound {
    started: bool,
    fired: bool,
    values: MessageSet,
    /// Per guess: required simple paths avoiding the guess not yet seen.
    remaining: Vec<usize>,
}

/// An honest node of the crash-tolerant protocol.
pub struct CrashNode {
    topo: Arc<CrashTopology>,
    me: NodeId,
    rounds_total: u32,
    x: Vec<f64>,
    rounds: HashMap<u32, CrashRound>,
    my_guesses: Vec<NodeSet>,
    /// Per-guess requirement census, computed once from the index masks
    /// and cloned (one memcpy) into every round instead of re-running the
    /// popcount scans per round.
    census: Vec<usize>,
    output: Option<f64>,
}

impl CrashNode {
    /// Creates a node with the given input, running enough rounds for
    /// ε-agreement over the a-priori range.
    #[must_use]
    pub fn new(
        topo: Arc<CrashTopology>,
        me: NodeId,
        input: f64,
        epsilon: f64,
        range: (f64, f64),
    ) -> Self {
        let my_guesses: Vec<NodeSet> =
            topo.guesses.iter().filter(|g| !g.contains(me)).copied().collect();
        let census = my_guesses.iter().map(|&g| topo.index.required_count(g, me)).collect();
        CrashNode {
            topo,
            me,
            rounds_total: num_rounds(range.1 - range.0, epsilon),
            x: vec![input],
            rounds: HashMap::new(),
            my_guesses,
            census,
            output: None,
        }
    }

    /// Overrides the round count derived from ε and the range (used by the
    /// scenario layer's `rounds` knob).
    #[must_use]
    pub fn with_rounds(mut self, rounds: u32) -> Self {
        self.rounds_total = rounds;
        self
    }

    /// The decided output, once available.
    #[must_use]
    pub fn output(&self) -> Option<f64> {
        self.output
    }

    /// The state trajectory.
    #[must_use]
    pub fn x_history(&self) -> &[f64] {
        &self.x
    }

    /// Returns `true` once decided.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.output.is_some()
    }

    fn new_round(&self) -> CrashRound {
        // Per-guess requirement counts: the node-lifetime census computed
        // once in `new` — a round allocates one cloned counter vector.
        CrashRound {
            started: false,
            fired: false,
            values: MessageSet::new(),
            remaining: self.census.clone(),
        }
    }

    fn begin_round(&mut self, round: u32, ctx: &mut Context<CrashMsg>) {
        let value = self.x[round as usize];
        let path = self.topo.index.trivial(self.me);
        for w in ctx.out_neighbors().iter() {
            ctx.send(w, CrashMsg { round, value, path });
        }
        // Do not clobber state created by early-arriving buffered messages.
        if !self.rounds.contains_key(&round) {
            let r = self.new_round();
            self.rounds.insert(round, r);
        }
        self.record(round, path, value, ctx);
    }

    fn record(&mut self, round: u32, stored: PathId, value: f64, ctx: &mut Context<CrashMsg>) {
        let index = &self.topo.index;
        let core = match self.rounds.get_mut(&round) {
            Some(c) => c,
            None => {
                let fresh = self.new_round();
                self.rounds.entry(round).or_insert(fresh)
            }
        };
        if !core.values.insert(stored, value) {
            return;
        }
        if stored == index.trivial(self.me) {
            core.started = true;
        }
        let node_set = index.node_set(stored);
        let mut fire = false;
        for (i, guess) in self.my_guesses.iter().enumerate() {
            if node_set.is_disjoint(*guess) {
                core.remaining[i] -= 1;
                if core.remaining[i] == 0 && core.started && !core.fired {
                    fire = true;
                }
            }
        }
        if fire && !core.fired {
            core.fired = true;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (_, v) in core.values.iter() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let next = (lo + hi) / 2.0;
            self.x.push(next);
            let next_round = round + 1;
            if next_round >= self.rounds_total {
                self.output = Some(next);
            } else {
                self.begin_round(next_round, ctx);
            }
        }
    }
}

impl Process for CrashNode {
    type Message = CrashMsg;

    fn on_start(&mut self, ctx: &mut Context<CrashMsg>) {
        if self.rounds_total == 0 {
            self.output = Some(self.x[0]);
            return;
        }
        self.begin_round(0, ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<CrashMsg>, from: NodeId, msg: CrashMsg) {
        if msg.round >= self.rounds_total {
            return;
        }
        // Validate and extend, as in the BW flood but simple-paths only:
        // the population holds exactly the simple paths, so an unknown id
        // or a missing forwarding-table entry is a forged or inadmissible
        // message. All O(1), as in `validate_flood`.
        let index = &self.topo.index;
        if !index.contains_id(msg.path) || index.ter(msg.path) != from {
            return;
        }
        let Some(stored) = index.extend(msg.path, self.me) else {
            return;
        };
        let already = self.rounds.get(&msg.round).is_some_and(|c| c.values.contains_path(stored));
        if already {
            return;
        }
        // Relay first (the relay set does not depend on our round state).
        for w in ctx.out_neighbors().iter() {
            if index.extend(stored, w).is_some() {
                ctx.send(w, CrashMsg { round: msg.round, value: msg.value, path: stored });
            }
        }
        self.record(msg.round, stored, msg.value, ctx);
    }

    fn classify(_msg: &CrashMsg) -> dbac_sim::stats::MsgClass {
        dbac_sim::stats::MsgClass::Crash
    }
}

impl std::fmt::Debug for CrashNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashNode").field("me", &self.me).field("output", &self.output).finish()
    }
}

/// A node that behaves honestly for its first `budget` sends, then crashes
/// — the classic mid-protocol crash fault.
pub struct CrashAfter {
    inner: CrashNode,
    budget: usize,
}

impl CrashAfter {
    /// Wraps an honest crash-protocol node that dies after `budget` sends.
    #[must_use]
    pub fn new(inner: CrashNode, budget: usize) -> Self {
        CrashAfter { inner, budget }
    }
}

impl Adversary<CrashMsg> for CrashAfter {
    fn on_start(&mut self, ctx: &mut Context<CrashMsg>) {
        if self.budget == 0 {
            return;
        }
        self.inner.on_start(ctx);
        self.truncate(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<CrashMsg>, from: NodeId, msg: CrashMsg) {
        if self.budget == 0 {
            return;
        }
        self.inner.on_message(ctx, from, msg);
        self.truncate(ctx);
    }
}

impl CrashAfter {
    fn truncate(&mut self, ctx: &mut Context<CrashMsg>) {
        let mut sends = ctx.take_outbox();
        if sends.len() > self.budget {
            sends.truncate(self.budget);
        }
        self.budget -= sends.len();
        for (to, msg) in sends {
            ctx.send(to, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CrashTwoReach, FaultKind, Outcome, Scenario, SchedulerSpec};
    use dbac_conditions::kreach::two_reach;
    use dbac_graph::generators;
    use dbac_graph::Path;

    fn id(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// The historical crash-consensus shape on the scenario surface: the
    /// a-priori range covers every input (crashed nodes are honest until
    /// they die), `crashed` maps nodes to their send budget.
    fn run_crash(
        graph: Digraph,
        f: usize,
        inputs: &[f64],
        epsilon: f64,
        crashed: &[(NodeId, usize)],
        seed: u64,
    ) -> Result<Outcome, RunError> {
        let range = inputs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        Scenario::builder(graph, f)
            .inputs(inputs.to_vec())
            .epsilon(epsilon)
            .range(range)
            .faults(crashed.iter().map(|&(v, sends)| (v, FaultKind::CrashAfter { sends })))
            .scheduler(SchedulerSpec::legacy_random(seed))
            .protocol(CrashTwoReach::default())
            .run()
    }

    #[test]
    fn all_honest_clique_converges() {
        let out = run_crash(generators::clique(3), 1, &[0.0, 6.0, 3.0], 0.5, &[], 1).unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid());
    }

    #[test]
    fn tolerates_immediate_crash() {
        // K3 satisfies 2-reach for f = 1 (n > 2f).
        let g = generators::clique(3);
        assert!(two_reach(&g, 1).holds());
        let out = run_crash(g, 1, &[0.0, 6.0, 100.0], 0.5, &[(id(2), 0)], 7).unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid());
        assert!(out.outputs[2].is_none());
    }

    #[test]
    fn tolerates_mid_protocol_crash() {
        for budget in [1, 3, 10, 50] {
            let out = run_crash(
                generators::clique(4),
                1,
                &[0.0, 8.0, 4.0, 2.0],
                0.5,
                &[(id(1), budget)],
                budget as u64,
            )
            .unwrap();
            assert!(out.converged(), "budget {budget}: {:?}", out.outputs);
            assert!(out.valid(), "budget {budget}");
        }
    }

    #[test]
    fn works_on_directed_two_reach_graph() {
        // figure_1b_small satisfies 3-reach ⊃ 2-reach for f = 1.
        let g = generators::figure_1b_small();
        assert!(two_reach(&g, 1).holds());
        let inputs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let out = run_crash(g, 1, &inputs, 0.5, &[(id(5), 4)], 3).unwrap();
        assert!(out.converged(), "{:?}", out.outputs);
        assert!(out.valid());
    }

    /// Regression for the PathId re-keying: the per-round value map (now
    /// the columnar [`MessageSet`]) and the per-guess requirement census
    /// (now mask popcounts) must match the original owned-`Path` design
    /// exactly — same census, same dedup, same fire point, same relays.
    #[test]
    fn rekeying_preserves_census_dedup_and_fire_point() {
        let g = generators::clique(3);
        let topo = Arc::new(CrashTopology::new(g.clone(), 1, PathBudget::default()).unwrap());
        let index = topo.index();
        let me = id(0);
        // Owned-path model of the requirement census (the old design).
        let pool = simple_paths_ending_at(&g, me, NodeSet::EMPTY, PathBudget::default()).unwrap();

        let mut node = CrashNode::new(Arc::clone(&topo), me, 5.0, 0.5, (0.0, 8.0));
        let mut ctx = Context::new(me, g.out_neighbors(me));
        node.on_start(&mut ctx);
        let _ = ctx.take_outbox();
        {
            let round0 = node.rounds.get(&0).unwrap();
            assert!(round0.started);
            // ⟨0⟩ recorded; each guess still awaits its avoiding pool.
            for (i, guess) in node.my_guesses.iter().enumerate() {
                let census = pool.iter().filter(|p| !p.intersects(*guess)).count();
                assert_eq!(round0.remaining[i], census - 1, "guess {guess:?}");
            }
        }

        // Wire ⟨1,2⟩ from 2 → stored ⟨1,2,0⟩: meets both singleton guesses,
        // so only the ∅-guess counter moves — no fire, and no relay (every
        // extension of ⟨1,2,0⟩ repeats a node).
        let wire_12 = index.resolve(&Path::from_indices(&[1, 2]).unwrap()).unwrap();
        let stored_120 = index.resolve(&Path::from_indices(&[1, 2, 0]).unwrap()).unwrap();
        node.on_message(&mut ctx, id(2), CrashMsg { round: 0, value: 3.0, path: wire_12 });
        assert_eq!(ctx.pending(), 0, "⟨1,2,0⟩ has no simple extension in K3");
        assert!(!node.rounds.get(&0).unwrap().fired);

        // Exact duplicate: no relay, no re-record, first value wins.
        node.on_message(&mut ctx, id(2), CrashMsg { round: 0, value: 9.0, path: wire_12 });
        assert_eq!(ctx.pending(), 0, "duplicates must not relay");
        let round0 = node.rounds.get(&0).unwrap();
        assert_eq!(round0.values.value_on_path(stored_120), Some(3.0), "first value wins");
        assert_eq!(round0.values.len(), 2);

        // Wire ⟨1⟩ from 1 → stored ⟨1,0⟩ completes guess {2} (census
        // {⟨0⟩, ⟨1,0⟩}): relay ⟨1,0⟩‖2, then fire — exactly where the
        // owned-path census predicts — which begins round 1's own flood.
        let wire_1 = index.resolve(&Path::from_indices(&[1]).unwrap()).unwrap();
        let stored_10 = index.resolve(&Path::from_indices(&[1, 0]).unwrap()).unwrap();
        node.on_message(&mut ctx, id(1), CrashMsg { round: 0, value: 1.0, path: wire_1 });
        let sends = ctx.take_outbox();
        assert!(
            sends.iter().any(|(to, m)| *to == id(2) && m.round == 0 && m.path == stored_10),
            "relay carries the stored id"
        );
        assert!(sends.iter().all(|(_, m)| m.round == 0 || m.path == index.trivial(me)));
        let round0 = node.rounds.get(&0).unwrap();
        assert!(round0.fired);
        assert_eq!(node.x_history()[1], (1.0 + 5.0) / 2.0, "midpoint of all round values");

        // Every recorded id resolves back into the owned-path pool.
        for (p, _) in node.rounds.get(&0).unwrap().values.iter() {
            assert!(pool.contains(index.path(p)), "{} outside the simple pool", index.path(p));
        }
    }

    #[test]
    fn forged_crash_paths_are_dropped() {
        // Ids outside the population, wrong-terminal paths, and extensions
        // that leave the simple class are all rejected at the boundary.
        let g = generators::clique(3);
        let topo = Arc::new(CrashTopology::new(g.clone(), 1, PathBudget::default()).unwrap());
        let index = topo.index();
        let mut node = CrashNode::new(Arc::clone(&topo), id(0), 5.0, 0.5, (0.0, 8.0));
        let mut ctx = Context::new(id(0), g.out_neighbors(id(0)));
        node.on_start(&mut ctx);
        let _ = ctx.take_outbox();
        let before = node.rounds.get(&0).unwrap().values.len();

        // Unknown id.
        node.on_message(
            &mut ctx,
            id(1),
            CrashMsg { round: 0, value: 1.0, path: PathId::from_raw(u32::MAX - 1) },
        );
        // Path not ending at the authenticated sender.
        let wire_2 = index.resolve(&Path::from_indices(&[2]).unwrap()).unwrap();
        node.on_message(&mut ctx, id(1), CrashMsg { round: 0, value: 1.0, path: wire_2 });
        // Extension would repeat `me`: ⟨0,1⟩ from 1 extends to ⟨0,1,0⟩.
        let wire_01 = index.resolve(&Path::from_indices(&[0, 1]).unwrap()).unwrap();
        node.on_message(&mut ctx, id(1), CrashMsg { round: 0, value: 1.0, path: wire_01 });

        assert_eq!(ctx.pending(), 0, "forgeries must not relay");
        assert_eq!(node.rounds.get(&0).unwrap().values.len(), before);
    }

    #[test]
    fn too_many_crashes_rejected() {
        let err = run_crash(generators::clique(3), 1, &[0.0; 3], 0.5, &[(id(0), 0), (id(1), 0)], 0);
        assert!(matches!(err, Err(RunError::TooManyFaults { .. })));
    }
}
