//! Shared helpers for this crate's unit tests: one place to build a test
//! `Topology` and resolve explicit node sequences to interned ids.

use crate::config::FloodMode;
use crate::precompute::Topology;
use dbac_graph::{generators, Digraph, Path, PathBudget, PathId};

/// A `Topology` over `graph` with the default budget.
pub(crate) fn topo_of(graph: Digraph, f: usize, mode: FloodMode) -> Topology {
    Topology::new(graph, f, mode, PathBudget::default()).unwrap()
}

/// A redundant-mode clique topology — the workhorse test fixture.
pub(crate) fn clique_topo(n: usize, f: usize) -> Topology {
    topo_of(generators::clique(n), f, FloodMode::Redundant)
}

/// Resolves an index sequence to its interned id.
///
/// # Panics
///
/// Panics if the sequence is not in the topology's population.
pub(crate) fn pid(t: &Topology, idx: &[usize]) -> PathId {
    t.index().resolve(&Path::from_indices(idx).unwrap()).expect("path interned in test topology")
}
